//! Policy-driven solver API: a registry of orientation algorithms behind one
//! trait, and a builder that selects among them.
//!
//! The paper's contribution is a *family* of constructions — one per Table 1
//! row — and this module is their common front door:
//!
//! * [`Orienter`] — the trait every construction implements: an identifying
//!   [`AlgorithmKind`], an [`applicability`](Orienter::applicability) check
//!   that maps an [`AntennaBudget`] to the [`Guarantee`] the construction
//!   offers under it, and the orientation itself.
//! * [`Registry`] — an ordered collection of orienters as trait objects.
//!   [`Registry::paper`] holds the eight Table 1 constructions; custom
//!   orienters can be [`register`](Registry::register)ed alongside or instead
//!   of them.
//! * [`SelectionPolicy`] — how the solver chooses among applicable
//!   orienters: the best *guaranteed* radius (the classic dispatch), one
//!   [`Specific`](SelectionPolicy::Specific) algorithm, or a
//!   [`Portfolio`](SelectionPolicy::Portfolio) that runs every applicable
//!   construction in parallel and keeps the smallest *measured* radius.
//! * [`Solver`] — the builder entry point tying the pieces together:
//!
//! ```
//! use antennae_core::solver::{SelectionPolicy, Solver};
//! use antennae_core::instance::Instance;
//! use antennae_geometry::Point;
//!
//! let instance = Instance::new(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(1.0, 0.2),
//!     Point::new(0.4, 0.9),
//!     Point::new(1.3, 1.1),
//! ])?;
//! let outcome = Solver::on(&instance)
//!     .budget(2, std::f64::consts::PI)
//!     .policy(SelectionPolicy::Portfolio)
//!     .run()?;
//! assert!(outcome.candidates.len() > 1); // Theorem 3, chains, Hamiltonian…
//! assert!(outcome.measured_radius_over_lmax <= 2.0 * (2.0 * std::f64::consts::PI / 9.0).sin() + 1e-9);
//! # Ok::<(), antennae_core::error::OrientError>(())
//! ```
//!
//! The legacy free functions
//! [`dispatch::orient`](crate::algorithms::dispatch::orient) and
//! [`dispatch::orient_with_report`](crate::algorithms::dispatch::orient_with_report)
//! are thin deprecated shims over
//! [`SelectionPolicy::BestGuarantee`]; the selection logic itself lives only
//! here.

mod orienters;

pub use orienters::{
    ChainsOrienter, HamiltonianOrienter, OneAntennaWideOrienter, Theorem2Orienter, Theorem3Orienter,
};

use crate::algorithms::AlgorithmKind;
use crate::antenna::AntennaBudget;
use crate::error::OrientError;
use crate::instance::Instance;
use crate::parallel::{default_threads, parallel_map};
use crate::scheme::OrientationScheme;
use crate::verify::{VerificationEngine, VerificationReport, VerificationSession};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// What a construction promises for a budget it accepts, in units of `lmax`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Guarantee {
    /// The proven worst-case radius bound, or `None` for a heuristic whose
    /// factor is inherited from prior work rather than re-proved here (the
    /// `k = 1` Hamiltonian baseline — see DESIGN.md).
    pub radius_over_lmax: Option<f64>,
}

impl Guarantee {
    /// A proven worst-case radius bound.
    pub fn proven(radius_over_lmax: f64) -> Self {
        Guarantee {
            radius_over_lmax: Some(radius_over_lmax),
        }
    }

    /// A heuristic with no re-proved radius bound.
    pub fn heuristic() -> Self {
        Guarantee {
            radius_over_lmax: None,
        }
    }

    /// Returns `true` when the guarantee carries a proven radius bound.
    pub fn is_proven(&self) -> bool {
        self.radius_over_lmax.is_some()
    }
}

/// A first-class orientation algorithm: one row (or row family) of Table 1,
/// or a user-supplied construction.
///
/// Implementations must be cheap to consult: `applicability` is called for
/// every budget the solver sees, while `orient` runs only for selected (or
/// portfolio) candidates.  An orienter must produce schemes that respect the
/// budget it declared applicable — at most `budget.k` antennae per sensor
/// with spreads summing to at most `budget.phi` (within
/// [`bounds::SPREAD_EPS`](crate::bounds::SPREAD_EPS)).
pub trait Orienter: Send + Sync {
    /// The identity reported in outcomes and usable with
    /// [`SelectionPolicy::Specific`].
    fn kind(&self) -> AlgorithmKind;

    /// The guarantee this construction offers under `budget`, or `None` when
    /// its preconditions are not met.
    fn applicability(&self, budget: &AntennaBudget) -> Option<Guarantee>;

    /// Runs the construction on `instance` under `budget`.
    fn orient(
        &self,
        instance: &Instance,
        budget: AntennaBudget,
    ) -> Result<OrientationScheme, OrientError>;
}

/// An ordered collection of [`Orienter`]s.
///
/// Order matters: it is the tie-break whenever two orienters offer the same
/// guarantee (or, under [`SelectionPolicy::Portfolio`], the same measured
/// radius).  [`Registry::paper`] lists the Table 1 constructions in the
/// paper's precedence order, which is what makes
/// [`SelectionPolicy::BestGuarantee`] reproduce the legacy dispatcher
/// exactly.
pub struct Registry {
    orienters: Vec<Box<dyn Orienter>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("kinds", &self.kinds())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::paper()
    }
}

impl Registry {
    /// An empty registry (populate with [`Registry::register`]).
    pub fn empty() -> Self {
        Registry {
            orienters: Vec::new(),
        }
    }

    /// The full Table 1 set: Theorem 2 (Lemma 1 at every vertex), Theorem 3,
    /// the four zero-spread chain constructions (`k = 2..=5`; Theorems 5 and
    /// 6, the `[14]` row and the folklore `k = 5` scheme), the `[4]`
    /// single-wide-antenna baseline and the `[14]` Hamiltonian-cycle
    /// baseline — eight orienters in the paper's precedence order.
    pub fn paper() -> Self {
        let mut registry = Registry::empty();
        registry.register(Box::new(Theorem2Orienter));
        registry.register(Box::new(Theorem3Orienter));
        for beams in 2..=5 {
            registry.register(Box::new(ChainsOrienter::new(beams)));
        }
        registry.register(Box::new(OneAntennaWideOrienter));
        registry.register(Box::new(HamiltonianOrienter));
        registry
    }

    /// The process-wide shared paper registry (what [`Solver::on`] uses by
    /// default, so repeated solves do not rebuild the trait-object table).
    pub fn shared_paper() -> Arc<Registry> {
        static SHARED: OnceLock<Arc<Registry>> = OnceLock::new();
        Arc::clone(SHARED.get_or_init(|| Arc::new(Registry::paper())))
    }

    /// Appends an orienter (after any already registered).
    pub fn register(&mut self, orienter: Box<dyn Orienter>) -> &mut Self {
        self.orienters.push(orienter);
        self
    }

    /// Number of registered orienters.
    pub fn len(&self) -> usize {
        self.orienters.len()
    }

    /// Returns `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.orienters.is_empty()
    }

    /// The kinds of every registered orienter, in registry order.
    pub fn kinds(&self) -> Vec<AlgorithmKind> {
        self.orienters.iter().map(|o| o.kind()).collect()
    }

    /// The first registered orienter with the given kind, if any.
    pub fn get(&self, kind: AlgorithmKind) -> Option<&dyn Orienter> {
        self.orienters
            .iter()
            .find(|o| o.kind() == kind)
            .map(|o| o.as_ref())
    }

    /// Every orienter whose preconditions accept `budget`, with its
    /// guarantee, in registry order.
    pub fn applicable(&self, budget: &AntennaBudget) -> Vec<(&dyn Orienter, Guarantee)> {
        self.orienters
            .iter()
            .filter_map(|o| o.applicability(budget).map(|g| (o.as_ref(), g)))
            .collect()
    }

    /// The orienter [`SelectionPolicy::BestGuarantee`] selects for `budget`:
    /// the smallest proven guaranteed radius, ties broken by registry order;
    /// when no applicable orienter has a proven guarantee, the first
    /// applicable heuristic.  `None` when nothing applies.
    pub fn best_guarantee(&self, budget: &AntennaBudget) -> Option<(&dyn Orienter, Guarantee)> {
        let mut best: Option<(&dyn Orienter, Guarantee)> = None;
        for (orienter, guarantee) in self.applicable(budget) {
            let better = match (&best, guarantee.radius_over_lmax) {
                (None, _) => true,
                // A proven bound always beats a heuristic; a strictly
                // smaller proven bound beats a larger one (ties keep the
                // earlier registry entry).
                (Some((_, current)), Some(bound)) => match current.radius_over_lmax {
                    Some(current_bound) => bound < current_bound,
                    None => true,
                },
                (Some(_), None) => false,
            };
            if better {
                best = Some((orienter, guarantee));
            }
        }
        best
    }

    /// The best radius bound (in units of `lmax`) any registered algorithm
    /// *proves* for a `(k, φ)` budget — `None` when nothing applies or only
    /// heuristics do.
    ///
    /// On the paper registry this reproduces the Table 1 value for every
    /// implemented row; the `k = 1` intermediate regime (where only the
    /// Hamiltonian heuristic applies) yields `None`.
    pub fn radius_guarantee(&self, k: usize, phi: f64) -> Option<f64> {
        let budget = AntennaBudget::new(k, phi);
        self.best_guarantee(&budget)
            .and_then(|(_, g)| g.radius_over_lmax)
    }
}

/// How the solver chooses among the applicable orienters of its registry.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Run the single orienter with the best *proven* radius guarantee (ties
    /// broken by registry order; heuristics only when nothing proven
    /// applies).  On [`Registry::paper`] this reproduces the legacy
    /// `dispatch::orient_with_report` exactly.
    #[default]
    BestGuarantee,
    /// Run exactly the named algorithm, failing with
    /// [`OrientError::AlgorithmNotApplicable`] when it is absent from the
    /// registry or rejects the budget.
    Specific(AlgorithmKind),
    /// Run *every* applicable orienter (fanned out over
    /// [`crate::parallel::parallel_map`]) and keep the scheme
    /// with the smallest *measured* max radius; all candidates are reported
    /// in [`OrientationOutcome::candidates`].
    Portfolio,
}

/// One candidate evaluated by the solver (a single entry under
/// [`SelectionPolicy::BestGuarantee`] / [`SelectionPolicy::Specific`], one
/// per applicable orienter under [`SelectionPolicy::Portfolio`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateOutcome {
    /// The algorithm that produced this candidate.
    pub algorithm: AlgorithmKind,
    /// The radius the algorithm guarantees (units of `lmax`; `None` for
    /// heuristics).
    pub guaranteed_radius_over_lmax: Option<f64>,
    /// The max radius the produced scheme actually uses, in units of `lmax`.
    pub measured_radius_over_lmax: f64,
    /// Whether this candidate's scheme is the one the outcome selected.
    pub selected: bool,
    /// The candidate's orientation scheme.
    ///
    /// Always `Some` under [`SelectionPolicy::Portfolio`] (every candidate's
    /// scheme is kept for inspection and re-verification).  `None` under the
    /// single-candidate policies, where the scheme lives only in
    /// [`OrientationOutcome::scheme`] — the hot dispatch path pays no
    /// duplicate scheme clone.
    pub scheme: Option<OrientationScheme>,
}

/// The outcome of a solved orientation: the selected scheme plus the full
/// candidate table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrientationOutcome {
    /// The selected orientation scheme.
    pub scheme: OrientationScheme,
    /// The algorithm that produced it.
    pub algorithm: AlgorithmKind,
    /// The radius the selected algorithm guarantees, in units of `lmax`.
    ///
    /// `None` for the `k = 1` Hamiltonian heuristic, whose factor-2
    /// guarantee is inherited from prior work rather than re-proved here
    /// (see DESIGN.md).
    pub guaranteed_radius_over_lmax: Option<f64>,
    /// The max radius the selected scheme actually uses, in units of `lmax`
    /// (`0` for single-sensor instances).
    pub measured_radius_over_lmax: f64,
    /// Every candidate the policy evaluated, in registry order, with the
    /// selected one flagged.
    pub candidates: Vec<CandidateOutcome>,
}

/// The measured max radius of `scheme` in units of `instance`'s `lmax` —
/// [`crate::bounds::radius_over_lmax`], the single normalization shared with
/// the verifier (so the solver's measurement and a
/// [`VerificationReport`](crate::verify::VerificationReport)'s
/// `max_radius_over_lmax` are bit-identical, including the coincident-points
/// `lmax == 0` cases).
fn measured_radius_over_lmax(instance: &Instance, scheme: &OrientationScheme) -> f64 {
    crate::bounds::radius_over_lmax(scheme.max_radius(), instance.lmax())
}

/// An [`OrientationOutcome`] bundled with independent verification of every
/// candidate scheme, produced by [`Solver::run_verified`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifiedOutcome {
    /// The solve outcome (selected scheme + candidate table).
    pub outcome: OrientationOutcome,
    /// Verification of the *selected* scheme under the solve's budget.
    pub report: VerificationReport,
    /// Verification of every candidate, aligned index-for-index with
    /// [`OrientationOutcome::candidates`].  Under the single-candidate
    /// policies this is one entry (equal to
    /// [`VerifiedOutcome::report`]); under
    /// [`SelectionPolicy::Portfolio`] every candidate scheme is verified
    /// through one shared [`crate::verify::VerificationSession`] — the
    /// spatial index is built once per solve, not once per candidate.
    pub candidate_reports: Vec<VerificationReport>,
}

impl VerifiedOutcome {
    /// Returns `true` when the selected scheme passed verification.
    pub fn is_valid(&self) -> bool {
        self.report.is_valid()
    }

    /// Verifies every candidate of `outcome` through `session` (one shared
    /// spatial index) under `budget`, and bundles the reports.
    ///
    /// This is the shared back half of [`Solver::run_verified`] and the
    /// batch pipeline's
    /// [`orient_budgets_verified`](crate::batch::BatchOrienter::orient_budgets_verified),
    /// which reuses one session across a whole budget grid.
    pub fn from_session(
        outcome: OrientationOutcome,
        session: &VerificationSession<'_>,
        budget: Option<AntennaBudget>,
    ) -> Self {
        let schemes: Vec<&OrientationScheme> = outcome
            .candidates
            .iter()
            .map(|c| c.scheme.as_ref().unwrap_or(&outcome.scheme))
            .collect();
        let candidate_reports = session.verify_schemes(&schemes, budget);
        let selected = outcome
            .candidates
            .iter()
            .position(|c| c.selected)
            .expect("every outcome flags a selected candidate");
        VerifiedOutcome {
            report: candidate_reports[selected].clone(),
            candidate_reports,
            outcome,
        }
    }
}

/// Builder entry point of the solver API.
///
/// Defaults: budget `(k = 1, φ = 0)`, [`SelectionPolicy::BestGuarantee`],
/// the shared [`Registry::paper`] and
/// [`crate::parallel::default_threads`] workers (threads
/// only matter for [`SelectionPolicy::Portfolio`]).
#[derive(Debug, Clone)]
pub struct Solver<'a> {
    instance: &'a Instance,
    budget: AntennaBudget,
    policy: SelectionPolicy,
    registry: Arc<Registry>,
    threads: usize,
    engine: VerificationEngine,
}

impl<'a> Solver<'a> {
    /// Starts a solve on `instance` with the default budget, policy and
    /// registry.
    pub fn on(instance: &'a Instance) -> Self {
        Solver {
            instance,
            budget: AntennaBudget::new(1, 0.0),
            policy: SelectionPolicy::default(),
            registry: Registry::shared_paper(),
            threads: default_threads(),
            engine: VerificationEngine::new(),
        }
    }

    /// Sets the per-sensor budget: `k` antennae with spreads summing to at
    /// most `phi` radians.
    pub fn budget(mut self, k: usize, phi: f64) -> Self {
        self.budget = AntennaBudget::new(k, phi);
        self
    }

    /// Sets the per-sensor budget from an existing [`AntennaBudget`].
    pub fn with_budget(mut self, budget: AntennaBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the selection policy.
    pub fn policy(mut self, policy: SelectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the registry (accepts a [`Registry`] or a shared
    /// `Arc<Registry>`).
    pub fn registry(mut self, registry: impl Into<Arc<Registry>>) -> Self {
        self.registry = registry.into();
        self
    }

    /// Sets the worker-thread count used by
    /// [`SelectionPolicy::Portfolio`] (`1` forces a sequential portfolio).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the verification engine [`Solver::run_verified`] uses (the
    /// default is [`VerificationEngine::new`], i.e. the `Auto` strategy).
    pub fn engine(mut self, engine: VerificationEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Runs the solve and independently verifies every produced scheme
    /// through the configured [`VerificationEngine`].
    ///
    /// All verifications of the solve share one
    /// [`crate::verify::VerificationSession`], so the spatial index over the
    /// instance is built at most once regardless of how many Portfolio
    /// candidates there are.  The budget passed to the verifier is the
    /// solve's own budget: a construction that overspends the budget it
    /// declared applicable is reported, not silently accepted.
    pub fn run_verified(&self) -> Result<VerifiedOutcome, OrientError> {
        let outcome = self.run()?;
        let session = self.engine.session(self.instance);
        Ok(VerifiedOutcome::from_session(
            outcome,
            &session,
            Some(self.budget),
        ))
    }

    /// Runs the solve.
    pub fn run(&self) -> Result<OrientationOutcome, OrientError> {
        match self.policy {
            SelectionPolicy::BestGuarantee => {
                let (orienter, guarantee) = self
                    .registry
                    .best_guarantee(&self.budget)
                    .ok_or_else(|| self.no_candidate_error())?;
                self.run_single(orienter, guarantee)
            }
            SelectionPolicy::Specific(kind) => {
                let not_applicable = || OrientError::AlgorithmNotApplicable {
                    algorithm: kind,
                    k: self.budget.k,
                    phi: self.budget.phi,
                };
                let orienter = self.registry.get(kind).ok_or_else(not_applicable)?;
                let guarantee = orienter
                    .applicability(&self.budget)
                    .ok_or_else(not_applicable)?;
                self.run_single(orienter, guarantee)
            }
            SelectionPolicy::Portfolio => self.run_portfolio(),
        }
    }

    /// Runs one orienter and wraps it as a single-candidate outcome.
    fn run_single(
        &self,
        orienter: &dyn Orienter,
        guarantee: Guarantee,
    ) -> Result<OrientationOutcome, OrientError> {
        let scheme = orienter.orient(self.instance, self.budget)?;
        let measured = measured_radius_over_lmax(self.instance, &scheme);
        Ok(OrientationOutcome {
            algorithm: orienter.kind(),
            guaranteed_radius_over_lmax: guarantee.radius_over_lmax,
            measured_radius_over_lmax: measured,
            candidates: vec![CandidateOutcome {
                algorithm: orienter.kind(),
                guaranteed_radius_over_lmax: guarantee.radius_over_lmax,
                measured_radius_over_lmax: measured,
                selected: true,
                scheme: None, // the selected scheme is `OrientationOutcome::scheme`
            }],
            scheme,
        })
    }

    /// Runs every applicable orienter and keeps the smallest measured max
    /// radius (ties: a proven guarantee beats a heuristic, then registry
    /// order).
    fn run_portfolio(&self) -> Result<OrientationOutcome, OrientError> {
        let applicable = self.registry.applicable(&self.budget);
        if applicable.is_empty() {
            return Err(self.no_candidate_error());
        }
        let runs = parallel_map(&applicable, self.threads, |(orienter, guarantee)| {
            orienter.orient(self.instance, self.budget).map(|scheme| {
                let measured = measured_radius_over_lmax(self.instance, &scheme);
                CandidateOutcome {
                    algorithm: orienter.kind(),
                    guaranteed_radius_over_lmax: guarantee.radius_over_lmax,
                    measured_radius_over_lmax: measured,
                    selected: false,
                    scheme: Some(scheme),
                }
            })
        });

        // Candidates that error are dropped (the paper proves its
        // constructions cannot fail on valid instances, but a custom
        // orienter may); only when *every* candidate fails is the first
        // error surfaced.
        let mut first_error = None;
        let mut candidates: Vec<CandidateOutcome> = Vec::with_capacity(runs.len());
        for run in runs {
            match run {
                Ok(candidate) => candidates.push(candidate),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if candidates.is_empty() {
            return Err(first_error.expect("applicable was non-empty"));
        }

        let mut best = 0;
        for (i, candidate) in candidates.iter().enumerate().skip(1) {
            let current = &candidates[best];
            let better = candidate.measured_radius_over_lmax < current.measured_radius_over_lmax
                || (candidate.measured_radius_over_lmax == current.measured_radius_over_lmax
                    && candidate.guaranteed_radius_over_lmax.is_some()
                    && current.guaranteed_radius_over_lmax.is_none());
            if better {
                best = i;
            }
        }
        candidates[best].selected = true;
        let selected = &candidates[best];
        Ok(OrientationOutcome {
            scheme: selected
                .scheme
                .clone()
                .expect("portfolio candidates carry schemes"),
            algorithm: selected.algorithm,
            guaranteed_radius_over_lmax: selected.guaranteed_radius_over_lmax,
            measured_radius_over_lmax: selected.measured_radius_over_lmax,
            candidates,
        })
    }

    /// The error reported when no registered orienter accepts the budget.
    fn no_candidate_error(&self) -> OrientError {
        if (1..=5).contains(&self.budget.k) {
            OrientError::NoApplicableAlgorithm {
                k: self.budget.k,
                phi: self.budget.phi,
            }
        } else {
            OrientError::UnsupportedAntennaCount { k: self.budget.k }
        }
    }
}

/// The best radius bound the *implemented* algorithms prove for a `(k, φ)`
/// budget, derived from the shared paper registry — this is the Table 1
/// value except for the `k = 1` intermediate regime where the `[4]`
/// construction is not re-implemented (see DESIGN.md).
pub fn implemented_radius_guarantee(k: usize, phi: f64) -> Option<f64> {
    Registry::shared_paper().radius_guarantee(k, phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::theorem2_spread_threshold;
    use crate::verify::{verify, verify_with_budget};
    use antennae_geometry::{Point, PI, TAU};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect();
        Instance::new(points).unwrap()
    }

    #[test]
    fn paper_registry_lists_all_eight_constructions() {
        let registry = Registry::paper();
        assert_eq!(registry.len(), 8);
        let kinds = registry.kinds();
        assert_eq!(kinds[0], AlgorithmKind::Theorem2);
        assert_eq!(kinds[1], AlgorithmKind::Theorem3);
        for (i, beams) in (2..=5).enumerate() {
            assert_eq!(kinds[2 + i], AlgorithmKind::Chains { k: beams });
        }
        assert_eq!(kinds[6], AlgorithmKind::OneAntennaWide);
        assert_eq!(kinds[7], AlgorithmKind::Hamiltonian);
    }

    #[test]
    fn rejects_invalid_k() {
        let instance = random_instance(10, 1);
        assert!(matches!(
            Solver::on(&instance).budget(0, 1.0).run(),
            Err(OrientError::UnsupportedAntennaCount { k: 0 })
        ));
        assert!(matches!(
            Solver::on(&instance).budget(7, 1.0).run(),
            Err(OrientError::UnsupportedAntennaCount { k: 7 })
        ));
        assert!(matches!(
            Solver::on(&instance)
                .budget(9, 1.0)
                .policy(SelectionPolicy::Portfolio)
                .run(),
            Err(OrientError::UnsupportedAntennaCount { k: 9 })
        ));
    }

    #[test]
    fn empty_registry_reports_no_applicable_algorithm() {
        let instance = random_instance(10, 2);
        let result = Solver::on(&instance)
            .budget(3, 1.0)
            .registry(Registry::empty())
            .run();
        assert!(matches!(
            result,
            Err(OrientError::NoApplicableAlgorithm { k: 3, .. })
        ));
    }

    #[test]
    fn best_guarantee_selects_theorem2_when_spread_is_large() {
        let instance = random_instance(40, 2);
        for k in 1..=5 {
            let budget = AntennaBudget::new(k, theorem2_spread_threshold(k));
            let outcome = Solver::on(&instance).with_budget(budget).run().unwrap();
            assert_eq!(outcome.algorithm, AlgorithmKind::Theorem2, "k={k}");
            assert_eq!(outcome.guaranteed_radius_over_lmax, Some(1.0));
            assert_eq!(outcome.candidates.len(), 1);
            assert!(outcome.candidates[0].selected);
            // Single-candidate policies keep the scheme only in the outcome.
            assert!(outcome.candidates[0].scheme.is_none());
            let report = verify_with_budget(&instance, &outcome.scheme, Some(budget));
            assert!(report.is_valid(), "k={k}: {:?}", report.violations);
            assert!(
                (outcome.measured_radius_over_lmax - report.max_radius_over_lmax).abs() < 1e-12
            );
        }
    }

    #[test]
    fn best_guarantee_walks_table1_rows() {
        let instance = random_instance(40, 3);
        let cases: Vec<(usize, f64, AlgorithmKind)> = vec![
            (1, 1.0, AlgorithmKind::Hamiltonian),
            (2, PI, AlgorithmKind::Theorem3),
            (2, 1.0, AlgorithmKind::Chains { k: 2 }),
            (3, 0.0, AlgorithmKind::Chains { k: 3 }),
            (4, 0.0, AlgorithmKind::Chains { k: 4 }),
            (5, 0.0, AlgorithmKind::Theorem2),
        ];
        for (k, phi, expected) in cases {
            let outcome = Solver::on(&instance).budget(k, phi).run().unwrap();
            assert_eq!(outcome.algorithm, expected, "k={k} phi={phi}");
        }
    }

    #[test]
    fn specific_policy_runs_exactly_the_requested_algorithm() {
        let instance = random_instance(30, 4);
        let outcome = Solver::on(&instance)
            .budget(3, 0.0)
            .policy(SelectionPolicy::Specific(AlgorithmKind::Chains { k: 2 }))
            .run()
            .unwrap();
        assert_eq!(outcome.algorithm, AlgorithmKind::Chains { k: 2 });
        assert_eq!(outcome.guaranteed_radius_over_lmax, Some(2.0));

        // Hamiltonian is applicable to every valid budget.
        let outcome = Solver::on(&instance)
            .budget(3, 0.0)
            .policy(SelectionPolicy::Specific(AlgorithmKind::Hamiltonian))
            .run()
            .unwrap();
        assert_eq!(outcome.algorithm, AlgorithmKind::Hamiltonian);
        assert!(verify(&instance, &outcome.scheme).is_strongly_connected);
    }

    #[test]
    fn specific_policy_rejects_inapplicable_budgets() {
        let instance = random_instance(20, 5);
        // Theorem 3 needs k = 2 and φ ≥ 2π/3.
        for (k, phi) in [(2usize, 1.0), (3, PI)] {
            let result = Solver::on(&instance)
                .budget(k, phi)
                .policy(SelectionPolicy::Specific(AlgorithmKind::Theorem3))
                .run();
            assert!(
                matches!(
                    result,
                    Err(OrientError::AlgorithmNotApplicable {
                        algorithm: AlgorithmKind::Theorem3,
                        ..
                    })
                ),
                "k={k} phi={phi}"
            );
        }
    }

    #[test]
    fn portfolio_reports_every_applicable_candidate() {
        let instance = random_instance(40, 6);
        let budget = AntennaBudget::new(3, 0.0);
        let outcome = Solver::on(&instance)
            .with_budget(budget)
            .policy(SelectionPolicy::Portfolio)
            .run()
            .unwrap();
        // Applicable at (3, 0): chains k=2, chains k=3, Hamiltonian.
        let kinds: Vec<AlgorithmKind> = outcome.candidates.iter().map(|c| c.algorithm).collect();
        assert_eq!(
            kinds,
            vec![
                AlgorithmKind::Chains { k: 2 },
                AlgorithmKind::Chains { k: 3 },
                AlgorithmKind::Hamiltonian,
            ]
        );
        assert_eq!(outcome.candidates.iter().filter(|c| c.selected).count(), 1);
        // Every candidate respects the budget it was solved under (all
        // portfolio candidates carry their scheme).
        for candidate in &outcome.candidates {
            let scheme = candidate
                .scheme
                .as_ref()
                .expect("portfolio candidate scheme");
            let report = verify_with_budget(&instance, scheme, Some(budget));
            assert!(
                report.is_valid(),
                "{}: {:?}",
                candidate.algorithm,
                report.violations
            );
        }
        // The selected candidate has the smallest measured radius.
        let min = outcome
            .candidates
            .iter()
            .map(|c| c.measured_radius_over_lmax)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(outcome.measured_radius_over_lmax, min);
    }

    #[test]
    fn portfolio_never_measures_worse_than_best_guarantee() {
        for seed in 0..4 {
            let instance = random_instance(45, 100 + seed);
            for k in 1..=5usize {
                for step in 0..=6 {
                    let budget = AntennaBudget::new(k, TAU * step as f64 / 6.0);
                    let best = Solver::on(&instance).with_budget(budget).run().unwrap();
                    let portfolio = Solver::on(&instance)
                        .with_budget(budget)
                        .policy(SelectionPolicy::Portfolio)
                        .run()
                        .unwrap();
                    assert!(
                        portfolio.measured_radius_over_lmax
                            <= best.measured_radius_over_lmax + 1e-12,
                        "k={k} step={step}: portfolio {} > best {}",
                        portfolio.measured_radius_over_lmax,
                        best.measured_radius_over_lmax
                    );
                }
            }
        }
    }

    #[test]
    fn sequential_and_parallel_portfolios_agree() {
        let instance = random_instance(35, 7);
        let budget = AntennaBudget::new(2, PI);
        let seq = Solver::on(&instance)
            .with_budget(budget)
            .policy(SelectionPolicy::Portfolio)
            .threads(1)
            .run()
            .unwrap();
        let par = Solver::on(&instance)
            .with_budget(budget)
            .policy(SelectionPolicy::Portfolio)
            .threads(4)
            .run()
            .unwrap();
        assert_eq!(seq.algorithm, par.algorithm);
        assert_eq!(seq.measured_radius_over_lmax, par.measured_radius_over_lmax);
        assert_eq!(seq.candidates.len(), par.candidates.len());
    }

    #[test]
    fn custom_orienters_can_be_registered() {
        /// A toy construction: every sensor gets one omnidirectional antenna
        /// of radius equal to the instance diameter.
        struct OmniOrienter;
        impl Orienter for OmniOrienter {
            fn kind(&self) -> AlgorithmKind {
                AlgorithmKind::Hamiltonian // reuse a kind for the test
            }
            fn applicability(&self, budget: &AntennaBudget) -> Option<Guarantee> {
                (budget.phi >= TAU).then(Guarantee::heuristic)
            }
            fn orient(
                &self,
                instance: &Instance,
                _budget: AntennaBudget,
            ) -> Result<OrientationScheme, OrientError> {
                let points = instance.points();
                let diameter = points
                    .iter()
                    .flat_map(|a| points.iter().map(move |b| a.distance(b)))
                    .fold(0.0, f64::max);
                let assignments = points
                    .iter()
                    .map(|_| {
                        crate::antenna::SensorAssignment::new(vec![crate::antenna::Antenna::new(
                            antennae_geometry::Angle::from_radians(0.0),
                            TAU,
                            diameter,
                        )])
                    })
                    .collect();
                Ok(OrientationScheme::new(assignments))
            }
        }

        let instance = random_instance(15, 8);
        let mut registry = Registry::empty();
        registry.register(Box::new(OmniOrienter));
        let outcome = Solver::on(&instance)
            .budget(1, TAU)
            .registry(registry)
            .run()
            .unwrap();
        assert!(verify(&instance, &outcome.scheme).is_strongly_connected);
        assert!(outcome.guaranteed_radius_over_lmax.is_none());
    }

    #[test]
    fn implemented_guarantee_matches_registry_derivation() {
        for k in 0..=6usize {
            for step in 0..=10 {
                let phi = TAU * step as f64 / 10.0;
                assert_eq!(
                    implemented_radius_guarantee(k, phi),
                    Registry::paper().radius_guarantee(k, phi),
                    "k={k} phi={phi}"
                );
            }
        }
        assert_eq!(implemented_radius_guarantee(0, 1.0), None);
        assert_eq!(implemented_radius_guarantee(6, 1.0), None);
        assert_eq!(implemented_radius_guarantee(1, 0.5), None);
        assert_eq!(implemented_radius_guarantee(5, 0.0), Some(1.0));
    }

    #[test]
    fn run_verified_checks_selected_and_all_candidates() {
        let instance = random_instance(40, 9);
        // Single-candidate policy: one report, equal to the selected one.
        let verified = Solver::on(&instance).budget(2, PI).run_verified().unwrap();
        assert!(verified.is_valid());
        assert_eq!(verified.candidate_reports.len(), 1);
        assert_eq!(verified.candidate_reports[0], verified.report);
        assert_eq!(
            verified.report,
            verify_with_budget(
                &instance,
                &verified.outcome.scheme,
                Some(AntennaBudget::new(2, PI))
            )
        );

        // Portfolio: one report per candidate, aligned by index, all from a
        // shared session.
        let verified = Solver::on(&instance)
            .budget(2, PI)
            .policy(SelectionPolicy::Portfolio)
            .run_verified()
            .unwrap();
        assert!(verified.outcome.candidates.len() > 1);
        assert_eq!(
            verified.candidate_reports.len(),
            verified.outcome.candidates.len()
        );
        for (candidate, report) in verified
            .outcome
            .candidates
            .iter()
            .zip(&verified.candidate_reports)
        {
            assert!(
                report.is_valid(),
                "{}: {:?}",
                candidate.algorithm,
                report.violations
            );
            let scheme = candidate.scheme.as_ref().unwrap();
            assert_eq!(
                *report,
                verify_with_budget(&instance, scheme, Some(AntennaBudget::new(2, PI)))
            );
        }
        let selected = verified
            .outcome
            .candidates
            .iter()
            .position(|c| c.selected)
            .unwrap();
        assert_eq!(verified.report, verified.candidate_reports[selected]);
        assert_eq!(
            verified.report.max_radius_over_lmax,
            verified.outcome.measured_radius_over_lmax
        );
    }

    #[test]
    fn run_verified_flags_a_budget_overspending_orienter() {
        /// A deliberately broken construction: declares itself applicable to
        /// one beam but mounts two.
        struct Overspender;
        impl Orienter for Overspender {
            fn kind(&self) -> AlgorithmKind {
                AlgorithmKind::Hamiltonian
            }
            fn applicability(&self, _budget: &AntennaBudget) -> Option<Guarantee> {
                Some(Guarantee::heuristic())
            }
            fn orient(
                &self,
                instance: &Instance,
                _budget: AntennaBudget,
            ) -> Result<OrientationScheme, OrientError> {
                let points = instance.points();
                let n = points.len();
                let assignments = (0..n)
                    .map(|i| {
                        let next = (i + 1) % n;
                        let prev = (i + n - 1) % n;
                        crate::antenna::SensorAssignment::new(vec![
                            crate::antenna::Antenna::beam(
                                &points[i],
                                &points[next],
                                points[i].distance(&points[next]),
                            ),
                            crate::antenna::Antenna::beam(
                                &points[i],
                                &points[prev],
                                points[i].distance(&points[prev]),
                            ),
                        ])
                    })
                    .collect();
                Ok(OrientationScheme::new(assignments))
            }
        }

        let instance = random_instance(12, 10);
        let mut registry = Registry::empty();
        registry.register(Box::new(Overspender));
        let verified = Solver::on(&instance)
            .budget(1, 0.0)
            .registry(registry)
            .run_verified()
            .unwrap();
        assert!(!verified.is_valid());
        assert!(verified
            .report
            .violations
            .iter()
            .any(|v| matches!(v, crate::verify::Violation::TooManyAntennas { .. })));
    }

    #[test]
    fn single_sensor_instances_measure_zero_radius() {
        let instance = Instance::new(vec![Point::new(0.0, 0.0)]).unwrap();
        let outcome = Solver::on(&instance)
            .budget(2, PI)
            .policy(SelectionPolicy::Portfolio)
            .run()
            .unwrap();
        assert_eq!(outcome.measured_radius_over_lmax, 0.0);
    }
}
