//! Order-preserving parallel map, the execution primitive under the batch
//! orientation pipeline ([`crate::batch::BatchOrienter`]), the verification
//! engine's fan-outs ([`crate::verify::VerificationEngine::verify_batch`],
//! [`crate::verify::VerificationSession::verify_schemes`] and large
//! single-digraph rebuilds) and the simulation crate's parameter sweeps
//! (`antennae_sim::sweep` re-exports these functions).
//!
//! Work items are pulled off a shared atomic counter by
//! `std::thread::scope` workers, so no item is processed twice and results
//! land in input order regardless of scheduling.

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` using up to `threads` worker threads, preserving the
/// input order of the results.
///
/// With `threads <= 1` (or a single item) the map runs inline on the calling
/// thread — handy for debugging and for comparing sequential vs parallel
/// throughput in the benches.
///
/// Results are written through **disjoint chunk-claimed slots** carved out of
/// the output vector's spare capacity: workers pull chunk indices off one
/// atomic counter and take exclusive `&mut` ownership of their chunk's slots
/// (one uncontended `Mutex::take` per *chunk*, not per item, purely to hand
/// the `&mut` slice across threads safely).  The earlier implementation
/// locked a per-item `Mutex<Option<R>>` for every single result, which put a
/// lock acquisition on the hot path of every batch orientation, portfolio
/// fan-out and verification sweep; the `parallel` bench pins the difference.
///
/// # Examples
///
/// ```
/// use antennae_core::parallel::parallel_map;
///
/// let items: Vec<u64> = (0..100).collect();
/// let squares = parallel_map(&items, 4, |x| x * x);
/// assert_eq!(squares[9], 81);
/// assert_eq!(squares.len(), 100);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if threads <= 1 || items.len() == 1 {
        return items.iter().map(&f).collect();
    }
    let len = items.len();
    let worker_count = threads.min(len);
    // Small chunks keep dynamic load balancing (stragglers don't serialize
    // the tail), large chunks amortize the claim; 4 chunks per worker is a
    // comfortable middle for this workspace's coarse work items.
    let chunk_size = len.div_ceil(worker_count * 4).max(1);

    let mut results: Vec<R> = Vec::with_capacity(len);
    // Chunk the uninitialized tail of the output vector into disjoint `&mut`
    // slots.  Each chunk is claimed exactly once (`Option::take` under a
    // never-contended per-chunk mutex), after which its worker writes every
    // slot without further synchronization.
    let slots: Vec<Mutex<Option<&mut [MaybeUninit<R>]>>> = results.spare_capacity_mut()[..len]
        .chunks_mut(chunk_size)
        .map(|chunk| Mutex::new(Some(chunk)))
        .collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| loop {
                let chunk_index = next.fetch_add(1, Ordering::Relaxed);
                if chunk_index >= slots.len() {
                    break;
                }
                let chunk = slots[chunk_index]
                    .lock()
                    .expect("chunk slot poisoned")
                    .take()
                    .expect("every chunk is claimed exactly once");
                let base = chunk_index * chunk_size;
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    slot.write(f(&items[base + offset]));
                }
            });
        }
    });

    // SAFETY: the scope joined every worker without panicking, the chunks
    // tile `0..len` exactly, and each claimed chunk wrote all of its slots —
    // so all `len` slots are initialized.  (If a worker panicked, the scope
    // propagates the panic above this point and the written slots leak,
    // which is safe.)
    unsafe { results.set_len(len) };
    results
}

/// The number of worker threads parallel pipelines use by default: the
/// machine's available parallelism, capped at 8 (the workloads are
/// memory-light and small enough that more threads stop paying off).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = parallel_map(&Vec::<i32>::new(), 4, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn sequential_and_parallel_agree_and_preserve_order() {
        let items: Vec<u64> = (0..200).collect();
        let seq = parallel_map(&items, 1, |x| x * x);
        let par = parallel_map(&items, 4, |x| x * x);
        assert_eq!(seq, par);
        assert_eq!(seq[10], 100);
        assert_eq!(seq.len(), 200);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let counter = AtomicU32::new(0);
        let items: Vec<u32> = (0..500).collect();
        let out = parallel_map(&items, 8, |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            *x
        });
        assert_eq!(out.len(), 500);
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = vec![1, 2, 3];
        let out = parallel_map(&items, 64, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(default_threads() <= 8);
    }
}
