//! Order-preserving parallel map — re-exported from [`antennae_parallel`].
//!
//! The primitive used to live in this module; it moved into the bottom-layer
//! `antennae-parallel` crate when the *build* pipeline (kd-tree subtree
//! construction in `antennae-geometry`, chunked Borůvka rounds in
//! `antennae-graph`) learned to fan out too — those crates sit below
//! `antennae-core` in the dependency graph and could not reach up here.
//! Every existing `antennae_core::parallel::…` import path keeps working
//! through these re-exports.
//!
//! Consumers above the substrate layer: the batch orientation pipeline
//! ([`crate::batch::BatchOrienter`]), the verification engine's fan-outs
//! ([`crate::verify::VerificationEngine::verify_batch`],
//! [`crate::verify::VerificationSession::verify_schemes`] and large
//! single-digraph rebuilds), the chunked Theorem-2 sector assignment
//! ([`crate::algorithms::theorem2`]) and the simulation crate's parameter
//! sweeps (`antennae_sim::sweep` re-exports these functions in turn).

pub use antennae_parallel::{chunk_ranges, default_threads, parallel_map, DEFAULT_THREAD_CAP};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_live() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, default_threads(), |x| x + 1);
        assert_eq!(out[63], 64);
        let cap = DEFAULT_THREAD_CAP;
        assert_eq!(chunk_ranges(cap, 1), vec![(0, cap)]);
    }
}
