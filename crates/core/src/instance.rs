//! Problem instances: a sensor point set together with its degree-5
//! Euclidean MST substrate.

use crate::error::OrientError;
use antennae_geometry::Point;
use antennae_graph::euclidean::EuclideanMst;
use antennae_graph::rooted::RootedTree;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A problem instance: the sensor locations, the degree-5 Euclidean MST the
/// orientation algorithms walk, and its longest edge `lmax`.
///
/// Every radius reported by the algorithms and the experiments is naturally
/// compared against `lmax`, the paper's lower bound on any feasible range
/// (`lmax = 1` after the paper's normalization).
///
/// The rooted view of the MST is derived lazily and cached
/// ([`Instance::rooted_tree`]): a Portfolio solve runs several tree-walking
/// constructions against the same instance, and before the cache each of
/// them re-rooted and re-sorted the same tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    points: Vec<Point>,
    mst: EuclideanMst,
    /// Lazily built rooted view of `mst` (not serialized: it is derived
    /// state, rebuilt on first use after deserialization).
    #[serde(skip)]
    rooted: OnceLock<RootedTree>,
}

impl Instance {
    /// Builds an instance from sensor locations.
    ///
    /// Fails on an empty point set or when the MST substrate cannot be
    /// constructed.
    pub fn new(points: Vec<Point>) -> Result<Self, OrientError> {
        if points.is_empty() {
            return Err(OrientError::EmptyInstance);
        }
        let mst = EuclideanMst::build(&points)
            .map_err(|e| OrientError::MstConstruction(e.to_string()))?;
        Ok(Instance {
            points,
            mst,
            rooted: OnceLock::new(),
        })
    }

    /// Wraps an already-built MST substrate without re-running an engine —
    /// the materialization hook of [`crate::dynamic::DynamicInstance`],
    /// whose incrementally maintained tree is handed over as-is.
    pub(crate) fn from_prebuilt(points: Vec<Point>, mst: EuclideanMst) -> Self {
        Instance {
            points,
            mst,
            rooted: OnceLock::new(),
        }
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the instance has no sensors (never constructed by
    /// [`Instance::new`], but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sensor locations.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The degree-5 Euclidean MST substrate.
    pub fn mst(&self) -> &EuclideanMst {
        &self.mst
    }

    /// The longest MST edge, the paper's lower bound on the antenna range
    /// needed for strong connectivity (0 for a single sensor).
    pub fn lmax(&self) -> f64 {
        self.mst.lmax()
    }

    /// A rooted view of the MST, rooted at a degree-one vertex as the paper
    /// prescribes.
    ///
    /// Built on first call and cached for the lifetime of the instance:
    /// `hamiltonian`, `chains` and `theorem3` all walk this view, so a
    /// Portfolio solve used to rebuild the identical tree once per
    /// candidate construction.
    pub fn rooted_tree(&self) -> &RootedTree {
        self.rooted.get_or_init(|| RootedTree::from_mst(&self.mst))
    }

    /// Returns a copy of the instance rescaled so that `lmax = 1`, matching
    /// the paper's normalization.  A single-sensor instance (where `lmax` is
    /// 0) is returned unchanged.
    ///
    /// MST topology is scale-invariant, so the substrate is rescaled
    /// directly ([`EuclideanMst::rescaled`]) instead of re-running the full
    /// engine build: the normalized instance has the *exact* same edge set
    /// and `lmax == 1.0` exactly.
    pub fn normalized(&self) -> Result<Instance, OrientError> {
        let lmax = self.lmax();
        if lmax <= 0.0 {
            return Ok(self.clone());
        }
        let mst = self.mst.rescaled(lmax);
        Ok(Instance {
            points: mst.points().to_vec(),
            mst,
            rooted: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_points() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ]
    }

    #[test]
    fn construction_and_basic_accessors() {
        let inst = Instance::new(square_points()).unwrap();
        assert_eq!(inst.len(), 4);
        assert!(!inst.is_empty());
        assert_eq!(inst.points().len(), 4);
        assert!((inst.lmax() - 2.0).abs() < 1e-12);
        assert_eq!(inst.mst().edges().len(), 3);
    }

    #[test]
    fn empty_point_set_is_rejected() {
        assert!(matches!(
            Instance::new(vec![]),
            Err(OrientError::EmptyInstance)
        ));
    }

    #[test]
    fn single_sensor_instance() {
        let inst = Instance::new(vec![Point::new(1.0, 1.0)]).unwrap();
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.lmax(), 0.0);
        let tree = inst.rooted_tree();
        assert_eq!(tree.len(), 1);
        // Normalization of a degenerate instance is a no-op.
        assert_eq!(inst.normalized().unwrap().len(), 1);
    }

    #[test]
    fn normalization_rescales_lmax_to_one() {
        let inst = Instance::new(square_points()).unwrap();
        let norm = inst.normalized().unwrap();
        // Rescaling (not rebuilding) makes this exact.
        assert_eq!(norm.lmax(), 1.0);
        assert_eq!(norm.len(), inst.len());
    }

    #[test]
    fn normalization_preserves_the_exact_edge_set() {
        // A tie-heavy lattice would let a rebuild pick a different (equally
        // minimal) tree; the rescaling path must preserve the edge set
        // bit-for-bit.
        let mut pts = Vec::new();
        for i in 0..5 {
            for j in 0..4 {
                pts.push(Point::new(i as f64 * 3.0, j as f64 * 3.0));
            }
        }
        let inst = Instance::new(pts).unwrap();
        let norm = inst.normalized().unwrap();
        assert_eq!(norm.lmax(), 1.0);
        let key = |e: &antennae_graph::Edge| (e.u.min(e.v), e.u.max(e.v));
        let mut original: Vec<_> = inst.mst().edges().iter().map(key).collect();
        let mut rescaled: Vec<_> = norm.mst().edges().iter().map(key).collect();
        original.sort_unstable();
        rescaled.sort_unstable();
        assert_eq!(original, rescaled);
        // The instance's own points match the rescaled substrate's points.
        assert_eq!(norm.points(), norm.mst().points());
    }

    #[test]
    fn rooted_tree_is_cached_and_stable() {
        let inst = Instance::new(square_points()).unwrap();
        let first = inst.rooted_tree() as *const RootedTree;
        let second = inst.rooted_tree() as *const RootedTree;
        assert_eq!(first, second, "second call must hit the cache");
        // A clone gets its own (equal-content) tree.
        let cloned = inst.clone();
        assert_eq!(cloned.rooted_tree().root(), inst.rooted_tree().root());
        assert_eq!(cloned.rooted_tree().len(), inst.rooted_tree().len());
    }

    #[test]
    fn rooted_tree_is_rooted_at_a_leaf() {
        let inst = Instance::new(square_points()).unwrap();
        let tree = inst.rooted_tree();
        assert_eq!(tree.tree_degree(tree.root()), 1);
        assert_eq!(tree.len(), 4);
    }
}
