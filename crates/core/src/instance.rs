//! Problem instances: a sensor point set together with its degree-5
//! Euclidean MST substrate.

use crate::error::OrientError;
use antennae_geometry::Point;
use antennae_graph::euclidean::EuclideanMst;
use antennae_graph::rooted::RootedTree;
use serde::{Deserialize, Serialize};

/// A problem instance: the sensor locations, the degree-5 Euclidean MST the
/// orientation algorithms walk, and its longest edge `lmax`.
///
/// Every radius reported by the algorithms and the experiments is naturally
/// compared against `lmax`, the paper's lower bound on any feasible range
/// (`lmax = 1` after the paper's normalization).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    points: Vec<Point>,
    mst: EuclideanMst,
}

impl Instance {
    /// Builds an instance from sensor locations.
    ///
    /// Fails on an empty point set or when the MST substrate cannot be
    /// constructed.
    pub fn new(points: Vec<Point>) -> Result<Self, OrientError> {
        if points.is_empty() {
            return Err(OrientError::EmptyInstance);
        }
        let mst = EuclideanMst::build(&points)
            .map_err(|e| OrientError::MstConstruction(e.to_string()))?;
        Ok(Instance { points, mst })
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the instance has no sensors (never constructed by
    /// [`Instance::new`], but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sensor locations.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The degree-5 Euclidean MST substrate.
    pub fn mst(&self) -> &EuclideanMst {
        &self.mst
    }

    /// The longest MST edge, the paper's lower bound on the antenna range
    /// needed for strong connectivity (0 for a single sensor).
    pub fn lmax(&self) -> f64 {
        self.mst.lmax()
    }

    /// A rooted view of the MST, rooted at a degree-one vertex as the paper
    /// prescribes.
    pub fn rooted_tree(&self) -> RootedTree {
        RootedTree::from_mst(&self.mst)
    }

    /// Returns a copy of the instance rescaled so that `lmax = 1`, matching
    /// the paper's normalization.  A single-sensor instance (where `lmax` is
    /// 0) is returned unchanged.
    pub fn normalized(&self) -> Result<Instance, OrientError> {
        let lmax = self.lmax();
        if lmax <= 0.0 {
            return Ok(self.clone());
        }
        let scaled: Vec<Point> = self
            .points
            .iter()
            .map(|p| Point::new(p.x / lmax, p.y / lmax))
            .collect();
        Instance::new(scaled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_points() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ]
    }

    #[test]
    fn construction_and_basic_accessors() {
        let inst = Instance::new(square_points()).unwrap();
        assert_eq!(inst.len(), 4);
        assert!(!inst.is_empty());
        assert_eq!(inst.points().len(), 4);
        assert!((inst.lmax() - 2.0).abs() < 1e-12);
        assert_eq!(inst.mst().edges().len(), 3);
    }

    #[test]
    fn empty_point_set_is_rejected() {
        assert!(matches!(Instance::new(vec![]), Err(OrientError::EmptyInstance)));
    }

    #[test]
    fn single_sensor_instance() {
        let inst = Instance::new(vec![Point::new(1.0, 1.0)]).unwrap();
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.lmax(), 0.0);
        let tree = inst.rooted_tree();
        assert_eq!(tree.len(), 1);
        // Normalization of a degenerate instance is a no-op.
        assert_eq!(inst.normalized().unwrap().len(), 1);
    }

    #[test]
    fn normalization_rescales_lmax_to_one() {
        let inst = Instance::new(square_points()).unwrap();
        let norm = inst.normalized().unwrap();
        assert!((norm.lmax() - 1.0).abs() < 1e-9);
        assert_eq!(norm.len(), inst.len());
    }

    #[test]
    fn rooted_tree_is_rooted_at_a_leaf() {
        let inst = Instance::new(square_points()).unwrap();
        let tree = inst.rooted_tree();
        assert_eq!(tree.tree_degree(tree.root()), 1);
        assert_eq!(tree.len(), 4);
    }
}
