//! Error types for instance construction and orientation.

use serde::{Deserialize, Serialize};

/// Errors produced by the orientation algorithms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OrientError {
    /// The point set was empty.
    EmptyInstance,
    /// The MST substrate could not be built (e.g. the degree-5 repair failed
    /// on a degenerate input).
    MstConstruction(String),
    /// The requested number of antennae per sensor is outside `1..=5`.
    UnsupportedAntennaCount {
        /// The requested `k`.
        k: usize,
    },
    /// The requested angular budget is too small for the selected algorithm
    /// (e.g. Theorem 3 requires `φ₂ ≥ 2π/3`).
    InsufficientSpread {
        /// The requested budget in radians.
        requested: f64,
        /// The minimum the selected algorithm requires.
        required: f64,
    },
    /// The local case analysis found no feasible configuration at a vertex.
    ///
    /// The paper proves this cannot happen for valid inputs; it is surfaced
    /// as an error (with the offending vertex) rather than a panic so that
    /// degenerate floating-point inputs fail loudly and debuggably.
    NoFeasibleLocalConfiguration {
        /// Index of the vertex where the search failed.
        vertex: usize,
    },
    /// An internal invariant was violated (reported with context).
    Internal(String),
}

impl std::fmt::Display for OrientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrientError::EmptyInstance => write!(f, "the instance contains no sensors"),
            OrientError::MstConstruction(msg) => write!(f, "MST construction failed: {msg}"),
            OrientError::UnsupportedAntennaCount { k } => {
                write!(f, "unsupported antenna count k = {k} (expected 1..=5)")
            }
            OrientError::InsufficientSpread {
                requested,
                required,
            } => write!(
                f,
                "angular budget {requested:.4} rad is below the {required:.4} rad the algorithm requires"
            ),
            OrientError::NoFeasibleLocalConfiguration { vertex } => write!(
                f,
                "no feasible local antenna configuration at vertex {vertex}"
            ),
            OrientError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for OrientError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_data() {
        let e = OrientError::UnsupportedAntennaCount { k: 9 };
        assert!(e.to_string().contains('9'));
        let e = OrientError::InsufficientSpread {
            requested: 1.0,
            required: 2.0,
        };
        assert!(e.to_string().contains("1.0000"));
        assert!(e.to_string().contains("2.0000"));
        let e = OrientError::NoFeasibleLocalConfiguration { vertex: 17 };
        assert!(e.to_string().contains("17"));
        assert!(OrientError::EmptyInstance.to_string().contains("no sensors"));
        assert!(OrientError::MstConstruction("x".into()).to_string().contains('x'));
        assert!(OrientError::Internal("boom".into()).to_string().contains("boom"));
    }
}
