//! Error types for instance construction and orientation.

use crate::algorithms::AlgorithmKind;
use serde::{Deserialize, Serialize};

/// Errors produced by the orientation algorithms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OrientError {
    /// The point set was empty.
    EmptyInstance,
    /// The MST substrate could not be built (e.g. the degree-5 repair failed
    /// on a degenerate input).
    MstConstruction(String),
    /// The requested number of antennae per sensor is outside `1..=5`.
    UnsupportedAntennaCount {
        /// The requested `k`.
        k: usize,
    },
    /// The requested angular budget is too small for the selected algorithm
    /// (e.g. Theorem 3 requires `φ₂ ≥ 2π/3`).
    InsufficientSpread {
        /// The requested budget in radians.
        requested: f64,
        /// The minimum the selected algorithm requires.
        required: f64,
    },
    /// The local case analysis found no feasible configuration at a vertex.
    ///
    /// The paper proves this cannot happen for valid inputs; it is surfaced
    /// as an error (with the offending vertex) rather than a panic so that
    /// degenerate floating-point inputs fail loudly and debuggably.
    NoFeasibleLocalConfiguration {
        /// Index of the vertex where the search failed.
        vertex: usize,
    },
    /// No registered algorithm accepts the requested budget (raised by the
    /// solver when a custom [`Registry`](crate::solver::Registry) has no
    /// applicable entry; the paper registry always has one for `k ∈ 1..=5`).
    NoApplicableAlgorithm {
        /// The requested antenna count.
        k: usize,
        /// The requested spread budget in radians.
        phi: f64,
    },
    /// The specifically requested algorithm is not registered, or its
    /// applicability check rejects the budget
    /// ([`SelectionPolicy::Specific`](crate::solver::SelectionPolicy::Specific)).
    AlgorithmNotApplicable {
        /// The requested algorithm.
        algorithm: AlgorithmKind,
        /// The requested antenna count.
        k: usize,
        /// The requested spread budget in radians.
        phi: f64,
    },
    /// A dynamic-instance edit referenced a sensor id that is not live
    /// (never assigned, or already removed).
    UnknownSensor {
        /// The offending sensor id.
        id: usize,
    },
    /// An internal invariant was violated (reported with context).
    Internal(String),
}

impl std::fmt::Display for OrientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrientError::EmptyInstance => write!(f, "the instance contains no sensors"),
            OrientError::MstConstruction(msg) => write!(f, "MST construction failed: {msg}"),
            OrientError::UnsupportedAntennaCount { k } => {
                write!(f, "unsupported antenna count k = {k} (expected 1..=5)")
            }
            OrientError::InsufficientSpread {
                requested,
                required,
            } => write!(
                f,
                "angular budget {requested:.4} rad is below the {required:.4} rad the algorithm requires"
            ),
            OrientError::NoFeasibleLocalConfiguration { vertex } => write!(
                f,
                "no feasible local antenna configuration at vertex {vertex}"
            ),
            OrientError::NoApplicableAlgorithm { k, phi } => write!(
                f,
                "no registered algorithm accepts the budget (k = {k}, φ = {phi:.4} rad)"
            ),
            OrientError::AlgorithmNotApplicable { algorithm, k, phi } => write!(
                f,
                "algorithm {algorithm} is not registered or not applicable to the budget \
                 (k = {k}, φ = {phi:.4} rad)"
            ),
            OrientError::UnknownSensor { id } => {
                write!(f, "sensor id {id} is not live in the dynamic instance")
            }
            OrientError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for OrientError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_data() {
        let e = OrientError::UnsupportedAntennaCount { k: 9 };
        assert!(e.to_string().contains('9'));
        let e = OrientError::InsufficientSpread {
            requested: 1.0,
            required: 2.0,
        };
        assert!(e.to_string().contains("1.0000"));
        assert!(e.to_string().contains("2.0000"));
        let e = OrientError::NoFeasibleLocalConfiguration { vertex: 17 };
        assert!(e.to_string().contains("17"));
        let e = OrientError::NoApplicableAlgorithm { k: 3, phi: 1.5 };
        assert!(e.to_string().contains("k = 3"));
        assert!(e.to_string().contains("1.5000"));
        let e = OrientError::AlgorithmNotApplicable {
            algorithm: AlgorithmKind::Theorem3,
            k: 4,
            phi: 0.25,
        };
        assert!(e.to_string().contains("theorem3"));
        assert!(e.to_string().contains("k = 4"));
        assert!(OrientError::EmptyInstance
            .to_string()
            .contains("no sensors"));
        assert!(OrientError::MstConstruction("x".into())
            .to_string()
            .contains('x'));
        assert!(OrientError::Internal("boom".into())
            .to_string()
            .contains("boom"));
    }
}
