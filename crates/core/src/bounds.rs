//! The paper's theoretical bounds (Table 1) as plain functions.
//!
//! All radii are expressed in units of `lmax` (the paper normalizes
//! `lmax = 1`).  These functions are used by the dispatcher to pick an
//! algorithm, by the verifier to check that measured radii respect the
//! claimed guarantees, and by the experiment harness to print the
//! "paper bound" column of every table.

use antennae_geometry::{PI, TAU};

/// Absolute tolerance used whenever a spread budget is compared against one
/// of the paper's angular thresholds (Theorem 2's `2π(5−k)/5`, Theorem 3's
/// `2π/3`, …).
///
/// Budgets are produced by floating-point expressions like `2.0 * PI / 3.0`
/// or `TAU * step / n`, so an exact `>=` would reject budgets that are one
/// ulp below the threshold they were meant to hit.  Every spread-threshold
/// comparison in the crate — algorithm applicability, the per-algorithm
/// precondition checks, and the verifier's budget check — uses this single
/// constant.
pub const SPREAD_EPS: f64 = 1e-9;

/// Normalizes a measured antenna radius by `lmax`, the paper's unit.
///
/// The degenerate cases are pinned down once, here, so the verifier's
/// [`VerificationReport::max_radius_over_lmax`](crate::verify::VerificationReport::max_radius_over_lmax)
/// and the solver's measured radius agree bit-for-bit even on coincident
/// point sets:
///
/// * `lmax > 0` → the plain ratio `max_radius / lmax`;
/// * `lmax == 0` (all sensors coincide) with a positive radius →
///   `f64::INFINITY` (any positive range is infinitely larger than needed);
/// * `lmax == 0` with `max_radius == 0` → `0.0` (the zero scheme is optimal
///   on a degenerate instance).
///
/// The result is never NaN for the non-negative inputs produced by
/// [`OrientationScheme::max_radius`](crate::scheme::OrientationScheme::max_radius)
/// and [`Instance::lmax`](crate::instance::Instance::lmax).
pub fn radius_over_lmax(max_radius: f64, lmax: f64) -> f64 {
    if lmax > 0.0 {
        max_radius / lmax
    } else if max_radius > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

/// Spread threshold of Theorem 2: with `k` antennae per sensor and total
/// spread at least `2π(5−k)/5`, radius 1 (= `lmax`) suffices.
pub fn theorem2_spread_threshold(k: usize) -> f64 {
    assert!((1..=5).contains(&k), "k must be in 1..=5");
    TAU * (5 - k) as f64 / 5.0
}

/// Lemma 1: the spread that is always sufficient (and sometimes necessary)
/// at a degree-`d` node equipped with `k ≤ d` antennae.
pub fn lemma1_sufficient_spread(d: usize, k: usize) -> f64 {
    assert!(d >= 1, "degree must be at least 1");
    if k >= d {
        return 0.0;
    }
    TAU * (d - k) as f64 / d as f64
}

/// Theorem 3 radius bound for two antennae with total spread `phi2`:
///
/// * `phi2 ≥ π` → `2·sin(2π/9)`
/// * `2π/3 ≤ phi2 < π` → `2·sin(π/2 − phi2/4)`
///
/// Returns `None` when `phi2 < 2π/3` (the theorem does not apply).
pub fn theorem3_radius(phi2: f64) -> Option<f64> {
    if phi2 >= PI {
        Some(2.0 * (2.0 * PI / 9.0).sin())
    } else if phi2 >= 2.0 * PI / 3.0 {
        Some(2.0 * (PI / 2.0 - phi2 / 4.0).sin())
    } else {
        None
    }
}

/// Theorem 5: three zero-spread antennae per sensor achieve radius √3.
pub const THEOREM5_RADIUS: f64 = 1.732_050_807_568_877_2; // √3

/// Theorem 6: four zero-spread antennae per sensor achieve radius √2.
pub const THEOREM6_RADIUS: f64 = std::f64::consts::SQRT_2;

/// The `[14]` baseline: one (or two) zero-spread antennae per sensor achieve
/// radius 2 via a bottleneck Hamiltonian cycle.
pub const HAMILTONIAN_RADIUS: f64 = 2.0;

/// The `[4]` baseline radius for a single antenna of spread `phi1` with
/// `π ≤ phi1 < 8π/5`: `2·sin(π − phi1/2)`.
///
/// Returns `None` outside that regime (below π the only general bound is the
/// Hamiltonian-cycle 2; at or above 8π/5 the radius is 1).
pub fn one_antenna_radius(phi1: f64) -> Option<f64> {
    if phi1 >= 8.0 * PI / 5.0 {
        Some(1.0)
    } else if phi1 >= PI {
        Some(2.0 * (PI - phi1 / 2.0).sin())
    } else {
        None
    }
}

/// The best radius bound the paper provides for a `(k, φ_k)` budget.
///
/// This is the minimum over the Table 1 rows that apply to `k' ≤ k` antennae
/// (a sensor with `k` antennae can always leave some unused, so every bound
/// for fewer antennae carries over).  `None` when `k` is outside `1..=5`.
pub fn table1_radius(k: usize, phi: f64) -> Option<f64> {
    if !(1..=5).contains(&k) {
        return None;
    }
    (1..=k)
        .filter_map(|k_used| table1_row_radius(k_used, phi))
        .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.min(r))))
}

/// The radius bound of the Table 1 rows for exactly `k` antennae with spread
/// sum `φ_k` (no carry-over from smaller `k`).
pub fn table1_row_radius(k: usize, phi: f64) -> Option<f64> {
    if !(1..=5).contains(&k) {
        return None;
    }
    let mut best = f64::INFINITY;
    match k {
        1 => {
            best = best.min(HAMILTONIAN_RADIUS);
            if let Some(r) = one_antenna_radius(phi) {
                best = best.min(r);
            }
        }
        2 => {
            best = best.min(HAMILTONIAN_RADIUS);
            if let Some(r) = theorem3_radius(phi) {
                best = best.min(r);
            }
        }
        3 => {
            best = best.min(THEOREM5_RADIUS);
        }
        4 => {
            best = best.min(THEOREM6_RADIUS);
        }
        5 => {
            best = best.min(1.0);
        }
        _ => unreachable!(),
    }
    if phi >= theorem2_spread_threshold(k) {
        best = best.min(1.0);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn radius_over_lmax_degenerate_cases() {
        assert_eq!(radius_over_lmax(3.0, 2.0), 1.5);
        assert_eq!(radius_over_lmax(0.0, 2.0), 0.0);
        // Coincident-points instance: lmax = 0.
        assert_eq!(radius_over_lmax(1e-300, 0.0), f64::INFINITY);
        assert_eq!(radius_over_lmax(0.0, 0.0), 0.0);
    }

    #[test]
    fn theorem2_thresholds_match_table1() {
        assert!((theorem2_spread_threshold(1) - 8.0 * PI / 5.0).abs() < 1e-12);
        assert!((theorem2_spread_threshold(2) - 6.0 * PI / 5.0).abs() < 1e-12);
        assert!((theorem2_spread_threshold(3) - 4.0 * PI / 5.0).abs() < 1e-12);
        assert!((theorem2_spread_threshold(4) - 2.0 * PI / 5.0).abs() < 1e-12);
        assert!(theorem2_spread_threshold(5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn theorem2_threshold_rejects_invalid_k() {
        theorem2_spread_threshold(6);
    }

    #[test]
    fn lemma1_spread_values() {
        assert!((lemma1_sufficient_spread(5, 1) - 8.0 * PI / 5.0).abs() < 1e-12);
        assert!((lemma1_sufficient_spread(5, 2) - 6.0 * PI / 5.0).abs() < 1e-12);
        assert!((lemma1_sufficient_spread(3, 1) - 4.0 * PI / 3.0).abs() < 1e-12);
        assert_eq!(lemma1_sufficient_spread(3, 3), 0.0);
        assert_eq!(lemma1_sufficient_spread(2, 5), 0.0);
    }

    #[test]
    fn theorem3_radius_regimes() {
        // φ₂ = π: 2·sin(2π/9) ≈ 1.2856.
        let at_pi = theorem3_radius(PI).unwrap();
        assert!((at_pi - 2.0 * (2.0 * PI / 9.0).sin()).abs() < 1e-12);
        assert!(at_pi < 1.29 && at_pi > 1.28);
        // φ₂ = 2π/3: 2·sin(π/3) = √3.
        let at_two_thirds = theorem3_radius(2.0 * PI / 3.0).unwrap();
        assert!((at_two_thirds - 3.0_f64.sqrt()).abs() < 1e-9);
        // Monotone decreasing in φ₂ on [2π/3, π).
        let mid = theorem3_radius(0.9 * PI).unwrap();
        assert!(mid < at_two_thirds);
        // Below 2π/3 the theorem does not apply.
        assert!(theorem3_radius(1.0).is_none());
    }

    #[test]
    fn one_antenna_radius_regimes() {
        assert_eq!(one_antenna_radius(8.0 * PI / 5.0), Some(1.0));
        assert_eq!(one_antenna_radius(TAU), Some(1.0));
        let at_pi = one_antenna_radius(PI).unwrap();
        assert!((at_pi - 2.0).abs() < 1e-12);
        assert!(one_antenna_radius(2.0).is_none());
    }

    #[test]
    fn table1_reproduces_every_row() {
        // k = 1 rows.
        assert!((table1_radius(1, 0.0).unwrap() - 2.0).abs() < 1e-12);
        assert!((table1_radius(1, 1.2 * PI).unwrap() - 2.0 * (PI - 0.6 * PI).sin()).abs() < 1e-12);
        assert!((table1_radius(1, 8.0 * PI / 5.0).unwrap() - 1.0).abs() < 1e-12);
        // k = 2 rows.
        assert!((table1_radius(2, 0.0).unwrap() - 2.0).abs() < 1e-12);
        assert!((table1_radius(2, 2.0 * PI / 3.0).unwrap() - 3.0_f64.sqrt()).abs() < 1e-9);
        assert!((table1_radius(2, PI).unwrap() - 2.0 * (2.0 * PI / 9.0).sin()).abs() < 1e-12);
        assert!((table1_radius(2, 6.0 * PI / 5.0).unwrap() - 1.0).abs() < 1e-12);
        // k = 3, 4, 5 rows.
        assert!((table1_radius(3, 0.0).unwrap() - 3.0_f64.sqrt()).abs() < 1e-9);
        assert!((table1_radius(3, 4.0 * PI / 5.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((table1_radius(4, 0.0).unwrap() - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((table1_radius(4, 2.0 * PI / 5.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((table1_radius(5, 0.0).unwrap() - 1.0).abs() < 1e-12);
        // Invalid k.
        assert!(table1_radius(0, 1.0).is_none());
        assert!(table1_radius(6, 1.0).is_none());
    }

    proptest! {
        #[test]
        fn prop_table1_monotone_in_phi(k in 1usize..=5, phi_lo in 0.0..TAU, delta in 0.0..2.0f64) {
            let lo = table1_radius(k, phi_lo).unwrap();
            let hi = table1_radius(k, phi_lo + delta).unwrap();
            // More spread can never require a larger radius.
            prop_assert!(hi <= lo + 1e-12);
        }

        #[test]
        fn prop_table1_monotone_in_k(k in 1usize..5, phi in 0.0..TAU) {
            let fewer = table1_radius(k, phi).unwrap();
            let more = table1_radius(k + 1, phi).unwrap();
            // More antennae can never require a larger radius.
            prop_assert!(more <= fewer + 1e-12);
        }

        #[test]
        fn prop_radius_bounds_at_least_lmax(k in 1usize..=5, phi in 0.0..TAU) {
            prop_assert!(table1_radius(k, phi).unwrap() >= 1.0 - 1e-12);
        }
    }
}
