//! Antennae, per-sensor antenna assignments and per-sensor budgets.

use antennae_geometry::{Angle, Point, Sector, EPS};
use serde::{Deserialize, Serialize};

/// A single directional antenna: an orientation (direction of the
/// counterclockwise boundary of its sector), an angular spread and a range.
///
/// Following the paper, a spread of `0` is a legal "beam" aimed exactly at a
/// target, and an omnidirectional antenna has spread `2π`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Antenna {
    /// Direction of the clockwise-most boundary ray of the antenna's sector;
    /// the sector extends counterclockwise from here.
    pub start: Angle,
    /// Angular spread (aperture) in radians.
    pub spread: f64,
    /// Range of the antenna.
    pub radius: f64,
}

impl Antenna {
    /// Creates an antenna from its sector start direction, spread and range.
    pub fn new(start: Angle, spread: f64, radius: f64) -> Self {
        Antenna {
            start,
            spread: spread.max(0.0),
            radius: radius.max(0.0),
        }
    }

    /// A zero-spread beam aimed from `apex` at `target`, with just enough
    /// range to reach it (plus optional slack for downstream comparisons).
    pub fn beam(apex: &Point, target: &Point, radius: f64) -> Self {
        Antenna::new(Angle::of_ray(apex, target), 0.0, radius)
    }

    /// An antenna covering the counterclockwise arc from the direction of
    /// `apex → from` to the direction of `apex → to`.
    pub fn arc(apex: &Point, from: &Point, to: &Point, radius: f64) -> Self {
        let start = Angle::of_ray(apex, from);
        let end = Angle::of_ray(apex, to);
        Antenna::new(start, start.ccw_to(&end).radians(), radius)
    }

    /// The sector this antenna covers when mounted at `apex`.
    pub fn sector(&self, apex: Point) -> Sector {
        Sector::new(apex, self.start, self.spread, self.radius)
    }

    /// Returns `true` when, mounted at `apex`, the antenna covers `target`.
    pub fn covers(&self, apex: &Point, target: &Point) -> bool {
        self.sector(*apex).contains_eps(target, EPS)
    }
}

/// The set of antennae mounted on one sensor.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SensorAssignment {
    /// The antennae of this sensor (at most 5 in every algorithm of the
    /// paper, but the type does not restrict the count).
    pub antennas: Vec<Antenna>,
}

impl SensorAssignment {
    /// An assignment with no antennae (an isolated sensor or a placeholder).
    pub fn empty() -> Self {
        SensorAssignment {
            antennas: Vec::new(),
        }
    }

    /// Creates an assignment from a list of antennae.
    pub fn new(antennas: Vec<Antenna>) -> Self {
        SensorAssignment { antennas }
    }

    /// Number of antennae.
    pub fn antenna_count(&self) -> usize {
        self.antennas.len()
    }

    /// Sum of the angular spreads of all antennae (the quantity the paper's
    /// `φ_k` bounds).
    pub fn total_spread(&self) -> f64 {
        self.antennas.iter().map(|a| a.spread).sum()
    }

    /// Largest antenna range at this sensor (0 when there are none).
    pub fn max_radius(&self) -> f64 {
        self.antennas.iter().map(|a| a.radius).fold(0.0, f64::max)
    }

    /// Returns `true` when, mounted at `apex`, some antenna covers `target`.
    pub fn covers(&self, apex: &Point, target: &Point) -> bool {
        self.antennas.iter().any(|a| a.covers(apex, target))
    }

    /// The sectors of every antenna when the sensor sits at `apex`.
    pub fn sectors(&self, apex: Point) -> Vec<Sector> {
        self.antennas.iter().map(|a| a.sector(apex)).collect()
    }
}

/// A per-sensor antenna budget: `k` antennae whose spreads sum to at most
/// `phi` radians.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AntennaBudget {
    /// Number of antennae per sensor (the paper considers `1 ≤ k ≤ 5`).
    pub k: usize,
    /// Bound on the sum of antenna spreads per sensor, in radians.
    pub phi: f64,
}

impl AntennaBudget {
    /// Creates a budget of `k` antennae with total spread at most `phi`.
    pub fn new(k: usize, phi: f64) -> Self {
        AntennaBudget {
            k,
            phi: phi.max(0.0),
        }
    }

    /// A budget of `k` zero-spread beams.
    pub fn beams_only(k: usize) -> Self {
        AntennaBudget::new(k, 0.0)
    }

    /// Returns `true` when `assignment` respects this budget (within `eps`
    /// radians of spread slack).
    pub fn admits(&self, assignment: &SensorAssignment, eps: f64) -> bool {
        assignment.antenna_count() <= self.k && assignment.total_spread() <= self.phi + eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antennae_geometry::PI;

    #[test]
    fn beam_covers_its_target_and_nothing_off_axis() {
        let apex = Point::new(0.0, 0.0);
        let target = Point::new(1.0, 1.0);
        let a = Antenna::beam(&apex, &target, 2.0);
        assert_eq!(a.spread, 0.0);
        assert!(a.covers(&apex, &target));
        assert!(!a.covers(&apex, &Point::new(1.0, -1.0)));
        assert!(!a.covers(&apex, &Point::new(3.0, 3.0))); // beyond range
    }

    #[test]
    fn arc_antenna_covers_both_endpoints_and_between() {
        let apex = Point::new(0.0, 0.0);
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        let ant = Antenna::arc(&apex, &a, &b, 1.5);
        assert!((ant.spread - PI / 2.0).abs() < 1e-9);
        assert!(ant.covers(&apex, &a));
        assert!(ant.covers(&apex, &b));
        assert!(ant.covers(&apex, &Point::new(0.5, 0.5)));
        assert!(!ant.covers(&apex, &Point::new(-0.5, 0.5)));
    }

    #[test]
    fn assignment_spread_and_radius_aggregation() {
        let apex = Point::new(0.0, 0.0);
        let assignment = SensorAssignment::new(vec![
            Antenna::new(Angle::ZERO, PI / 2.0, 1.0),
            Antenna::new(Angle::from_degrees(180.0), PI / 4.0, 2.0),
        ]);
        assert_eq!(assignment.antenna_count(), 2);
        assert!((assignment.total_spread() - 3.0 * PI / 4.0).abs() < 1e-12);
        assert!((assignment.max_radius() - 2.0).abs() < 1e-12);
        assert!(assignment.covers(&apex, &Point::new(0.5, 0.5)));
        assert!(assignment.covers(&apex, &Point::new(-1.5, -0.5)));
        assert!(!assignment.covers(&apex, &Point::new(0.5, -0.5)));
        assert_eq!(assignment.sectors(apex).len(), 2);
    }

    #[test]
    fn empty_assignment_covers_nothing() {
        let assignment = SensorAssignment::empty();
        assert_eq!(assignment.antenna_count(), 0);
        assert_eq!(assignment.total_spread(), 0.0);
        assert_eq!(assignment.max_radius(), 0.0);
        assert!(!assignment.covers(&Point::ORIGIN, &Point::new(1.0, 0.0)));
    }

    #[test]
    fn budget_admission() {
        let budget = AntennaBudget::new(2, PI);
        let ok = SensorAssignment::new(vec![
            Antenna::new(Angle::ZERO, PI / 2.0, 1.0),
            Antenna::new(Angle::HALF, PI / 2.0, 1.0),
        ]);
        assert!(budget.admits(&ok, 1e-9));
        let too_many = SensorAssignment::new(vec![
            Antenna::new(Angle::ZERO, 0.0, 1.0),
            Antenna::new(Angle::ZERO, 0.0, 1.0),
            Antenna::new(Angle::ZERO, 0.0, 1.0),
        ]);
        assert!(!budget.admits(&too_many, 1e-9));
        let too_wide = SensorAssignment::new(vec![Antenna::new(Angle::ZERO, PI * 1.5, 1.0)]);
        assert!(!budget.admits(&too_wide, 1e-9));
        let beams = AntennaBudget::beams_only(3);
        assert_eq!(beams.phi, 0.0);
        assert_eq!(beams.k, 3);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let a = Antenna::new(Angle::ZERO, -1.0, -2.0);
        assert_eq!(a.spread, 0.0);
        assert_eq!(a.radius, 0.0);
        let b = AntennaBudget::new(1, -3.0);
        assert_eq!(b.phi, 0.0);
    }
}
