//! Spatial sharding: per-tile kd/MST forests with exact boundary stitching.
//!
//! Large deployments are partitioned into a uniform grid of square tiles
//! (side auto-derived from `n` and the Lemma-1 interaction radius, or pinned
//! explicitly), each tile's kd-tree and Borůvka MST forest is built
//! independently — fanned out over `antennae-parallel` — and the per-tile
//! forests are stitched with a cross-tile Borůvka merge pass that is
//! **bit-exact to the global build**: identical MST edge set, identical
//! `f64::to_bits` on every weight, `lmax` and total weight, hence identical
//! orientation scheme, induced digraph and verification report downstream.
//! The exactness argument lives in [`antennae_graph::sharded`]; the root
//! `tests/shard_oracle.rs` suite pins it over stochastic and extremal
//! workloads across tile sizes and thread counts.
//!
//! Two front doors:
//!
//! * [`ShardedInstance`] — build a static [`Instance`] shard-by-shard, with
//!   a [`ShardReport`] describing the decomposition.
//! * [`crate::dynamic::DynamicInstance::new_sharded`] — a deployment under
//!   churn whose spatial index is a per-tile forest; every edit routes to
//!   the owning tile and re-stitches only the affected boundary region,
//!   edit-for-edit bit-identical to the unsharded engine (one edit at
//!   `n = 10⁵` is repaired inside a ~10³-point tile instead of touching the
//!   whole deployment).
//!
//! Both paths fall back to the global engine when sharding cannot pay for
//! itself — small inputs, degenerate (zero-area) deployments, or an
//! explicit [`ShardSpec::Off`] — so callers never need to special-case.
//!
//! # Examples
//!
//! ```
//! use antennae_core::shard::{ShardSpec, ShardedInstance};
//! use antennae_core::Instance;
//! use antennae_geometry::Point;
//!
//! let points: Vec<Point> = (0..900)
//!     .map(|i| Point::new((i % 30) as f64, (i / 30) as f64))
//!     .collect();
//! let sharded = ShardedInstance::build(&points, ShardSpec::Grid(3))?;
//! let global = Instance::new(points)?;
//! // Bit-exact: not approximately equal — the same f64s.
//! assert_eq!(sharded.instance().lmax().to_bits(), global.lmax().to_bits());
//! # Ok::<(), antennae_core::error::OrientError>(())
//! ```

use crate::error::OrientError;
use crate::instance::Instance;
use crate::parallel::default_threads;
use antennae_geometry::{Point, TileGrid};
use antennae_graph::sharded::{build_sharded, StitchStats};

/// Below this many points [`ShardSpec::Auto`] stays global: the whole input
/// is at most a handful of tiles' worth of work, and the static engine would
/// use dense Prim or a single kd Borůvka anyway.
pub const AUTO_SHARD_MIN_POINTS: usize = 4096;

/// The tile occupancy [`ShardSpec::Auto`] aims for.  Tiles of ~10³ points
/// keep every per-tile build comfortably in cache while leaving enough tiles
/// to saturate the worker pool, and they bound the region a dynamic edit has
/// to touch — the "one edit at `n = 10⁵` repaired in a ~10³-point tile"
/// headline.
pub const AUTO_TARGET_PER_TILE: usize = 1024;

/// How (and whether) to shard a deployment — the value behind the orientd
/// `--shards auto|N|off` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardSpec {
    /// Shard when it pays: inputs of at least [`AUTO_SHARD_MIN_POINTS`]
    /// points get a grid targeting [`AUTO_TARGET_PER_TILE`] points per tile;
    /// smaller or degenerate inputs stay global.  Safe as the default
    /// because the sharded build is bit-exact to the global one.
    #[default]
    Auto,
    /// Force a grid with this many tiles per axis (≥ 2), degenerate inputs
    /// permitting.
    Grid(usize),
    /// Never shard: the global engines, exactly as before sharding existed.
    Off,
}

impl ShardSpec {
    /// Parses the orientd `--shards` flag value: `auto`, `off`, or a tile
    /// count per axis (an integer ≥ 2).
    ///
    /// ```
    /// use antennae_core::shard::ShardSpec;
    ///
    /// assert_eq!(ShardSpec::parse("auto"), Ok(ShardSpec::Auto));
    /// assert_eq!(ShardSpec::parse("off"), Ok(ShardSpec::Off));
    /// assert_eq!(ShardSpec::parse("8"), Ok(ShardSpec::Grid(8)));
    /// assert!(ShardSpec::parse("1").is_err());
    /// assert!(ShardSpec::parse("lots").is_err());
    /// ```
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        match s {
            "auto" => Ok(ShardSpec::Auto),
            "off" => Ok(ShardSpec::Off),
            other => match other.parse::<usize>() {
                Ok(n) if n >= 2 => Ok(ShardSpec::Grid(n)),
                Ok(n) => Err(format!("--shards {n}: need at least 2 tiles per axis")),
                Err(_) => Err(format!(
                    "--shards {other}: expected auto, off or an integer ≥ 2"
                )),
            },
        }
    }

    /// Resolves the spec against a concrete deployment: the tile grid to
    /// shard with, or `None` to stay on the global engines (spec is `Off`,
    /// the input is too small for `Auto`, or the bounding box is degenerate).
    pub fn resolve(&self, points: &[Point]) -> Option<TileGrid> {
        let grid = match *self {
            ShardSpec::Off => None,
            ShardSpec::Grid(per_axis) => TileGrid::with_tiles_per_axis(points, per_axis),
            ShardSpec::Auto => {
                if points.len() >= AUTO_SHARD_MIN_POINTS {
                    TileGrid::auto(points, AUTO_TARGET_PER_TILE)
                } else {
                    None
                }
            }
        };
        // A single-tile grid (coincident or near-degenerate deployments)
        // cannot shard anything; stay global.
        grid.filter(|g| g.tiles() >= 2)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardSpec::Auto => write!(f, "auto"),
            ShardSpec::Grid(n) => write!(f, "{n}"),
            ShardSpec::Off => write!(f, "off"),
        }
    }
}

/// The decomposition a sharded build used, for telemetry (STATS, the sim
/// churn comparison, the oracle tests).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Tiles along the x axis.
    pub tiles_x: usize,
    /// Tiles along the y axis.
    pub tiles_y: usize,
    /// Tile side length.
    pub tile_size: f64,
    /// What the per-tile build + stitch did.
    pub stats: StitchStats,
}

/// A static [`Instance`] built shard-by-shard — bit-exact to
/// [`Instance::new`], with a [`ShardReport`] when sharding actually ran
/// (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct ShardedInstance {
    instance: Instance,
    report: Option<ShardReport>,
}

impl ShardedInstance {
    /// Builds with [`default_threads`] workers.
    pub fn build(points: &[Point], spec: ShardSpec) -> Result<Self, OrientError> {
        Self::build_with_threads(points, spec, default_threads())
    }

    /// Builds with an explicit worker count (the oracle tests sweep this to
    /// pin thread-count invariance).
    pub fn build_with_threads(
        points: &[Point],
        spec: ShardSpec,
        threads: usize,
    ) -> Result<Self, OrientError> {
        match spec.resolve(points) {
            None => Ok(ShardedInstance {
                instance: Instance::new(points.to_vec())?,
                report: None,
            }),
            Some(grid) => {
                let (mst, stats) = build_sharded(points, &grid, threads)
                    .map_err(|e| OrientError::MstConstruction(e.to_string()))?;
                let report = ShardReport {
                    tiles_x: grid.tiles_x(),
                    tiles_y: grid.tiles_y(),
                    tile_size: grid.tile_size(),
                    stats,
                };
                Ok(ShardedInstance {
                    instance: Instance::from_prebuilt(points.to_vec(), mst),
                    report: Some(report),
                })
            }
        }
    }

    /// The built instance (hand it to [`crate::Solver::on`] as usual).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Consumes the wrapper, keeping the instance.
    pub fn into_instance(self) -> Instance {
        self.instance
    }

    /// The decomposition, `None` when the build stayed global.
    pub fn report(&self) -> Option<&ShardReport> {
        self.report.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n_side: usize) -> Vec<Point> {
        (0..n_side * n_side)
            .map(|i| Point::new((i % n_side) as f64, (i / n_side) as f64))
            .collect()
    }

    #[test]
    fn spec_parse_round_trips_through_display() {
        for s in ["auto", "off", "4", "16"] {
            assert_eq!(ShardSpec::parse(s).unwrap().to_string(), s);
        }
        assert!(ShardSpec::parse("0").is_err());
        assert!(ShardSpec::parse("-3").is_err());
        assert!(ShardSpec::parse("").is_err());
    }

    #[test]
    fn auto_stays_global_below_threshold() {
        let pts = lattice(20); // 400 points < AUTO_SHARD_MIN_POINTS
        assert!(ShardSpec::Auto.resolve(&pts).is_none());
        let built = ShardedInstance::build(&pts, ShardSpec::Auto).unwrap();
        assert!(built.report().is_none());
    }

    #[test]
    fn auto_shards_large_inputs_near_the_target_occupancy() {
        let pts = lattice(80); // 6400 points ≥ AUTO_SHARD_MIN_POINTS
        let grid = ShardSpec::Auto.resolve(&pts).expect("large input shards");
        let tiles = grid.tiles();
        assert!(tiles >= 2, "auto produced a single tile");
        let per_tile = pts.len() / tiles;
        assert!(
            (AUTO_TARGET_PER_TILE / 4..=AUTO_TARGET_PER_TILE * 4).contains(&per_tile),
            "auto occupancy {per_tile} strays from the target"
        );
    }

    #[test]
    fn forced_grid_matches_global_bit_for_bit() {
        let pts = lattice(32); // 1024 ≥ kd crossover, so the stitch runs
        let sharded = ShardedInstance::build_with_threads(&pts, ShardSpec::Grid(3), 2).unwrap();
        let global = Instance::new(pts).unwrap();
        let report = sharded.report().expect("grid spec shards");
        assert!(report.stats.stitched);
        assert_eq!(report.tiles_x * report.tiles_y, report.stats.tiles);
        assert_eq!(sharded.instance().lmax().to_bits(), global.lmax().to_bits());
        assert_eq!(
            sharded.instance().mst().total_weight().to_bits(),
            global.mst().total_weight().to_bits()
        );
    }

    #[test]
    fn off_and_degenerate_inputs_stay_global() {
        assert!(ShardSpec::Off.resolve(&lattice(80)).is_none());
        // Coincident points: zero-area bounding box, Grid cannot resolve.
        let coincident = vec![Point::new(1.0, 1.0); 8];
        let built = ShardedInstance::build(&coincident, ShardSpec::Grid(4)).unwrap();
        assert!(built.report().is_none());
        assert_eq!(built.into_instance().len(), 8);
    }
}
