//! The orientation algorithms of the paper.
//!
//! Every algorithm takes an [`Instance`](crate::instance::Instance) and
//! produces an [`OrientationScheme`](crate::scheme::OrientationScheme) whose
//! induced digraph is strongly connected.  The algorithms differ in the
//! per-sensor budget they need (number of antennae `k`, spread sum `φ_k`) and
//! in the antenna range they guarantee, exactly as summarized in Table 1 of
//! the paper:
//!
//! * [`lemma1`] — the per-node primitive: orient `k` antennae at a degree-`d`
//!   MST vertex so that all `d` neighbours are covered using spread at most
//!   `2π(d−k)/d`.
//! * [`theorem2`] — apply Lemma 1 at every vertex; whenever
//!   `φ_k ≥ 2π(5−k)/5` this yields radius `lmax`.
//! * [`theorem3`] — the paper's main contribution: two antennae whose spreads
//!   sum to `φ₂ ∈ [2π/3, π]`, radius `2·sin(π/2 − φ₂/4)` (and `2·sin(2π/9)`
//!   at `φ₂ = π`), built by a bottom-up construction maintaining the paper's
//!   Property 1.
//! * [`chains`] — the zero-spread constructions: `k` beams per sensor,
//!   radius 2, √3, √2, 1 for `k = 2, 3, 4, 5` (Theorems 5 and 6, the `[14]`
//!   row and the folklore `k = 5` result).
//! * [`hamiltonian`] / [`one_antenna`] — the single-antenna baselines of
//!   rows 1–3 of Table 1.
//! * [`dispatch`] — picks the best applicable algorithm for a `(k, φ_k)`
//!   budget and reports the guaranteed radius.

pub mod chains;
pub mod dispatch;
pub mod hamiltonian;
pub mod lemma1;
pub mod one_antenna;
pub mod theorem2;
pub mod theorem3;

use serde::{Deserialize, Serialize};

/// Identifies which algorithm produced a scheme (reported by the dispatcher
/// and by the experiment harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Theorem 2: Lemma 1 applied at every vertex (radius `lmax`).
    Theorem2,
    /// Theorem 3: the two-antenna construction.
    Theorem3,
    /// The zero-spread chain construction with the given number of beams
    /// (Theorem 5 for `k = 3`, Theorem 6 for `k = 4`, folklore for `k = 5`,
    /// the `[14]` row for `k = 2`).
    Chains {
        /// Number of zero-spread beams per sensor.
        k: usize,
    },
    /// The Hamiltonian-cycle baseline (single beam per sensor).
    Hamiltonian,
    /// The `[4]` baseline row: a single wide antenna per sensor covering all
    /// MST neighbours (`φ₁ ≥ 8π/5`, radius `lmax`).
    OneAntennaWide,
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgorithmKind::Theorem2 => write!(f, "theorem2"),
            AlgorithmKind::Theorem3 => write!(f, "theorem3"),
            AlgorithmKind::Chains { k } => write!(f, "chains(k={k})"),
            AlgorithmKind::Hamiltonian => write!(f, "hamiltonian"),
            AlgorithmKind::OneAntennaWide => write!(f, "one-antenna-wide"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_kind_display() {
        assert_eq!(AlgorithmKind::Theorem2.to_string(), "theorem2");
        assert_eq!(AlgorithmKind::Theorem3.to_string(), "theorem3");
        assert_eq!(AlgorithmKind::Chains { k: 3 }.to_string(), "chains(k=3)");
        assert_eq!(AlgorithmKind::Hamiltonian.to_string(), "hamiltonian");
        assert_eq!(
            AlgorithmKind::OneAntennaWide.to_string(),
            "one-antenna-wide"
        );
    }
}
