//! Zero-spread "chain" constructions: Theorems 5 and 6, the folklore `k = 5`
//! scheme, and the `k = 2` / range-2 row of Table 1.
//!
//! All of these orient only zero-spread beams.  Working top-down over the
//! rooted MST, every vertex `u` splits its children (sorted counterclockwise
//! around `u`) into at most `k − 1` *chains* by removing the largest angular
//! gaps.  `u` aims one beam at the head of each chain, every chain member
//! aims its spare beam at its successor, and the chain tail aims its spare
//! beam back at `u`.  Each vertex therefore uses at most
//! `(k − 1) + 1 = k` beams (the `+1` is the beam towards its own parent/
//! predecessor), and the induced digraph is strongly connected.
//!
//! The radius is governed by the sibling (chain) edges: two consecutive
//! children whose angular gap is `γ` are at distance at most `2·sin(γ/2)`
//! (both tree edges have length ≤ `lmax`).  Removing the `k − 1` largest of
//! the (at most 4) child gaps guarantees, by the pigeonhole argument in the
//! proofs of Theorems 5 and 6:
//!
//! | `k` | chains kept | worst kept gap | radius |
//! |----|---|---|---|
//! | 2  | 1 | ≤ 2π  | 2 |
//! | 3  | 2 | ≤ 2π/3 | √3 |
//! | 4  | 3 | ≤ π/2 | √2 |
//! | 5  | 4 | (none needed) | 1 |

use crate::antenna::{Antenna, SensorAssignment};
use crate::error::OrientError;
use crate::instance::Instance;
use crate::scheme::OrientationScheme;
use antennae_geometry::angular::{
    circular_gaps, largest_gaps_indices, sort_ccw, split_into_chains,
};
use antennae_geometry::Point;
use serde::{Deserialize, Serialize};

/// Statistics gathered while building a chain orientation; used by the
/// Figure 5 / Figure 6 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChainStats {
    /// Largest number of chains (= beams towards children) used at any
    /// vertex; Theorems 5 and 6 bound this by `k − 1`.
    pub max_chains_per_vertex: usize,
    /// Largest angular gap (radians) between two chained siblings.
    pub max_chained_gap: f64,
    /// Largest Euclidean distance of a sibling (chain) edge, in absolute
    /// units.
    pub max_sibling_distance: f64,
    /// Number of sibling (chain) edges created in total.
    pub sibling_edges: usize,
}

/// Result of the chain construction: the scheme plus its statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainOutcome {
    /// The orientation scheme (only zero-spread beams).
    pub scheme: OrientationScheme,
    /// Construction statistics.
    pub stats: ChainStats,
}

/// The worst-case radius (in units of `lmax`) the chain construction
/// guarantees for `k` beams per sensor, per Theorems 5/6 and Table 1.
pub fn guaranteed_radius(k: usize) -> Option<f64> {
    match k {
        2 => Some(2.0),
        3 => Some(3.0_f64.sqrt()),
        4 => Some(2.0_f64.sqrt()),
        5 => Some(1.0),
        _ => None,
    }
}

/// Builds the zero-spread chain orientation with `k ∈ 2..=5` beams per
/// sensor.
pub fn orient_chains(instance: &Instance, k: usize) -> Result<OrientationScheme, OrientError> {
    orient_chains_with_stats(instance, k).map(|o| o.scheme)
}

/// Builds the zero-spread chain orientation and reports statistics.
pub fn orient_chains_with_stats(
    instance: &Instance,
    k: usize,
) -> Result<ChainOutcome, OrientError> {
    if !(2..=5).contains(&k) {
        return Err(OrientError::UnsupportedAntennaCount { k });
    }
    let tree = instance.rooted_tree();
    let points = instance.points();
    let n = points.len();
    let mut beams: Vec<Vec<Antenna>> = vec![Vec::new(); n];
    // target[v] = vertex that v's spare beam points at (None only for the
    // root, which has no predecessor).
    let mut target: Vec<Option<usize>> = vec![None; n];
    let mut stats = ChainStats::default();

    for u in tree.bfs_order() {
        let children = tree.children(u); // counterclockwise order
        let m = children.len();
        if m == 0 {
            continue;
        }
        let apex = points[u];
        let child_points: Vec<Point> = children.iter().map(|&c| points[c]).collect();
        let sorted = sort_ccw(&apex, &child_points);
        let gaps = circular_gaps(&sorted);
        // Split into at most k − 1 chains by removing the largest gaps.
        let chains_needed = m.min(k - 1);
        let removed = largest_gaps_indices(&gaps, chains_needed);
        let chains = split_into_chains(m, &removed);
        debug_assert!(chains.len() < k);
        stats.max_chains_per_vertex = stats.max_chains_per_vertex.max(chains.len());

        for chain in &chains {
            // Positions in `chain` index into `sorted`; map back to vertices.
            let vertices: Vec<usize> = chain
                .iter()
                .map(|&pos| children[sorted[pos].index])
                .collect();
            // u beams at the chain head.
            let head = vertices[0];
            beams[u].push(Antenna::beam(
                &apex,
                &points[head],
                apex.distance(&points[head]),
            ));
            // Chain members beam at their successor; the tail beams at u.
            for (i, &v) in vertices.iter().enumerate() {
                if i + 1 < vertices.len() {
                    let next = vertices[i + 1];
                    target[v] = Some(next);
                    stats.sibling_edges += 1;
                    stats.max_sibling_distance = stats
                        .max_sibling_distance
                        .max(points[v].distance(&points[next]));
                    let gap_idx = chain[i];
                    stats.max_chained_gap = stats.max_chained_gap.max(gaps[gap_idx]);
                } else {
                    target[v] = Some(u);
                }
            }
        }
    }

    // Emit the spare beam of every non-root vertex.
    for v in 0..n {
        if v == tree.root() {
            continue;
        }
        let t = target[v].ok_or_else(|| {
            OrientError::Internal(format!("vertex {v} was never assigned a beam target"))
        })?;
        beams[v].push(Antenna::beam(
            &points[v],
            &points[t],
            points[v].distance(&points[t]),
        ));
    }

    let assignments = beams.into_iter().map(SensorAssignment::new).collect();
    Ok(ChainOutcome {
        scheme: OrientationScheme::new(assignments),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;
    use antennae_geometry::{PI, TAU};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect();
        Instance::new(points).unwrap()
    }

    #[test]
    fn rejects_unsupported_k() {
        let instance = random_instance(10, 7);
        assert!(matches!(
            orient_chains(&instance, 1),
            Err(OrientError::UnsupportedAntennaCount { k: 1 })
        ));
        assert!(matches!(
            orient_chains(&instance, 6),
            Err(OrientError::UnsupportedAntennaCount { k: 6 })
        ));
    }

    #[test]
    fn all_k_values_give_strong_connectivity_within_their_radius_bound() {
        for k in 2..=5 {
            for seed in 0..4 {
                let instance = random_instance(80, seed * 13 + k as u64);
                let outcome = orient_chains_with_stats(&instance, k).unwrap();
                let report = verify(&instance, &outcome.scheme);
                assert!(report.is_strongly_connected, "k={k} seed={seed}");
                assert_eq!(report.max_spread_sum, 0.0);
                assert!(report.max_antenna_count <= k);
                let bound = guaranteed_radius(k).unwrap();
                assert!(
                    report.max_radius_over_lmax <= bound + 1e-9,
                    "k={k} seed={seed}: radius {} exceeds bound {bound}",
                    report.max_radius_over_lmax
                );
                assert!(outcome.stats.max_chains_per_vertex < k);
            }
        }
    }

    #[test]
    fn theorem5_gap_bound_holds() {
        // k = 3: every chained sibling gap must be at most 2π/3.
        for seed in 0..6 {
            let instance = random_instance(120, 100 + seed);
            let outcome = orient_chains_with_stats(&instance, 3).unwrap();
            assert!(
                outcome.stats.max_chained_gap <= 2.0 * PI / 3.0 + 1e-9,
                "seed {seed}: gap {}",
                outcome.stats.max_chained_gap
            );
        }
    }

    #[test]
    fn theorem6_gap_bound_holds() {
        // k = 4: every chained sibling gap must be at most π/2.
        for seed in 0..6 {
            let instance = random_instance(120, 200 + seed);
            let outcome = orient_chains_with_stats(&instance, 4).unwrap();
            assert!(
                outcome.stats.max_chained_gap <= PI / 2.0 + 1e-9,
                "seed {seed}: gap {}",
                outcome.stats.max_chained_gap
            );
        }
    }

    #[test]
    fn five_beams_need_no_sibling_edges_and_radius_lmax() {
        let instance = random_instance(100, 31);
        let outcome = orient_chains_with_stats(&instance, 5).unwrap();
        assert_eq!(outcome.stats.sibling_edges, 0);
        let report = verify(&instance, &outcome.scheme);
        assert!(report.is_strongly_connected);
        assert!(report.max_radius_over_lmax <= 1.0 + 1e-9);
    }

    #[test]
    fn plus_configuration_exercises_chaining() {
        // A centre with four orthogonal arms: the centre has 4 children when
        // rooted at an arm tip, so k = 3 must chain at least two of them.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(-1.0, 0.0),
            Point::new(0.0, -1.0),
        ];
        let instance = Instance::new(pts).unwrap();
        for k in 2..=5 {
            let outcome = orient_chains_with_stats(&instance, k).unwrap();
            let report = verify(&instance, &outcome.scheme);
            assert!(report.is_strongly_connected, "k={k}");
            assert!(report.max_radius_over_lmax <= guaranteed_radius(k).unwrap() + 1e-9);
        }
        // With only 2 beams the centre keeps a single chain of 3 children.
        let two = orient_chains_with_stats(&instance, 2).unwrap();
        assert!(two.stats.sibling_edges >= 2);
    }

    #[test]
    fn single_and_two_sensor_instances() {
        let single = Instance::new(vec![Point::new(0.0, 0.0)]).unwrap();
        let scheme = orient_chains(&single, 3).unwrap();
        assert!(verify(&single, &scheme).is_strongly_connected);

        let pair = Instance::new(vec![Point::new(0.0, 0.0), Point::new(0.0, 2.0)]).unwrap();
        let scheme = orient_chains(&pair, 2).unwrap();
        let report = verify(&pair, &scheme);
        assert!(report.is_strongly_connected);
        assert!((report.max_radius_over_lmax - 1.0).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_chain_construction_invariants(seed in 0u64..400, n in 2usize..60, k in 2usize..=5) {
            let instance = random_instance(n, seed);
            let outcome = orient_chains_with_stats(&instance, k).unwrap();
            let report = verify(&instance, &outcome.scheme);
            prop_assert!(report.is_strongly_connected);
            prop_assert!(report.max_antenna_count <= k);
            prop_assert_eq!(report.max_spread_sum, 0.0);
            prop_assert!(report.max_radius_over_lmax <= guaranteed_radius(k).unwrap() + 1e-6);
            prop_assert!(outcome.stats.max_chained_gap <= TAU);
        }
    }
}
