//! Budget-driven algorithm selection.
//!
//! Given a per-sensor budget `(k, φ_k)`, [`orient`] selects the algorithm
//! with the best radius guarantee among those whose preconditions are met —
//! i.e. it walks down the relevant rows of Table 1 — runs it, and
//! [`orient_with_report`] additionally reports which algorithm ran and the
//! radius it guarantees (in units of `lmax`).

use crate::algorithms::{chains, hamiltonian, one_antenna, theorem2, theorem3, AlgorithmKind};
use crate::antenna::AntennaBudget;
use crate::bounds::{self, theorem2_spread_threshold};
use crate::error::OrientError;
use crate::instance::Instance;
use crate::scheme::OrientationScheme;
use antennae_geometry::PI;
use serde::{Deserialize, Serialize};

/// The outcome of a dispatched orientation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrientationOutcome {
    /// The orientation scheme.
    pub scheme: OrientationScheme,
    /// The algorithm that produced it.
    pub algorithm: AlgorithmKind,
    /// The radius the algorithm guarantees, in units of `lmax`.
    ///
    /// `None` for the `k = 1` Hamiltonian heuristic, whose factor-2 guarantee
    /// is inherited from prior work rather than re-proved here (see
    /// DESIGN.md).
    pub guaranteed_radius_over_lmax: Option<f64>,
}

/// Orients the antennae of `instance` under the given per-sensor budget,
/// returning only the scheme.
pub fn orient(instance: &Instance, budget: AntennaBudget) -> Result<OrientationScheme, OrientError> {
    orient_with_report(instance, budget).map(|o| o.scheme)
}

/// Orients the antennae of `instance` under the given per-sensor budget and
/// reports which algorithm was used and what it guarantees.
pub fn orient_with_report(
    instance: &Instance,
    budget: AntennaBudget,
) -> Result<OrientationOutcome, OrientError> {
    let AntennaBudget { k, phi } = budget;
    if !(1..=5).contains(&k) {
        return Err(OrientError::UnsupportedAntennaCount { k });
    }

    // Theorem 2 applies whenever the spread budget reaches 2π(5−k)/5 and
    // always achieves radius lmax — nothing can beat that.
    if phi + 1e-9 >= theorem2_spread_threshold(k) {
        return Ok(OrientationOutcome {
            scheme: theorem2::orient_theorem2(instance, k)?,
            algorithm: AlgorithmKind::Theorem2,
            guaranteed_radius_over_lmax: Some(1.0),
        });
    }

    match k {
        1 => {
            // Below the 8π/5 threshold the only general construction we
            // implement is the Hamiltonian-cycle heuristic.
            let outcome = one_antenna::orient_one_antenna(instance, phi)?;
            Ok(OrientationOutcome {
                scheme: outcome.scheme,
                algorithm: AlgorithmKind::Hamiltonian,
                guaranteed_radius_over_lmax: None,
            })
        }
        2 => {
            if phi + 1e-9 >= 2.0 * PI / 3.0 {
                let outcome = theorem3::orient_two_antennae(instance, phi)?;
                Ok(OrientationOutcome {
                    scheme: outcome.scheme,
                    algorithm: AlgorithmKind::Theorem3,
                    guaranteed_radius_over_lmax: theorem3::guaranteed_radius(phi),
                })
            } else {
                Ok(OrientationOutcome {
                    scheme: chains::orient_chains(instance, 2)?,
                    algorithm: AlgorithmKind::Chains { k: 2 },
                    guaranteed_radius_over_lmax: chains::guaranteed_radius(2),
                })
            }
        }
        3..=5 => Ok(OrientationOutcome {
            scheme: chains::orient_chains(instance, k)?,
            algorithm: AlgorithmKind::Chains { k },
            guaranteed_radius_over_lmax: chains::guaranteed_radius(k),
        }),
        _ => unreachable!("k validated above"),
    }
}

/// Convenience wrapper used by the experiment harness: the best radius bound
/// the implemented algorithms guarantee for a `(k, φ)` budget — this is the
/// Table 1 value except for the `k = 1` intermediate regime where the `[4]`
/// construction is not re-implemented (see DESIGN.md).
pub fn implemented_radius_guarantee(k: usize, phi: f64) -> Option<f64> {
    if !(1..=5).contains(&k) {
        return None;
    }
    if phi + 1e-9 >= theorem2_spread_threshold(k) {
        return Some(1.0);
    }
    match k {
        1 => None,
        2 => {
            if phi + 1e-9 >= 2.0 * PI / 3.0 {
                theorem3::guaranteed_radius(phi)
            } else {
                chains::guaranteed_radius(2)
            }
        }
        _ => chains::guaranteed_radius(k),
    }
}

/// The paper's Table 1 bound for the same budget (used for the "paper" column
/// of reports).
pub fn paper_radius_bound(k: usize, phi: f64) -> Option<f64> {
    bounds::table1_radius(k, phi)
}

/// Re-export used by the experiment harness for the `k = 1` heuristic row.
pub use hamiltonian::orient_hamiltonian;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify, verify_with_budget};
    use antennae_geometry::{Point, TAU};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect();
        Instance::new(points).unwrap()
    }

    #[test]
    fn rejects_invalid_k() {
        let instance = random_instance(10, 1);
        assert!(matches!(
            orient(&instance, AntennaBudget::new(0, 1.0)),
            Err(OrientError::UnsupportedAntennaCount { k: 0 })
        ));
        assert!(matches!(
            orient(&instance, AntennaBudget::new(7, 1.0)),
            Err(OrientError::UnsupportedAntennaCount { k: 7 })
        ));
    }

    #[test]
    fn selects_theorem2_when_spread_is_large() {
        let instance = random_instance(40, 2);
        for k in 1..=5 {
            let budget = AntennaBudget::new(k, theorem2_spread_threshold(k));
            let outcome = orient_with_report(&instance, budget).unwrap();
            assert_eq!(outcome.algorithm, AlgorithmKind::Theorem2, "k={k}");
            assert_eq!(outcome.guaranteed_radius_over_lmax, Some(1.0));
            let report = verify_with_budget(&instance, &outcome.scheme, Some(budget));
            assert!(report.is_valid(), "k={k}: {:?}", report.violations);
        }
    }

    #[test]
    fn selects_theorem3_for_two_antennas_with_medium_spread() {
        let instance = random_instance(40, 3);
        let budget = AntennaBudget::new(2, PI);
        let outcome = orient_with_report(&instance, budget).unwrap();
        assert_eq!(outcome.algorithm, AlgorithmKind::Theorem3);
        let bound = outcome.guaranteed_radius_over_lmax.unwrap();
        let report = verify_with_budget(&instance, &outcome.scheme, Some(budget));
        assert!(report.is_valid(), "{:?}", report.violations);
        assert!(report.max_radius_over_lmax <= bound + 1e-9);
    }

    #[test]
    fn selects_chains_for_zero_spread() {
        let instance = random_instance(40, 4);
        for k in 2..=5 {
            let budget = AntennaBudget::beams_only(k);
            let outcome = orient_with_report(&instance, budget).unwrap();
            if k == 5 {
                // φ = 0 already meets the Theorem 2 threshold for k = 5.
                assert_eq!(outcome.algorithm, AlgorithmKind::Theorem2);
            } else {
                assert_eq!(outcome.algorithm, AlgorithmKind::Chains { k });
            }
            let report = verify_with_budget(&instance, &outcome.scheme, Some(budget));
            assert!(report.is_valid(), "k={k}: {:?}", report.violations);
            assert!(
                report.max_radius_over_lmax
                    <= outcome.guaranteed_radius_over_lmax.unwrap() + 1e-9
            );
        }
    }

    #[test]
    fn selects_hamiltonian_for_single_narrow_antenna() {
        let instance = random_instance(40, 5);
        let budget = AntennaBudget::new(1, 1.0);
        let outcome = orient_with_report(&instance, budget).unwrap();
        assert_eq!(outcome.algorithm, AlgorithmKind::Hamiltonian);
        assert!(outcome.guaranteed_radius_over_lmax.is_none());
        assert!(verify(&instance, &outcome.scheme).is_strongly_connected);
    }

    #[test]
    fn every_budget_produces_a_strongly_connected_scheme() {
        let instance = random_instance(50, 6);
        for k in 1..=5 {
            for phi_step in 0..=8 {
                let phi = TAU * phi_step as f64 / 8.0;
                let budget = AntennaBudget::new(k, phi);
                let outcome = orient_with_report(&instance, budget).unwrap();
                let report = verify_with_budget(&instance, &outcome.scheme, Some(budget));
                assert!(
                    report.is_valid(),
                    "k={k} phi={phi}: {:?}",
                    report.violations
                );
                if let Some(bound) = outcome.guaranteed_radius_over_lmax {
                    assert!(
                        report.max_radius_over_lmax <= bound + 1e-9,
                        "k={k} phi={phi}: {} > {bound}",
                        report.max_radius_over_lmax
                    );
                }
            }
        }
    }

    #[test]
    fn implemented_guarantee_never_beats_paper_bound_by_construction() {
        for k in 1..=5 {
            for phi_step in 0..=10 {
                let phi = TAU * phi_step as f64 / 10.0;
                let paper = paper_radius_bound(k, phi).unwrap();
                if let Some(ours) = implemented_radius_guarantee(k, phi) {
                    assert!(
                        ours + 1e-9 >= paper,
                        "k={k} phi={phi}: implemented {ours} < paper {paper}"
                    );
                }
            }
        }
    }
}
