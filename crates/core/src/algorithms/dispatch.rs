//! Legacy budget-driven dispatch — thin deprecated shims over the
//! [`solver`](crate::solver) API.
//!
//! Historically this module owned the `(k, φ_k)` → algorithm decision table.
//! That logic now lives in exactly one place — the
//! [`Registry`](crate::solver::Registry) of [`Orienter`](crate::solver::Orienter)
//! trait objects consulted by [`Solver`] — and the
//! free functions here simply run
//! [`SelectionPolicy::BestGuarantee`](crate::solver::SelectionPolicy::BestGuarantee)
//! on the shared paper registry.  New code should use the builder:
//!
//! ```
//! use antennae_core::solver::Solver;
//! # use antennae_core::instance::Instance;
//! # use antennae_geometry::Point;
//! # let instance = Instance::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap();
//! let outcome = Solver::on(&instance).budget(2, std::f64::consts::PI).run()?;
//! # Ok::<(), antennae_core::error::OrientError>(())
//! ```

use crate::antenna::AntennaBudget;
use crate::bounds;
use crate::error::OrientError;
use crate::instance::Instance;
use crate::scheme::OrientationScheme;
use crate::solver::Solver;

pub use crate::solver::{implemented_radius_guarantee, OrientationOutcome};

/// Orients the antennae of `instance` under the given per-sensor budget,
/// returning only the scheme.
#[deprecated(
    since = "0.2.0",
    note = "use `Solver::on(&instance).with_budget(budget).run()` (SelectionPolicy::BestGuarantee)"
)]
pub fn orient(
    instance: &Instance,
    budget: AntennaBudget,
) -> Result<OrientationScheme, OrientError> {
    Solver::on(instance)
        .with_budget(budget)
        .run()
        .map(|o| o.scheme)
}

/// Orients the antennae of `instance` under the given per-sensor budget and
/// reports which algorithm was used and what it guarantees.
#[deprecated(
    since = "0.2.0",
    note = "use `Solver::on(&instance).with_budget(budget).run()` (SelectionPolicy::BestGuarantee)"
)]
pub fn orient_with_report(
    instance: &Instance,
    budget: AntennaBudget,
) -> Result<OrientationOutcome, OrientError> {
    Solver::on(instance).with_budget(budget).run()
}

/// The paper's Table 1 bound for the same budget (used for the "paper" column
/// of reports).
#[deprecated(since = "0.2.0", note = "use `bounds::table1_radius` directly")]
pub fn paper_radius_bound(k: usize, phi: f64) -> Option<f64> {
    bounds::table1_radius(k, phi)
}

/// Re-export used by the experiment harness for the `k = 1` heuristic row.
pub use crate::algorithms::hamiltonian::orient_hamiltonian;

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::solver::SelectionPolicy;
    use antennae_geometry::{Point, TAU};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect();
        Instance::new(points).unwrap()
    }

    #[test]
    fn shims_keep_rejecting_invalid_k() {
        let instance = random_instance(10, 1);
        assert!(matches!(
            orient(&instance, AntennaBudget::new(0, 1.0)),
            Err(OrientError::UnsupportedAntennaCount { k: 0 })
        ));
        assert!(matches!(
            orient(&instance, AntennaBudget::new(7, 1.0)),
            Err(OrientError::UnsupportedAntennaCount { k: 7 })
        ));
    }

    #[test]
    fn shims_agree_with_the_best_guarantee_policy() {
        let instance = random_instance(45, 2);
        for k in 1..=5 {
            for phi_step in 0..=8 {
                let budget = AntennaBudget::new(k, TAU * phi_step as f64 / 8.0);
                let shim = orient_with_report(&instance, budget).unwrap();
                let solver = Solver::on(&instance)
                    .with_budget(budget)
                    .policy(SelectionPolicy::BestGuarantee)
                    .run()
                    .unwrap();
                assert_eq!(shim.algorithm, solver.algorithm, "budget {budget:?}");
                assert_eq!(
                    shim.guaranteed_radius_over_lmax, solver.guaranteed_radius_over_lmax,
                    "budget {budget:?}"
                );
                assert_eq!(
                    shim.scheme.max_radius(),
                    solver.scheme.max_radius(),
                    "budget {budget:?}"
                );
                let scheme_only = orient(&instance, budget).unwrap();
                assert_eq!(scheme_only.max_radius(), solver.scheme.max_radius());
            }
        }
    }

    #[test]
    fn implemented_guarantee_never_beats_paper_bound_by_construction() {
        for k in 1..=5 {
            for phi_step in 0..=10 {
                let phi = TAU * phi_step as f64 / 10.0;
                let paper = paper_radius_bound(k, phi).unwrap();
                if let Some(ours) = implemented_radius_guarantee(k, phi) {
                    assert!(
                        ours + 1e-9 >= paper,
                        "k={k} phi={phi}: implemented {ours} < paper {paper}"
                    );
                }
            }
        }
    }
}
