//! The Hamiltonian-cycle baseline (`[14]`, Parker–Rardin) for zero-spread
//! single-beam sensors.
//!
//! Row 1 of Table 1 cites Parker and Rardin's bottleneck-TSP heuristic: for
//! any point set there is an orientation of one zero-spread antenna per
//! sensor with range at most 2 (in units of `lmax`) — every sensor simply
//! beams at its successor along a suitable Hamiltonian cycle, which trivially
//! yields a strongly connected (directed-cycle) communication graph.
//!
//! **Substitution note (documented in DESIGN.md):** the exact Parker–Rardin
//! construction walks the square of a bottleneck-optimal biconnected
//! subgraph; here the cycle is obtained by short-cutting the Euler tour of
//! the doubled MST (the classic metric-TSP construction) and then improved by
//! a **bottleneck 2-opt** pass that repeatedly reconnects the cycle to shrink
//! its longest hop.  The orientation produced is always strongly connected;
//! the *bottleneck* of the cycle is measured empirically by the harness
//! rather than guaranteed to be ≤ 2·lmax (on the workloads of EXP-T1 the
//! improved cycle lands close to the paper's factor-2 row, as recorded in
//! EXPERIMENTS.md; the unimproved Euler-tour cycle is kept as an ablation).

use crate::antenna::{Antenna, SensorAssignment};
use crate::error::OrientError;
use crate::instance::Instance;
use crate::scheme::OrientationScheme;
use serde::{Deserialize, Serialize};

/// The Hamiltonian-cycle orientation together with the cycle it used.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HamiltonianOutcome {
    /// The orientation scheme (one zero-spread beam per sensor).
    pub scheme: OrientationScheme,
    /// Visiting order of the cycle (each vertex appears exactly once).
    pub cycle: Vec<usize>,
    /// The longest hop of the cycle, in absolute units.
    pub bottleneck: f64,
    /// The longest hop divided by `lmax` (`0` for single-sensor instances).
    pub bottleneck_over_lmax: f64,
}

/// Computes a Hamiltonian cycle by short-cutting the Euler tour of the
/// doubled MST (i.e. the preorder of the rooted tree).
pub fn hamiltonian_cycle(instance: &Instance) -> Vec<usize> {
    let tree = instance.rooted_tree();
    // The BFS/preorder shortcut of the doubled tree: a DFS preorder visits
    // every vertex once; returning to the root closes the cycle.
    let mut order = Vec::with_capacity(instance.len());
    let mut stack = vec![tree.root()];
    let mut visited = vec![false; instance.len()];
    while let Some(v) = stack.pop() {
        if visited[v] {
            continue;
        }
        visited[v] = true;
        order.push(v);
        // Push children in reverse so the counterclockwise-first child is
        // visited first.
        for &c in tree.children(v).iter().rev() {
            stack.push(c);
        }
    }
    order
}

/// Improves a Hamiltonian cycle in place with bottleneck-oriented 2-opt
/// moves: repeatedly take the longest hop `(a, b)` and look for another hop
/// `(c, d)` such that reversing the segment between them replaces both hops
/// by `(a, c)` and `(b, d)` with a strictly smaller maximum.  Stops after
/// `max_rounds` rounds or when no improving move exists.
///
/// Returns the bottleneck (longest hop) of the improved cycle.
pub fn improve_bottleneck_two_opt(
    points: &[antennae_geometry::Point],
    cycle: &mut [usize],
    max_rounds: usize,
) -> f64 {
    let n = cycle.len();
    let hop = |cycle: &[usize], i: usize| -> f64 {
        points[cycle[i]].distance(&points[cycle[(i + 1) % n]])
    };
    if n < 4 {
        return (0..n).map(|i| hop(cycle, i)).fold(0.0, f64::max);
    }
    for _ in 0..max_rounds {
        // Locate the bottleneck hop.
        let (worst_idx, worst_len) = (0..n)
            .map(|i| (i, hop(cycle, i)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty cycle");
        // Try every other hop as the 2-opt partner; accept the move that
        // minimizes the larger of the two new hops.
        let mut best: Option<(usize, f64)> = None;
        for j in 0..n {
            if j == worst_idx || (j + 1) % n == worst_idx || (worst_idx + 1) % n == j {
                continue;
            }
            let (i, j_) = if worst_idx < j {
                (worst_idx, j)
            } else {
                (j, worst_idx)
            };
            // 2-opt reconnection: (c_i, c_{i+1}) and (c_j, c_{j+1}) become
            // (c_i, c_j) and (c_{i+1}, c_{j+1}).
            let new_a = points[cycle[i]].distance(&points[cycle[j_]]);
            let new_b = points[cycle[(i + 1) % n]].distance(&points[cycle[(j_ + 1) % n]]);
            let new_max = new_a.max(new_b);
            if new_max < worst_len - 1e-12 && best.is_none_or(|(_, m)| new_max < m) {
                best = Some((j, new_max));
            }
        }
        let Some((j, _)) = best else {
            break;
        };
        let (i, j_) = if worst_idx < j {
            (worst_idx, j)
        } else {
            (j, worst_idx)
        };
        cycle[i + 1..=j_].reverse();
    }
    (0..n).map(|i| hop(cycle, i)).fold(0.0, f64::max)
}

/// Orients one zero-spread beam per sensor along the Euler-tour Hamiltonian
/// cycle **without** the bottleneck 2-opt improvement.  Kept public as the
/// ablation baseline benchmarked against [`orient_hamiltonian`].
pub fn orient_hamiltonian_unimproved(
    instance: &Instance,
) -> Result<HamiltonianOutcome, OrientError> {
    orient_along_cycle(instance, hamiltonian_cycle(instance))
}

/// Orients one zero-spread beam per sensor along the bottleneck-improved
/// Hamiltonian cycle.
pub fn orient_hamiltonian(instance: &Instance) -> Result<HamiltonianOutcome, OrientError> {
    let mut cycle = hamiltonian_cycle(instance);
    if instance.len() >= 4 {
        // A few rounds per vertex are plenty; each round strictly shrinks the
        // bottleneck or stops.
        improve_bottleneck_two_opt(instance.points(), &mut cycle, 4 * instance.len());
    }
    orient_along_cycle(instance, cycle)
}

fn orient_along_cycle(
    instance: &Instance,
    cycle: Vec<usize>,
) -> Result<HamiltonianOutcome, OrientError> {
    let points = instance.points();
    let n = points.len();
    if n == 0 {
        return Err(OrientError::EmptyInstance);
    }
    let mut assignments = vec![SensorAssignment::empty(); n];
    let mut bottleneck = 0.0f64;
    if n > 1 {
        for (i, &v) in cycle.iter().enumerate() {
            let next = cycle[(i + 1) % n];
            let d = points[v].distance(&points[next]);
            bottleneck = bottleneck.max(d);
            assignments[v] =
                SensorAssignment::new(vec![Antenna::beam(&points[v], &points[next], d)]);
        }
    }
    let lmax = instance.lmax();
    let bottleneck_over_lmax = if lmax > 0.0 { bottleneck / lmax } else { 0.0 };
    Ok(HamiltonianOutcome {
        scheme: OrientationScheme::new(assignments),
        cycle,
        bottleneck,
        bottleneck_over_lmax,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;
    use antennae_geometry::Point;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect();
        Instance::new(points).unwrap()
    }

    #[test]
    fn cycle_visits_every_vertex_once() {
        let instance = random_instance(40, 5);
        let cycle = hamiltonian_cycle(&instance);
        assert_eq!(cycle.len(), 40);
        let mut sorted = cycle.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn orientation_is_strongly_connected_with_one_beam_each() {
        let instance = random_instance(60, 9);
        let outcome = orient_hamiltonian(&instance).unwrap();
        let report = verify(&instance, &outcome.scheme);
        assert!(report.is_strongly_connected);
        assert_eq!(report.max_spread_sum, 0.0);
        assert_eq!(report.max_antenna_count, 1);
        assert!((report.max_radius - outcome.bottleneck).abs() < 1e-12);
        assert!(outcome.bottleneck_over_lmax >= 1.0);
    }

    #[test]
    fn path_instance_has_bottleneck_lmax_times_two_at_most() {
        // On a collinear path the preorder cycle goes straight down and jumps
        // back, so the bottleneck is the full path length; this is exactly
        // the kind of instance where the heuristic is far from the 2·lmax
        // guarantee of the exact construction, and the harness reports it.
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let instance = Instance::new(pts).unwrap();
        let outcome = orient_hamiltonian(&instance).unwrap();
        let report = verify(&instance, &outcome.scheme);
        assert!(report.is_strongly_connected);
        assert!(outcome.bottleneck_over_lmax >= 1.0);
    }

    #[test]
    fn single_and_two_sensor_instances() {
        let single = Instance::new(vec![Point::new(0.0, 0.0)]).unwrap();
        let outcome = orient_hamiltonian(&single).unwrap();
        assert_eq!(outcome.bottleneck, 0.0);
        assert!(verify(&single, &outcome.scheme).is_strongly_connected);

        let pair = Instance::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).unwrap();
        let outcome = orient_hamiltonian(&pair).unwrap();
        let report = verify(&pair, &outcome.scheme);
        assert!(report.is_strongly_connected);
        assert!((outcome.bottleneck_over_lmax - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_opt_improves_clustered_bottleneck() {
        // Two distant clusters: the preorder cycle jumps the gap more often
        // than necessary, and the 2-opt pass must bring the bottleneck down
        // to (close to) a single gap crossing each way.
        let mut rng = StdRng::seed_from_u64(77);
        let mut points = Vec::new();
        for cluster in 0..2 {
            let cx = cluster as f64 * 30.0;
            for _ in 0..20 {
                points.push(Point::new(
                    cx + rng.random_range(0.0..3.0),
                    rng.random_range(0.0..3.0),
                ));
            }
        }
        let instance = Instance::new(points).unwrap();
        let unimproved = orient_hamiltonian_unimproved(&instance).unwrap();
        let improved = orient_hamiltonian(&instance).unwrap();
        assert!(improved.bottleneck <= unimproved.bottleneck + 1e-9);
        // Both remain strongly connected.
        assert!(verify(&instance, &improved.scheme).is_strongly_connected);
        assert!(verify(&instance, &unimproved.scheme).is_strongly_connected);
    }

    #[test]
    fn two_opt_on_collinear_points_reaches_factor_two() {
        // On an equally spaced path the optimal bottleneck cycle alternates
        // and achieves 2·lmax; the 2-opt pass should get close to it.
        let pts: Vec<Point> = (0..12).map(|i| Point::new(i as f64, 0.0)).collect();
        let instance = Instance::new(pts).unwrap();
        let improved = orient_hamiltonian(&instance).unwrap();
        let unimproved = orient_hamiltonian_unimproved(&instance).unwrap();
        assert!(improved.bottleneck_over_lmax <= unimproved.bottleneck_over_lmax);
        assert!(
            improved.bottleneck_over_lmax <= 4.0,
            "2-opt left bottleneck at {}",
            improved.bottleneck_over_lmax
        );
        assert!(verify(&instance, &improved.scheme).is_strongly_connected);
    }

    #[test]
    fn two_opt_preserves_the_vertex_set() {
        let instance = random_instance(50, 123);
        let mut cycle = hamiltonian_cycle(&instance);
        improve_bottleneck_two_opt(instance.points(), &mut cycle, 200);
        let mut sorted = cycle.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_hamiltonian_always_strongly_connected(seed in 0u64..300, n in 1usize..60) {
            let instance = random_instance(n, seed);
            let outcome = orient_hamiltonian(&instance).unwrap();
            let report = verify(&instance, &outcome.scheme);
            prop_assert!(report.is_strongly_connected);
            prop_assert!(report.max_antenna_count <= 1);
        }

        #[test]
        fn prop_two_opt_never_worsens_the_bottleneck(seed in 0u64..200, n in 4usize..50) {
            let instance = random_instance(n, seed);
            let base = orient_hamiltonian_unimproved(&instance).unwrap();
            let improved = orient_hamiltonian(&instance).unwrap();
            prop_assert!(improved.bottleneck <= base.bottleneck + 1e-9);
            prop_assert!(verify(&instance, &improved.scheme).is_strongly_connected);
        }
    }
}
