//! Theorem 3: two antennae per sensor with bounded spread sum.
//!
//! > *Consider a set of `n` sensors in the plane with two antennae each.
//! > There is an algorithm for directing the antennae so that the resulting
//! > graph is strongly connected such that:*
//! > 1. *if `φ₂ = π` then `r₂,π ≤ 2·sin(2π/9)`, and*
//! > 2. *if `2π/3 ≤ φ₂ < π` then `r₂,φ₂ ≤ 2·sin(π/2 − φ₂/4)`.*
//!
//! ## How the construction is implemented
//!
//! The paper's proof is an induction that maintains **Property 1**: for a
//! subtree `T_v` and *any* imaginary point `p` within range of `v`, the
//! antennae inside `T_v` can be oriented so that `T_v` is strongly connected
//! and an antenna at `v` covers `p`.  The inductive step is a case analysis
//! on the degree of `v` (Figures 3 and 4) that chooses, for each vertex,
//!
//! * which contiguous counterclockwise fan of neighbours the "wide" antenna
//!   covers,
//! * where the zero-spread (or second wide) antenna points, and
//! * which children are covered by a *sibling* instead of by `v` itself
//!   (those children receive the sibling as the imaginary point of their own
//!   Property-1 application).
//!
//! This module implements that step as an explicit **local configuration
//! search**: at every vertex it enumerates the candidate configurations of
//! exactly the shapes used in the paper's case analysis (a wide antenna over
//! a contiguous fan + a beam or a second wide antenna + sibling coverage for
//! the remaining children), keeps only those that respect the spread budget
//! `φ₂` and strong-connect the local neighbourhood, and picks the one with
//! the smallest required radius.  The paper's case analysis proves that a
//! configuration within the Theorem 3 radius bound always exists for
//! `φ₂ ≥ 2π/3`, so the minimum found is within the bound; the property tests
//! and the EXP-T1 experiment check this on every instance, and the chosen
//! configuration shapes are tallied for the Figure 3 / Figure 4 experiments.

use crate::antenna::{Antenna, SensorAssignment};
use crate::bounds::{theorem3_radius, SPREAD_EPS};
use crate::error::OrientError;
use crate::instance::Instance;
use crate::scheme::OrientationScheme;
use antennae_geometry::{Angle, Point, PI, TAU};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where a child's own "Property 1" antenna must point: at its parent or at
/// a designated sibling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChildTarget {
    /// The child covers its parent (the common case).
    Parent,
    /// The child covers the sibling with this index (position in the
    /// caller-supplied children slice).
    Sibling(usize),
}

/// A label describing the shape of the configuration chosen at a vertex;
/// used to regenerate the case histograms of Figures 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CaseLabel {
    /// Degree of the vertex in the rooted tree (children + 1 for the
    /// predecessor / imaginary point).
    pub degree: usize,
    /// Number of children covered directly by the vertex's own antennae.
    pub children_covered_by_vertex: usize,
    /// Number of children covered by a sibling instead.
    pub children_covered_by_sibling: usize,
    /// `true` when both antennae have positive spread (the paper's case
    /// 2(b)(i) of Figure 4(f)); `false` when the second antenna is a beam.
    pub two_wide_antennas: bool,
}

/// Outcome of the two-antenna construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoAntennaOutcome {
    /// The orientation scheme.
    pub scheme: OrientationScheme,
    /// How often each local configuration shape was chosen (Figures 3/4).
    pub case_counts: BTreeMap<CaseLabel, usize>,
    /// The largest distance of a sibling-coverage edge, in absolute units.
    pub max_sibling_distance: f64,
}

/// A local configuration at one vertex.
#[derive(Debug, Clone)]
struct LocalConfig {
    antennas: Vec<Antenna>,
    child_targets: Vec<ChildTarget>,
    required_radius: f64,
    total_spread: f64,
    label: CaseLabel,
}

/// Orients two antennae per sensor with spread sum at most `phi2`.
///
/// Requires `phi2 ≥ 2π/3`; the radius guarantee is
/// [`theorem3_radius`]`(phi2)` in units of `lmax`.
pub fn orient_two_antennae(
    instance: &Instance,
    phi2: f64,
) -> Result<TwoAntennaOutcome, OrientError> {
    let required = 2.0 * PI / 3.0;
    if phi2 < required - SPREAD_EPS {
        return Err(OrientError::InsufficientSpread {
            requested: phi2,
            required,
        });
    }
    let tree = instance.rooted_tree();
    let points = instance.points();
    let n = points.len();
    let mut assignments: Vec<SensorAssignment> = vec![SensorAssignment::empty(); n];
    let mut case_counts: BTreeMap<CaseLabel, usize> = BTreeMap::new();
    let mut max_sibling_distance: f64 = 0.0;

    if n == 1 {
        return Ok(TwoAntennaOutcome {
            scheme: OrientationScheme::new(assignments),
            case_counts,
            max_sibling_distance,
        });
    }

    // target_point[v] = the point vertex v must cover with one of its own
    // antennae (its parent's location, or a designated sibling's location).
    let mut target_point: Vec<Option<Point>> = vec![None; n];

    // The root is a degree-one vertex: aim one beam at its single child.
    let root = tree.root();
    let root_children = tree.children(root);
    debug_assert!(root_children.len() <= 1, "the root is chosen as a leaf");
    if let Some(&child) = root_children.first() {
        let apex = points[root];
        assignments[root] = SensorAssignment::new(vec![Antenna::beam(
            &apex,
            &points[child],
            apex.distance(&points[child]),
        )]);
        target_point[child] = Some(apex);
    }

    for u in tree.bfs_order() {
        if u == root {
            continue;
        }
        let apex = points[u];
        let p = target_point[u].ok_or_else(|| {
            OrientError::Internal(format!("vertex {u} reached before its target was set"))
        })?;
        let children = tree.children(u);
        let child_points: Vec<Point> = children.iter().map(|&c| points[c]).collect();
        let config = best_local_config(&apex, &p, &child_points, phi2)
            .ok_or(OrientError::NoFeasibleLocalConfiguration { vertex: u })?;

        *case_counts.entry(config.label).or_insert(0) += 1;
        assignments[u] = SensorAssignment::new(config.antennas.clone());
        for (i, &c) in children.iter().enumerate() {
            match config.child_targets[i] {
                ChildTarget::Parent => target_point[c] = Some(apex),
                ChildTarget::Sibling(j) => {
                    let sibling_point = child_points[j];
                    max_sibling_distance =
                        max_sibling_distance.max(child_points[i].distance(&sibling_point));
                    target_point[c] = Some(sibling_point);
                }
            }
        }
    }

    Ok(TwoAntennaOutcome {
        scheme: OrientationScheme::new(assignments),
        case_counts,
        max_sibling_distance,
    })
}

/// A cyclic "member" of a vertex's neighbourhood: the imaginary point `p` or
/// one of the children.
#[derive(Debug, Clone, Copy)]
struct Member {
    /// `None` for the imaginary point `p`, `Some(i)` for child `i` (position
    /// in the caller-supplied slice).
    child: Option<usize>,
    direction: Angle,
    distance: f64,
}

/// Finds the feasible local configuration with the smallest required radius.
///
/// `p` is the point the vertex must cover, `children` the locations of its
/// children, `phi` the per-sensor spread budget.
fn best_local_config(apex: &Point, p: &Point, children: &[Point], phi: f64) -> Option<LocalConfig> {
    let m = children.len();
    // A leaf only needs a beam at p.
    if m == 0 {
        return Some(LocalConfig {
            antennas: vec![Antenna::beam(apex, p, apex.distance(p))],
            child_targets: Vec::new(),
            required_radius: apex.distance(p),
            total_spread: 0.0,
            label: CaseLabel {
                degree: 1,
                children_covered_by_vertex: 0,
                children_covered_by_sibling: 0,
                two_wide_antennas: false,
            },
        });
    }

    // Build the member cycle: p plus the children, each with its direction
    // from the apex.
    let mut members: Vec<Member> = Vec::with_capacity(m + 1);
    members.push(Member {
        child: None,
        direction: Angle::of_ray(apex, p),
        distance: apex.distance(p),
    });
    for (i, c) in children.iter().enumerate() {
        members.push(Member {
            child: Some(i),
            direction: Angle::of_ray(apex, c),
            distance: apex.distance(c),
        });
    }
    let total = members.len();

    // Candidate "primary" antennae: zero beams at each member and arcs from
    // one member's direction counterclockwise to another's.
    let mut primaries: Vec<(Antenna, Vec<usize>, f64)> = Vec::new(); // (antenna, covered members, spread)
    for i in 0..total {
        // Zero-spread beam at member i.
        let covered = covered_members(&members, members[i].direction, 0.0);
        let radius = covered_radius(&members, &covered);
        primaries.push((
            Antenna::new(members[i].direction, 0.0, radius),
            covered,
            0.0,
        ));
        for j in 0..total {
            if i == j {
                continue;
            }
            let spread = members[i].direction.ccw_to(&members[j].direction).radians();
            if spread > phi + SPREAD_EPS {
                continue;
            }
            let covered = covered_members(&members, members[i].direction, spread);
            let radius = covered_radius(&members, &covered);
            primaries.push((
                Antenna::new(members[i].direction, spread, radius),
                covered,
                spread,
            ));
        }
    }

    let mut best: Option<LocalConfig> = None;
    for (a1, covered1, spread1) in &primaries {
        // Secondary options: nothing, or any primary whose spread fits in the
        // remaining budget.
        let remaining = phi - spread1;
        let mut secondary_options: Vec<Option<&(Antenna, Vec<usize>, f64)>> = vec![None];
        for cand in &primaries {
            if cand.2 <= remaining + SPREAD_EPS {
                secondary_options.push(Some(cand));
            }
        }
        for secondary in secondary_options {
            let mut covered: Vec<bool> = vec![false; total];
            for &idx in covered1 {
                covered[idx] = true;
            }
            let mut antennas = vec![*a1];
            let mut total_spread = *spread1;
            let mut two_wide = false;
            if let Some((a2, covered2, spread2)) = secondary {
                for &idx in covered2 {
                    covered[idx] = true;
                }
                antennas.push(*a2);
                total_spread += spread2;
                two_wide = *spread1 > SPREAD_EPS && *spread2 > SPREAD_EPS;
            }
            // The imaginary point must be covered by the vertex itself.
            if !covered[0] {
                continue;
            }
            // Children not covered by the vertex must be covered by a
            // distinct covered sibling each.
            let uncovered: Vec<usize> = (1..total).filter(|&i| !covered[i]).collect();
            let covered_children: Vec<usize> = (1..total).filter(|&i| covered[i]).collect();
            if uncovered.len() > covered_children.len() {
                continue;
            }
            let Some((assignment, matching_radius)) =
                best_sibling_matching(&members, children, &uncovered, &covered_children)
            else {
                continue;
            };

            let mut child_targets = vec![ChildTarget::Parent; m];
            for (&uncovered_member, &coverer_member) in uncovered.iter().zip(assignment.iter()) {
                let uncovered_child = members[uncovered_member].child.expect("children only");
                let coverer_child = members[coverer_member].child.expect("children only");
                child_targets[coverer_child] = ChildTarget::Sibling(uncovered_child);
            }

            let antenna_radius = antennas.iter().map(|a| a.radius).fold(0.0, f64::max);
            let required_radius = antenna_radius.max(matching_radius);
            let label = CaseLabel {
                degree: m + 1,
                children_covered_by_vertex: covered_children.len(),
                children_covered_by_sibling: uncovered.len(),
                two_wide_antennas: two_wide,
            };
            let candidate = LocalConfig {
                antennas,
                child_targets,
                required_radius,
                total_spread,
                label,
            };
            let better = match &best {
                None => true,
                Some(current) => {
                    candidate.required_radius < current.required_radius - 1e-12
                        || ((candidate.required_radius - current.required_radius).abs() <= 1e-12
                            && candidate.total_spread < current.total_spread - 1e-12)
                }
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    best
}

/// Members covered by an arc starting at `start` with the given spread.
fn covered_members(members: &[Member], start: Angle, spread: f64) -> Vec<usize> {
    members
        .iter()
        .enumerate()
        .filter(|(_, member)| member.direction.within_ccw_arc(&start, spread, 1e-9))
        .map(|(i, _)| i)
        .collect()
}

/// Radius needed for an antenna to reach every covered member.
fn covered_radius(members: &[Member], covered: &[usize]) -> f64 {
    covered
        .iter()
        .map(|&i| members[i].distance)
        .fold(0.0, f64::max)
}

/// Finds the injective assignment of uncovered children to distinct covered
/// children minimizing the maximum coverage distance.
///
/// Returns the assignment (one covered member per uncovered member, in the
/// order of `uncovered`) and its maximum distance, or `None` when no
/// injective assignment exists.
fn best_sibling_matching(
    members: &[Member],
    children: &[Point],
    uncovered: &[usize],
    covered_children: &[usize],
) -> Option<(Vec<usize>, f64)> {
    if uncovered.is_empty() {
        return Some((Vec::new(), 0.0));
    }
    if uncovered.len() > covered_children.len() {
        return None;
    }
    let distance = |member_a: usize, member_b: usize| -> f64 {
        let a = members[member_a].child.expect("child member");
        let b = members[member_b].child.expect("child member");
        children[a].distance(&children[b])
    };
    // Brute-force over injective assignments (at most 4 × 4).
    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut used = vec![false; covered_children.len()];
    let mut current: Vec<usize> = Vec::with_capacity(uncovered.len());
    fn recurse(
        pos: usize,
        uncovered: &[usize],
        covered_children: &[usize],
        used: &mut Vec<bool>,
        current: &mut Vec<usize>,
        best: &mut Option<(Vec<usize>, f64)>,
        distance: &dyn Fn(usize, usize) -> f64,
    ) {
        if pos == uncovered.len() {
            let max_dist = uncovered
                .iter()
                .zip(current.iter())
                .map(|(&u, &c)| distance(u, c))
                .fold(0.0, f64::max);
            if best.as_ref().is_none_or(|(_, d)| max_dist < *d) {
                *best = Some((current.clone(), max_dist));
            }
            return;
        }
        for (slot, &coverer) in covered_children.iter().enumerate() {
            if used[slot] {
                continue;
            }
            used[slot] = true;
            current.push(coverer);
            recurse(
                pos + 1,
                uncovered,
                covered_children,
                used,
                current,
                best,
                distance,
            );
            current.pop();
            used[slot] = false;
        }
    }
    recurse(
        0,
        uncovered,
        covered_children,
        &mut used,
        &mut current,
        &mut best,
        &distance,
    );
    best
}

/// The radius guarantee of Theorem 3 for the given spread budget, in units of
/// `lmax` (`None` below `2π/3`).  Budgets above `π` keep the `φ₂ = π`
/// guarantee.
pub fn guaranteed_radius(phi2: f64) -> Option<f64> {
    theorem3_radius(phi2.min(TAU))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::AntennaBudget;
    use crate::verify::{verify, verify_with_budget};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect();
        Instance::new(points).unwrap()
    }

    fn clustered_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Point> = (0..4)
            .map(|_| Point::new(rng.random_range(0.0..20.0), rng.random_range(0.0..20.0)))
            .collect();
        let points = (0..n)
            .map(|i| {
                let c = centers[i % centers.len()];
                Point::new(
                    c.x + rng.random_range(-1.0..1.0),
                    c.y + rng.random_range(-1.0..1.0),
                )
            })
            .collect();
        Instance::new(points).unwrap()
    }

    #[test]
    fn rejects_spread_below_two_thirds_pi() {
        let instance = random_instance(10, 3);
        assert!(matches!(
            orient_two_antennae(&instance, 1.0),
            Err(OrientError::InsufficientSpread { .. })
        ));
    }

    #[test]
    fn part1_phi_pi_meets_its_radius_bound() {
        let bound = guaranteed_radius(PI).unwrap();
        for seed in 0..5 {
            let instance = random_instance(70, 400 + seed);
            let outcome = orient_two_antennae(&instance, PI).unwrap();
            let report =
                verify_with_budget(&instance, &outcome.scheme, Some(AntennaBudget::new(2, PI)));
            assert!(report.is_valid(), "seed {seed}: {:?}", report.violations);
            assert!(report.is_strongly_connected, "seed {seed}");
            assert!(
                report.max_radius_over_lmax <= bound + 1e-9,
                "seed {seed}: measured {} > bound {bound}",
                report.max_radius_over_lmax
            );
        }
    }

    #[test]
    fn part2_small_spreads_meet_their_radius_bounds() {
        for &phi in &[2.0 * PI / 3.0, 0.75 * PI, 0.9 * PI] {
            let bound = guaranteed_radius(phi).unwrap();
            for seed in 0..3 {
                let instance = random_instance(60, 700 + seed);
                let outcome = orient_two_antennae(&instance, phi).unwrap();
                let report = verify_with_budget(
                    &instance,
                    &outcome.scheme,
                    Some(AntennaBudget::new(2, phi)),
                );
                assert!(
                    report.is_valid(),
                    "phi={phi} seed={seed}: {:?}",
                    report.violations
                );
                assert!(
                    report.max_radius_over_lmax <= bound + 1e-9,
                    "phi={phi} seed={seed}: measured {} > bound {bound}",
                    report.max_radius_over_lmax
                );
            }
        }
    }

    #[test]
    fn clustered_instances_are_handled() {
        let instance = clustered_instance(80, 11);
        let outcome = orient_two_antennae(&instance, PI).unwrap();
        let report = verify(&instance, &outcome.scheme);
        assert!(report.is_strongly_connected);
        assert!(report.max_radius_over_lmax <= guaranteed_radius(PI).unwrap() + 1e-9);
    }

    #[test]
    fn collinear_chain_uses_only_beams() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
        let instance = Instance::new(pts).unwrap();
        let outcome = orient_two_antennae(&instance, PI).unwrap();
        let report = verify(&instance, &outcome.scheme);
        assert!(report.is_strongly_connected);
        // On a path the best local configuration is always two beams.
        assert_eq!(report.max_spread_sum, 0.0);
        assert!((report.max_radius_over_lmax - 1.0).abs() < 1e-9);
    }

    #[test]
    fn plus_configuration_requires_a_wide_antenna() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(-1.0, 0.0),
            Point::new(0.0, -1.0),
        ];
        let instance = Instance::new(pts).unwrap();
        let outcome = orient_two_antennae(&instance, PI).unwrap();
        let report = verify(&instance, &outcome.scheme);
        assert!(report.is_strongly_connected);
        assert!(report.max_radius_over_lmax <= guaranteed_radius(PI).unwrap() + 1e-9);
        // The centre has degree 4, so at least one vertex needs spread or a
        // sibling edge; either way the case log records a degree-4 vertex.
        assert!(outcome.case_counts.keys().any(|label| label.degree >= 4));
    }

    #[test]
    fn star_with_five_arms_exercises_degree_five_case() {
        // Five arms of two vertices each force an internal vertex of degree 5
        // once the tree is rooted at an arm tip.
        let mut pts = vec![Point::new(0.0, 0.0)];
        for i in 0..5 {
            let theta = TAU * i as f64 / 5.0;
            pts.push(Point::new(theta.cos(), theta.sin()));
            pts.push(Point::new(2.0 * theta.cos(), 2.0 * theta.sin()));
        }
        let instance = Instance::new(pts).unwrap();
        let outcome = orient_two_antennae(&instance, PI).unwrap();
        let report = verify(&instance, &outcome.scheme);
        assert!(report.is_strongly_connected);
        assert!(report.max_radius_over_lmax <= guaranteed_radius(PI).unwrap() + 1e-9);
        assert!(outcome.case_counts.keys().any(|label| label.degree == 5));
    }

    #[test]
    fn case_counts_cover_every_non_root_vertex() {
        let instance = random_instance(50, 77);
        let outcome = orient_two_antennae(&instance, PI).unwrap();
        let total: usize = outcome.case_counts.values().sum();
        assert_eq!(total, instance.len() - 1);
    }

    #[test]
    fn single_and_two_sensor_instances() {
        let single = Instance::new(vec![Point::new(0.0, 0.0)]).unwrap();
        let outcome = orient_two_antennae(&single, PI).unwrap();
        assert!(verify(&single, &outcome.scheme).is_strongly_connected);

        let pair = Instance::new(vec![Point::new(0.0, 0.0), Point::new(3.0, 0.0)]).unwrap();
        let outcome = orient_two_antennae(&pair, PI).unwrap();
        let report = verify(&pair, &outcome.scheme);
        assert!(report.is_strongly_connected);
        assert!((report.max_radius_over_lmax - 1.0).abs() < 1e-9);
    }

    #[test]
    fn larger_budgets_never_hurt() {
        let instance = random_instance(60, 909);
        let tight = orient_two_antennae(&instance, 2.0 * PI / 3.0).unwrap();
        let loose = orient_two_antennae(&instance, PI).unwrap();
        let r_tight = verify(&instance, &tight.scheme).max_radius_over_lmax;
        let r_loose = verify(&instance, &loose.scheme).max_radius_over_lmax;
        assert!(r_loose <= r_tight + 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_theorem3_invariants(seed in 0u64..300, n in 2usize..45, phi_frac in 0.0..1.0f64) {
            let phi = 2.0 * PI / 3.0 + phi_frac * (PI - 2.0 * PI / 3.0);
            let instance = random_instance(n, seed);
            let outcome = orient_two_antennae(&instance, phi).unwrap();
            let report = verify_with_budget(&instance, &outcome.scheme, Some(AntennaBudget::new(2, phi)));
            prop_assert!(report.is_valid(), "violations: {:?}", report.violations);
            prop_assert!(report.is_strongly_connected);
            let bound = guaranteed_radius(phi).unwrap();
            prop_assert!(report.max_radius_over_lmax <= bound + 1e-6,
                         "radius {} > bound {}", report.max_radius_over_lmax, bound);
        }
    }
}
