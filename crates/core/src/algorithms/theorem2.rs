//! Theorem 2: when `φ_k ≥ 2π(5−k)/5`, radius `lmax` suffices.
//!
//! The construction applies Lemma 1 independently at every vertex of the
//! degree-5 MST: each vertex covers **all** of its tree neighbours, so every
//! tree edge is present in both directions in the induced digraph, which is
//! therefore strongly connected.  The spread used at a degree-`d` vertex is
//! at most `2π(d−k)/d ≤ 2π(5−k)/5` (the bound is monotone in `d ≤ 5`), and
//! every antenna range is at most the longest incident tree edge, hence at
//! most `lmax`.

use crate::algorithms::lemma1;
use crate::antenna::SensorAssignment;
use crate::bounds::theorem2_spread_threshold;
use crate::error::OrientError;
use crate::instance::Instance;
use crate::parallel::{chunk_ranges, default_threads, parallel_map};
use crate::scheme::OrientationScheme;
use antennae_geometry::Point;

/// Smallest instance for which the per-vertex Lemma-1 sweep is fanned out;
/// below this the thread-scope setup costs more than the whole sweep.
const PARALLEL_ORIENT_MIN: usize = 4096;

/// Orients `k` antennae per sensor so that every MST edge exists in both
/// directions, using [`default_threads`] worker threads on large instances.
///
/// Fails when `k` is outside `1..=5`.  The caller is responsible for
/// checking that its spread budget `φ_k` is at least
/// [`theorem2_spread_threshold`]`(k)`; the scheme produced here always uses
/// at most that much spread per sensor, so a larger budget is automatically
/// respected.
pub fn orient_theorem2(instance: &Instance, k: usize) -> Result<OrientationScheme, OrientError> {
    orient_theorem2_with_threads(instance, k, default_threads())
}

/// [`orient_theorem2`] with an explicit worker-thread count.
///
/// Theorem 2 is one Lemma-1 application per vertex with no cross-vertex
/// state, so the sweep is chunked over [`chunk_ranges`] and the per-chunk
/// assignment vectors concatenated in order.  Each vertex's antennas are
/// computed by the same call whatever the chunking, so every thread count
/// produces the bit-identical scheme; each chunk reuses one neighbour
/// buffer across its vertices, keeping the hot loop allocation-light.
pub fn orient_theorem2_with_threads(
    instance: &Instance,
    k: usize,
    threads: usize,
) -> Result<OrientationScheme, OrientError> {
    if !(1..=5).contains(&k) {
        return Err(OrientError::UnsupportedAntennaCount { k });
    }
    let mst = instance.mst();
    let points = instance.points();
    let n = points.len();
    let orient_range = |start: usize, end: usize| -> Vec<SensorAssignment> {
        let mut out = Vec::with_capacity(end - start);
        let mut neighbors: Vec<Point> = Vec::with_capacity(8);
        for v in start..end {
            neighbors.clear();
            neighbors.extend(mst.neighbors(v).iter().map(|&(u, _)| points[u]));
            let antennas = lemma1::orient_node(&points[v], &neighbors, k);
            out.push(SensorAssignment::new(antennas));
        }
        out
    };
    let assignments = if threads > 1 && n >= PARALLEL_ORIENT_MIN {
        let ranges = chunk_ranges(n, threads);
        let chunks = parallel_map(&ranges, threads, |&(start, end)| orient_range(start, end));
        let mut assignments = Vec::with_capacity(n);
        for chunk in chunks {
            assignments.extend(chunk);
        }
        assignments
    } else {
        orient_range(0, n)
    };
    Ok(OrientationScheme::new(assignments))
}

/// The maximum spread per sensor that [`orient_theorem2`] can use for a given
/// `k` — the Theorem 2 threshold `2π(5−k)/5`.
pub fn worst_case_spread(k: usize) -> f64 {
    theorem2_spread_threshold(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;
    use antennae_geometry::Point;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect();
        Instance::new(points).unwrap()
    }

    #[test]
    fn rejects_invalid_antenna_counts() {
        let instance = random_instance(10, 1);
        assert!(matches!(
            orient_theorem2(&instance, 0),
            Err(OrientError::UnsupportedAntennaCount { k: 0 })
        ));
        assert!(matches!(
            orient_theorem2(&instance, 6),
            Err(OrientError::UnsupportedAntennaCount { k: 6 })
        ));
    }

    #[test]
    fn produces_strongly_connected_scheme_with_radius_lmax() {
        for k in 1..=5 {
            let instance = random_instance(60, 42 + k as u64);
            let scheme = orient_theorem2(&instance, k).unwrap();
            let report = verify(&instance, &scheme);
            assert!(report.is_strongly_connected, "k={k}");
            // Radius never exceeds lmax.
            assert!(
                report.max_radius_over_lmax <= 1.0 + 1e-9,
                "k={k}: radius {} lmax",
                report.max_radius_over_lmax
            );
            // Spread per sensor never exceeds the Theorem 2 threshold.
            assert!(
                report.max_spread_sum <= worst_case_spread(k) + 1e-9,
                "k={k}: spread {}",
                report.max_spread_sum
            );
            assert!(report.max_antenna_count <= k.max(1));
        }
    }

    #[test]
    fn single_sensor_and_pair() {
        let single = Instance::new(vec![Point::new(0.0, 0.0)]).unwrap();
        let scheme = orient_theorem2(&single, 2).unwrap();
        assert!(verify(&single, &scheme).is_strongly_connected);

        let pair = Instance::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap();
        let scheme = orient_theorem2(&pair, 1).unwrap();
        let report = verify(&pair, &scheme);
        assert!(report.is_strongly_connected);
        assert!((report.max_radius_over_lmax - 1.0).abs() < 1e-9);
    }

    #[test]
    fn collinear_chain_uses_zero_spread_for_k_at_least_two() {
        let pts: Vec<Point> = (0..8).map(|i| Point::new(i as f64, 0.0)).collect();
        let instance = Instance::new(pts).unwrap();
        let scheme = orient_theorem2(&instance, 2).unwrap();
        let report = verify(&instance, &scheme);
        assert!(report.is_strongly_connected);
        // Interior vertices have degree 2 ≤ k, so only beams are needed.
        assert_eq!(report.max_spread_sum, 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_theorem2_invariants(seed in 0u64..500, n in 2usize..50, k in 1usize..=5) {
            let instance = random_instance(n, seed);
            let scheme = orient_theorem2(&instance, k).unwrap();
            let report = verify(&instance, &scheme);
            prop_assert!(report.is_strongly_connected);
            prop_assert!(report.max_radius_over_lmax <= 1.0 + 1e-6);
            prop_assert!(report.max_spread_sum <= worst_case_spread(k) + 1e-6);
        }
    }
}
