//! Single-antenna orientations (the `k = 1` rows of Table 1).
//!
//! * For `φ₁ ≥ 8π/5` (the Theorem 2 threshold for `k = 1`) a single antenna
//!   per sensor of spread at most `2π(d−1)/d ≤ 8π/5` covers all MST
//!   neighbours, so radius `lmax` suffices — this matches the `[4]` row.
//! * For smaller spreads the scheme falls back to the Hamiltonian-cycle
//!   baseline (`[14]` row, spread 0); the intermediate `[4]` regime
//!   (`π ≤ φ₁ < 8π/5`, radius `2·sin(π − φ₁/2)`) is prior work whose
//!   specialized construction is *not* re-implemented — the substitution and
//!   its effect on the Table 1 reproduction are documented in DESIGN.md and
//!   EXPERIMENTS.md.

use crate::algorithms::hamiltonian::orient_hamiltonian;
use crate::algorithms::theorem2::orient_theorem2;
use crate::bounds::{theorem2_spread_threshold, SPREAD_EPS};
use crate::error::OrientError;
use crate::instance::Instance;
use crate::scheme::OrientationScheme;
use serde::{Deserialize, Serialize};

/// Which regime the single-antenna orientation used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OneAntennaRegime {
    /// `φ₁ ≥ 8π/5`: one wide antenna per sensor covering all MST neighbours
    /// (radius `lmax`).
    WideCoverage,
    /// `φ₁ < 8π/5`: one beam per sensor along a Hamiltonian cycle.
    HamiltonianCycle,
}

/// Result of the single-antenna orientation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OneAntennaOutcome {
    /// The orientation scheme.
    pub scheme: OrientationScheme,
    /// Which construction was used.
    pub regime: OneAntennaRegime,
}

/// Orients a single antenna per sensor with spread at most `phi1`.
pub fn orient_one_antenna(
    instance: &Instance,
    phi1: f64,
) -> Result<OneAntennaOutcome, OrientError> {
    if phi1 + SPREAD_EPS >= theorem2_spread_threshold(1) {
        Ok(OneAntennaOutcome {
            scheme: orient_theorem2(instance, 1)?,
            regime: OneAntennaRegime::WideCoverage,
        })
    } else {
        Ok(OneAntennaOutcome {
            scheme: orient_hamiltonian(instance)?.scheme,
            regime: OneAntennaRegime::HamiltonianCycle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::AntennaBudget;
    use crate::verify::{verify, verify_with_budget};
    use antennae_geometry::{Point, PI};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect();
        Instance::new(points).unwrap()
    }

    #[test]
    fn wide_regime_achieves_radius_lmax() {
        let instance = random_instance(60, 21);
        let phi = 8.0 * PI / 5.0;
        let outcome = orient_one_antenna(&instance, phi).unwrap();
        assert_eq!(outcome.regime, OneAntennaRegime::WideCoverage);
        let report =
            verify_with_budget(&instance, &outcome.scheme, Some(AntennaBudget::new(1, phi)));
        assert!(report.is_valid(), "{:?}", report.violations);
        assert!(report.is_strongly_connected);
        assert!(report.max_radius_over_lmax <= 1.0 + 1e-9);
    }

    #[test]
    fn narrow_regime_falls_back_to_hamiltonian() {
        let instance = random_instance(60, 22);
        let outcome = orient_one_antenna(&instance, PI).unwrap();
        assert_eq!(outcome.regime, OneAntennaRegime::HamiltonianCycle);
        let report =
            verify_with_budget(&instance, &outcome.scheme, Some(AntennaBudget::new(1, PI)));
        assert!(report.is_valid(), "{:?}", report.violations);
        assert!(report.is_strongly_connected);
        assert_eq!(report.max_spread_sum, 0.0);
    }

    #[test]
    fn zero_spread_budget_is_honoured() {
        let instance = random_instance(30, 23);
        let outcome = orient_one_antenna(&instance, 0.0).unwrap();
        let report = verify_with_budget(
            &instance,
            &outcome.scheme,
            Some(AntennaBudget::beams_only(1)),
        );
        assert!(report.is_valid(), "{:?}", report.violations);
        assert!(report.is_strongly_connected);
    }

    #[test]
    fn single_sensor_instance() {
        let instance = Instance::new(vec![Point::new(0.0, 0.0)]).unwrap();
        let outcome = orient_one_antenna(&instance, 2.0 * PI).unwrap();
        assert!(verify(&instance, &outcome.scheme).is_strongly_connected);
    }
}
