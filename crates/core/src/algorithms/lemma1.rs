//! Lemma 1: orienting `k` antennae at a single degree-`d` vertex.
//!
//! > *Assume that a node `u` has degree `d` and the sensor at `u` is equipped
//! > with `k` antennae, `1 ≤ k ≤ d`, of range at least the maximum edge
//! > length of an edge from `u` to its neighbours.  Then `2π(d−k)/d` is
//! > always a sufficient and sometimes necessary bound on the sum of the
//! > angles of the antennae at `u` so that there is an edge from `u` to all
//! > its neighbours.*
//!
//! The constructive direction of the proof is implemented verbatim: find the
//! `k + 1` consecutive neighbours (in counterclockwise order) whose `k`
//! consecutive angular gaps have the **largest** sum `Σ ≥ 2πk/d`, aim `k − 1`
//! zero-spread beams at the interior neighbours of that fan, and cover the
//! remaining `d − k + 1` neighbours with a single antenna of spread
//! `2π − Σ ≤ 2π(d−k)/d`.

use crate::antenna::Antenna;
use antennae_geometry::angular::{circular_gaps, max_window_sum, sort_ccw};
use antennae_geometry::{Angle, Point, TAU};

/// Orients antennae at `apex` so that every point of `neighbors` is covered.
///
/// At most `k` antennae are produced (fewer when `k` exceeds the number of
/// neighbours).  Each antenna's radius is set to exactly the largest distance
/// it needs; the spread sum is at most `2π(d−k)/d` where `d` is the number of
/// neighbours (`0` when `k ≥ d`).
///
/// Returns an empty vector for an empty neighbour list.
pub fn orient_node(apex: &Point, neighbors: &[Point], k: usize) -> Vec<Antenna> {
    let d = neighbors.len();
    if d == 0 || k == 0 {
        return Vec::new();
    }
    if k >= d {
        // One dedicated beam per neighbour.
        return neighbors
            .iter()
            .map(|t| Antenna::beam(apex, t, apex.distance(t)))
            .collect();
    }

    let sorted = sort_ccw(apex, neighbors);
    let gaps = circular_gaps(&sorted);
    if gaps.iter().sum::<f64>() <= 0.0 {
        // Degenerate multiset: every neighbour reports the *same* direction
        // from the apex (duplicates of the apex included — a zero vector
        // yields that constant direction too), so the circular gaps carry no
        // angular mass and the windowing argument below would degrade to a
        // full-circle antenna.  One zero-spread beam of sufficient range
        // covers everyone instead: collinear neighbours share the beam's
        // exact direction, and apex-coincident neighbours are covered by the
        // verifier's apex rule regardless of direction.  Surfaced by the
        // churn experiments, where mobility clamping can pile several
        // sensors onto one exact location.
        let radius = sorted.iter().map(|m| m.distance).fold(0.0, f64::max);
        return vec![Antenna::new(sorted[0].direction, 0.0, radius)];
    }
    let (start, window_sum) =
        max_window_sum(&gaps, k).expect("k < d implies a valid window exists");

    // The fan consists of sorted[start], sorted[start+1], …, sorted[start+k];
    // its k interior gaps have total angle `window_sum ≥ 2πk/d`.
    let mut antennas = Vec::with_capacity(k);
    // k − 1 beams at the interior neighbours of the fan.
    for offset in 1..k {
        let member = &sorted[(start + offset) % d];
        let target = &neighbors[member.index];
        antennas.push(Antenna::beam(apex, target, member.distance));
    }
    // One wide antenna covering everyone else: the counterclockwise arc from
    // the last fan neighbour around to the first fan neighbour.
    let arc_start_member = &sorted[(start + k) % d];
    let spread = (TAU - window_sum).max(0.0);
    let wide_start: Angle = arc_start_member.direction;
    // Radius: the farthest neighbour the wide antenna is responsible for.
    let mut wide_radius: f64 = 0.0;
    for offset in k..=d {
        let member = &sorted[(start + offset) % d];
        wide_radius = wide_radius.max(member.distance);
    }
    antennas.push(Antenna::new(wide_start, spread, wide_radius));
    antennas
}

/// The spread that Lemma 1 proves sufficient at a degree-`d` node with `k`
/// antennae: `2π(d−k)/d` (0 when `k ≥ d`).
pub fn sufficient_spread(d: usize, k: usize) -> f64 {
    crate::bounds::lemma1_sufficient_spread(d.max(1), k)
}

/// The spread that is *necessary* on the regular `d`-gon configuration used
/// in the lemma's lower-bound argument — the same value `2π(d−k)/d`.
pub fn necessary_spread_regular_polygon(d: usize, k: usize) -> f64 {
    sufficient_spread(d, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::SensorAssignment;
    use antennae_geometry::PI;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn regular_polygon(apex: Point, d: usize, radius: f64) -> Vec<Point> {
        (0..d)
            .map(|i| {
                let theta = TAU * i as f64 / d as f64;
                Point::new(apex.x + radius * theta.cos(), apex.y + radius * theta.sin())
            })
            .collect()
    }

    fn assert_all_covered(apex: &Point, neighbors: &[Point], antennas: &[Antenna]) {
        let assignment = SensorAssignment::new(antennas.to_vec());
        for t in neighbors {
            assert!(
                assignment.covers(apex, t),
                "target {t} not covered (apex {apex})"
            );
        }
    }

    #[test]
    fn empty_and_zero_k_yield_no_antennas() {
        assert!(orient_node(&Point::ORIGIN, &[], 2).is_empty());
        assert!(orient_node(&Point::ORIGIN, &[Point::new(1.0, 0.0)], 0).is_empty());
    }

    #[test]
    fn k_at_least_degree_uses_dedicated_beams() {
        let apex = Point::ORIGIN;
        let neighbors = regular_polygon(apex, 3, 1.0);
        let antennas = orient_node(&apex, &neighbors, 5);
        assert_eq!(antennas.len(), 3);
        assert!(antennas.iter().all(|a| a.spread == 0.0));
        assert_all_covered(&apex, &neighbors, &antennas);
    }

    #[test]
    fn regular_pentagon_with_two_antennas_matches_lemma_bound() {
        let apex = Point::ORIGIN;
        let d = 5;
        let k = 2;
        let neighbors = regular_polygon(apex, d, 1.0);
        let antennas = orient_node(&apex, &neighbors, k);
        assert_eq!(antennas.len(), k);
        assert_all_covered(&apex, &neighbors, &antennas);
        let spread: f64 = antennas.iter().map(|a| a.spread).sum();
        let bound = sufficient_spread(d, k);
        assert!(
            spread <= bound + 1e-9,
            "spread {spread} exceeds Lemma 1 bound {bound}"
        );
        // On the regular polygon the bound is tight.
        assert!((spread - bound).abs() < 1e-9);
    }

    #[test]
    fn spread_respects_bound_for_every_d_k_combination() {
        let apex = Point::new(3.0, -2.0);
        for d in 1..=6 {
            let neighbors = regular_polygon(apex, d, 2.5);
            for k in 1..=d {
                let antennas = orient_node(&apex, &neighbors, k);
                assert!(antennas.len() <= k.max(d.min(k)));
                assert_all_covered(&apex, &neighbors, &antennas);
                let spread: f64 = antennas.iter().map(|a| a.spread).sum();
                assert!(
                    spread <= sufficient_spread(d, k) + 1e-9,
                    "d={d} k={k}: spread {spread} > bound {}",
                    sufficient_spread(d, k)
                );
            }
        }
    }

    #[test]
    fn coincident_and_collinear_neighbors_get_one_beam_within_budget() {
        // Regression (churn experiments): a sensor whose neighbours all
        // coincide with it used to receive a full-circle antenna (spread 2π)
        // because the circular gaps carry no angular mass.  The degenerate
        // path must stay within the Lemma 1 spread bound.
        let apex = Point::new(2.0, 3.0);
        let coincident = vec![apex, apex, apex];
        for k in 1..=2 {
            let antennas = orient_node(&apex, &coincident, k);
            let spread: f64 = antennas.iter().map(|a| a.spread).sum();
            assert!(spread <= sufficient_spread(3, k) + 1e-9, "k={k}: {spread}");
            assert_all_covered(&apex, &coincident, &antennas);
        }
        // Same-direction collinear neighbours: one beam of sufficient range.
        let collinear = vec![
            Point::new(3.0, 3.0),
            Point::new(5.0, 3.0),
            Point::new(9.0, 3.0),
        ];
        let antennas = orient_node(&apex, &collinear, 2);
        assert_eq!(antennas.len(), 1);
        assert_eq!(antennas[0].spread, 0.0);
        assert!((antennas[0].radius - 7.0).abs() < 1e-12);
        assert_all_covered(&apex, &collinear, &antennas);
        // Mixed: a coincident duplicate plus real neighbours still goes down
        // the regular windowing path and stays within budget.
        let mixed = vec![apex, Point::new(3.0, 3.0), Point::new(2.0, 5.0)];
        let antennas = orient_node(&apex, &mixed, 2);
        let spread: f64 = antennas.iter().map(|a| a.spread).sum();
        assert!(spread <= sufficient_spread(3, 2) + 1e-9);
        assert_all_covered(&apex, &mixed, &antennas);
    }

    #[test]
    fn radii_are_no_larger_than_farthest_neighbor() {
        let apex = Point::ORIGIN;
        let neighbors = vec![
            Point::new(1.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(-1.5, 0.0),
            Point::new(0.0, -0.5),
        ];
        let far = neighbors
            .iter()
            .map(|p| apex.distance(p))
            .fold(0.0, f64::max);
        for k in 1..=4 {
            let antennas = orient_node(&apex, &neighbors, k);
            assert_all_covered(&apex, &neighbors, &antennas);
            for a in &antennas {
                assert!(a.radius <= far + 1e-12);
            }
        }
    }

    #[test]
    fn necessity_value_matches_sufficiency_on_regular_polygon() {
        for d in 1..=5 {
            for k in 1..=d {
                assert_eq!(
                    necessary_spread_regular_polygon(d, k),
                    sufficient_spread(d, k)
                );
            }
        }
        assert!((sufficient_spread(5, 1) - 8.0 * PI / 5.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn prop_all_neighbors_covered_and_spread_bounded(
            seed in 0u64..1000,
            d in 1usize..6,
            k in 1usize..6,
        ) {
            let k = k.min(d);
            let mut rng = StdRng::seed_from_u64(seed);
            let apex = Point::new(rng.random_range(-5.0..5.0), rng.random_range(-5.0..5.0));
            let neighbors: Vec<Point> = (0..d)
                .map(|_| {
                    let theta: f64 = rng.random_range(0.0..TAU);
                    let r: f64 = rng.random_range(0.1..3.0);
                    Point::new(apex.x + r * theta.cos(), apex.y + r * theta.sin())
                })
                .collect();
            let antennas = orient_node(&apex, &neighbors, k);
            let assignment = SensorAssignment::new(antennas.clone());
            for t in &neighbors {
                prop_assert!(assignment.covers(&apex, t));
            }
            prop_assert!(antennas.len() <= k.max(1));
            let spread: f64 = antennas.iter().map(|a| a.spread).sum();
            prop_assert!(spread <= sufficient_spread(d, k) + 1e-6);
        }
    }
}
