//! Dynamic instances: incremental edits with solver and verifier reuse.
//!
//! Every other entry point in this crate assumes a *static* deployment; the
//! paper's target — ad-hoc sensor networks — is defined by churn.  This
//! module is the dynamic front door:
//!
//! * [`DynamicInstance`] wraps the incrementally maintained degree-5
//!   Euclidean MST ([`antennae_graph::dynamic::DynamicEmst`]: buffered
//!   kd-tree edits, Kruskal-merge inserts, localized Borůvka removal
//!   repair) and materializes a regular [`Instance`] on demand — live slots
//!   in ascending order, the maintained tree handed over without a rebuild.
//! * [`DynamicSolverSession`] owns a dynamic instance plus one budget and
//!   keeps the orientation scheme, the induced digraph and the verification
//!   verdict continuously up to date across edits — one at a time through
//!   [`DynamicSolverSession::apply`], or as a coalesced burst through
//!   [`DynamicSolverSession::apply_coalesced`], which pays the repair once
//!   for the whole batch (the substrate under the deployment server's
//!   edit-stream batching).  When the budget admits
//!   the Theorem 2 construction (whose per-vertex Lemma 1 orientation is
//!   purely local), re-orientation touches only the sensors whose tree
//!   neighborhood changed; the induced digraph is repaired row-wise (dirty
//!   rows = re-oriented sensors plus every sensor whose coverage ball
//!   contains an edited location, found through the shared spatial index);
//!   strong connectivity is then re-checked on the repaired CSR.
//!
//! The correctness story mirrors the earlier engines: the dynamic path is a
//! *different route to the same values*.  After every edit, the maintained
//! MST has the same weight and `lmax` as a from-scratch build, the scheme
//! equals a full re-orientation on the materialized instance, the digraph
//! equals the verification engine's from-scratch construction, and the
//! report equals a fresh [`crate::verify::verify_with_budget`] — all pinned
//! by the edit-script oracle suite in `tests/dynamic_oracle.rs`.

use crate::algorithms::lemma1::orient_node;
use crate::algorithms::AlgorithmKind;
use crate::antenna::{AntennaBudget, SensorAssignment};
use crate::bounds::{radius_over_lmax, SPREAD_EPS};
use crate::error::OrientError;
use crate::instance::Instance;
use crate::scheme::OrientationScheme;
use crate::shard::ShardSpec;
use crate::solver::{Orienter, SelectionPolicy, Solver, Theorem2Orienter};
use crate::verify::{VerificationReport, Violation};
use antennae_geometry::{Point, EPS};
use antennae_graph::dynamic::{DynamicEmst, DynamicEmstError};
use antennae_graph::{DiGraph, TraversalScratch};

/// Stable identifier of a sensor inside a [`DynamicInstance`].
///
/// Ids are assigned monotonically by [`DynamicInstance::insert`] (the
/// initial deployment gets `0..n`) and never reused; a removed id stays dead
/// forever.  Ids are *not* the indices of the materialized [`Instance`] —
/// the dense index of a live id is its rank among the live ids.
pub type SensorId = usize;

fn map_emst_error(e: DynamicEmstError) -> OrientError {
    match e {
        DynamicEmstError::UnknownSlot(id) => OrientError::UnknownSensor { id },
    }
}

/// A sensor deployment under churn: accepts insert/remove/move edits while
/// incrementally maintaining the kd-tree, the Euclidean MST and `lmax`, and
/// the cached materialized [`Instance`] (with its lazily rooted tree).
///
/// # Examples
///
/// ```
/// use antennae_core::dynamic::DynamicInstance;
/// use antennae_geometry::Point;
///
/// let mut deployment = DynamicInstance::new(&[
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(2.0, 0.0),
/// ])?;
/// let id = deployment.insert(Point::new(3.0, 0.0));
/// deployment.move_sensor(id, Point::new(3.0, 1.0))?;
/// deployment.remove(0)?;
/// assert_eq!(deployment.len(), 3);
/// // The materialized instance is a regular `Instance` over the live set.
/// assert_eq!(deployment.instance()?.len(), 3);
/// # Ok::<(), antennae_core::error::OrientError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicInstance {
    emst: DynamicEmst,
    /// Materialized dense instance (invalidated by every edit).
    cache: Option<Instance>,
}

impl DynamicInstance {
    /// Builds a dynamic instance over an initial deployment; sensor `i` of
    /// `points` gets id `i`.
    ///
    /// An empty `points` slice is allowed: the deployment starts with zero
    /// live sensors and grows through [`DynamicInstance::insert`] — the shape
    /// a deployment server needs when a tenant is registered before its
    /// first sensor arrives.  (Only [`DynamicInstance::instance`] requires a
    /// non-empty live set, because a static [`Instance`] cannot be empty.)
    pub fn new(points: &[Point]) -> Result<Self, OrientError> {
        let emst =
            DynamicEmst::new(points).map_err(|e| OrientError::MstConstruction(e.to_string()))?;
        Ok(DynamicInstance { emst, cache: None })
    }

    /// Builds a dynamic instance whose spatial substrate is **sharded** per
    /// `spec`: the initial MST comes from the parallel per-tile build with
    /// exact boundary stitching, and subsequent edits route to the owning
    /// tile (bounded-star attach, tile-local index maintenance) — bit-exact,
    /// edit-for-edit, to the unsharded engine (see [`crate::shard`]).
    ///
    /// Specs that do not resolve for this deployment ([`ShardSpec::Off`],
    /// [`ShardSpec::Auto`] below its size threshold, degenerate bounding
    /// boxes — including the empty deployment) fall back to
    /// [`DynamicInstance::new`].
    pub fn new_sharded(points: &[Point], spec: ShardSpec) -> Result<Self, OrientError> {
        match spec.resolve(points) {
            None => Self::new(points),
            Some(grid) => {
                let (emst, _stats) =
                    DynamicEmst::new_tiled(points, grid, crate::parallel::default_threads())
                        .map_err(|e| OrientError::MstConstruction(e.to_string()))?;
                Ok(DynamicInstance { emst, cache: None })
            }
        }
    }

    /// The shard grid backing this instance as `(tiles_x, tiles_y)`, `None`
    /// when the instance runs on the global (unsharded) engine.
    pub fn shard_grid(&self) -> Option<(usize, usize)> {
        self.emst.tile_grid().map(|g| (g.tiles_x(), g.tiles_y()))
    }

    /// Occupied (non-empty) tiles of a sharded instance, `None` when
    /// unsharded.
    pub fn shard_occupied(&self) -> Option<usize> {
        self.emst.occupied_tiles()
    }

    /// Re-resolves `spec` against the **current** live deployment and swaps
    /// the spatial index accordingly; returns `true` when the instance is
    /// sharded afterwards.  The maintained tree and all ids are untouched —
    /// both index variants answer queries bit-identically — so this is safe
    /// at any point in an instance's life.  The deployment server applies
    /// the configured spec here after crash recovery (replay starts from an
    /// empty, hence global, engine).
    pub fn apply_shard_spec(&mut self, spec: ShardSpec) -> bool {
        let grid = spec.resolve(&self.emst.live_points());
        let sharded = grid.is_some();
        self.emst.set_tile_grid(grid);
        sharded
    }

    /// A dynamic instance with zero live sensors (grow it with
    /// [`DynamicInstance::insert`]).
    pub fn empty() -> Self {
        Self::new(&[]).expect("building an empty dynamic instance cannot fail")
    }

    /// Number of live sensors.
    pub fn len(&self) -> usize {
        self.emst.live_count()
    }

    /// Returns `true` when no sensor is live (a freshly created empty
    /// deployment, or one drained to zero by removals).
    pub fn is_empty(&self) -> bool {
        self.emst.live_count() == 0
    }

    /// The id the next [`DynamicInstance::insert`] will assign.  Ids are
    /// monotone and never reused, so this also bounds every id ever handed
    /// out — the deployment server's edit validator projects id assignment
    /// from it without mutating the instance.
    pub fn next_id(&self) -> SensorId {
        self.emst.slot_bound()
    }

    /// Returns `true` when `id` names a live sensor.
    pub fn is_alive(&self, id: SensorId) -> bool {
        self.emst.is_alive(id)
    }

    /// The live sensor ids in ascending order (the materialized instance's
    /// dense index order).
    pub fn ids(&self) -> Vec<SensorId> {
        self.emst.live_slots()
    }

    /// The location of a live sensor.
    pub fn point(&self, id: SensorId) -> Result<Point, OrientError> {
        if !self.emst.is_alive(id) {
            return Err(OrientError::UnknownSensor { id });
        }
        Ok(self.emst.point(id))
    }

    /// The longest MST edge over the live deployment.
    pub fn lmax(&self) -> f64 {
        self.emst.lmax()
    }

    /// Total weight of the maintained MST.
    pub fn mst_total_weight(&self) -> f64 {
        self.emst.total_weight()
    }

    /// Ids whose MST neighborhood changed in the most recent edit.
    pub fn changed_ids(&self) -> &[SensorId] {
        self.emst.changed_slots()
    }

    /// The underlying incremental MST engine (spatial index included).
    pub fn emst(&self) -> &DynamicEmst {
        &self.emst
    }

    /// Inserts a sensor, returning its id.
    pub fn insert(&mut self, p: Point) -> SensorId {
        self.cache = None;
        self.emst.insert(p)
    }

    /// Removes a live sensor.  Draining to zero is allowed; the deployment
    /// can be regrown with [`DynamicInstance::insert`] afterwards.
    pub fn remove(&mut self, id: SensorId) -> Result<(), OrientError> {
        self.cache = None;
        self.emst.remove(id).map_err(map_emst_error)
    }

    /// Moves a live sensor to a new location (id is preserved).
    pub fn move_sensor(&mut self, id: SensorId, p: Point) -> Result<(), OrientError> {
        self.cache = None;
        self.emst.move_to(id, p).map_err(map_emst_error)
    }

    /// Materializes (and caches) the live deployment as a regular
    /// [`Instance`]: live ids ascending, the maintained MST handed over
    /// without a rebuild, the rooted view re-derived lazily as usual.
    ///
    /// Errors with [`OrientError::EmptyInstance`] when no sensor is live —
    /// a static [`Instance`] cannot be empty, so an empty deployment has no
    /// materialization (its scheme/digraph/report are trivially empty, as
    /// [`DynamicSolverSession`] defines them).
    pub fn instance(&mut self) -> Result<&Instance, OrientError> {
        if self.is_empty() {
            return Err(OrientError::EmptyInstance);
        }
        if self.cache.is_none() {
            let mst = self
                .emst
                .materialize()
                .map_err(|e| OrientError::MstConstruction(e.to_string()))?;
            let points = mst.points().to_vec();
            self.cache = Some(Instance::from_prebuilt(points, mst));
        }
        Ok(self.cache.as_ref().expect("cache was just filled"))
    }
}

/// One edit applied to a [`DynamicSolverSession`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Edit {
    /// A sensor arrives at the given location.
    Insert(Point),
    /// The sensor with the given id fails.
    Remove(SensorId),
    /// The sensor with the given id moves to the given location.
    Move(SensorId, Point),
}

/// What one [`DynamicSolverSession::apply_coalesced`] did: the refreshed
/// verdict plus the incrementality counters the deployment server's
/// per-tenant stats record.
///
/// A coalesced batch pays the orientation/digraph repair **once** for the
/// whole burst: `mst_changed` and `rows_recomputed` count the union of the
/// per-edit dirty sets, not their sum.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// How many edits the batch applied.
    pub applied: usize,
    /// Ids assigned to the batch's inserts, in edit order.
    pub inserted_ids: Vec<SensorId>,
    /// The construction that produced the current scheme.
    pub algorithm: AlgorithmKind,
    /// Whether re-orientation took the incremental per-vertex path (`false`
    /// means a full solve on the materialized instance).
    pub incremental_orientation: bool,
    /// Sensors whose MST neighborhood changed across the batch (union).
    pub mst_changed: usize,
    /// Induced-digraph rows recomputed by the verification repair (union).
    pub rows_recomputed: usize,
    /// The verification verdict for the refreshed scheme under the
    /// session's budget.
    pub report: VerificationReport,
    /// The refreshed scheme's measured max radius in units of `lmax`.
    pub measured_radius_over_lmax: f64,
}

/// What one [`DynamicSolverSession::apply`] did: the refreshed verdict plus
/// the incrementality counters the churn experiment records.
#[derive(Debug, Clone, PartialEq)]
pub struct EditOutcome {
    /// The id the edit referenced (the fresh id for an insert).
    pub id: SensorId,
    /// The construction that produced the current scheme.
    pub algorithm: AlgorithmKind,
    /// Whether re-orientation took the incremental per-vertex path (`false`
    /// means a full solve on the materialized instance).
    pub incremental_orientation: bool,
    /// Sensors whose MST neighborhood changed (and were re-oriented on the
    /// incremental path).
    pub mst_changed: usize,
    /// Induced-digraph rows recomputed by the verification repair.
    pub rows_recomputed: usize,
    /// The verification verdict for the refreshed scheme under the
    /// session's budget.
    pub report: VerificationReport,
    /// The refreshed scheme's measured max radius in units of `lmax`.
    pub measured_radius_over_lmax: f64,
}

/// A solver+verifier session over a [`DynamicInstance`]: one budget, a
/// continuously maintained orientation scheme, induced digraph and
/// verification verdict.
///
/// When the budget admits Theorem 2 (`φ_k ≥ 2π(5−k)/5` — exactly the regime
/// where the registry's best guarantee *is* Theorem 2), the session
/// re-orients incrementally: only sensors whose MST neighborhood changed get
/// a fresh per-vertex Lemma 1 orientation, and only digraph rows that could
/// have changed are recomputed.  Other budgets fall back to a full
/// [`Solver`] run per edit, still reusing the incrementally maintained MST
/// substrate and spatial index.
///
/// # Examples
///
/// ```
/// use antennae_core::antenna::AntennaBudget;
/// use antennae_core::bounds::theorem2_spread_threshold;
/// use antennae_core::dynamic::{DynamicInstance, DynamicSolverSession, Edit};
/// use antennae_geometry::Point;
///
/// let deployment = DynamicInstance::new(&[
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.1),
///     Point::new(2.0, 0.3),
///     Point::new(1.1, 1.2),
/// ])?;
/// let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
/// let mut session = DynamicSolverSession::new(deployment, budget)?;
/// assert!(session.report().is_valid());
///
/// let outcome = session.apply(Edit::Insert(Point::new(0.5, 0.8)))?;
/// assert!(outcome.incremental_orientation);
/// assert!(outcome.report.is_strongly_connected);
/// # Ok::<(), antennae_core::error::OrientError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicSolverSession {
    inst: DynamicInstance,
    budget: AntennaBudget,
    /// `true` when the session runs the incremental Theorem 2 path.
    incremental: bool,
    algorithm: AlgorithmKind,
    /// Per-id assignments (dead ids hold empty assignments).
    assignments: Vec<SensorAssignment>,
    /// Per-id induced-digraph rows, targets in id space, ascending.
    rows: Vec<Vec<u32>>,
    /// Largest antenna radius across all live assignments.
    max_radius: f64,
    /// Dense scheme mirror of `assignments`, rebuilt lazily on access (the
    /// verdict no longer needs it — see `dense_dirty`).
    scheme: OrientationScheme,
    /// Dense digraph mirror of `rows`, rebuilt lazily on access.
    digraph: DiGraph,
    report: VerificationReport,
    /// `true` when `scheme`/`digraph` are stale relative to the id-space
    /// state; [`DynamicSolverSession::ensure_dense`] clears it.
    dense_dirty: bool,
    /// Scratch buffers for the row queries (allocation-free steady state).
    scratch: Vec<usize>,
    row_buf: Vec<usize>,
    /// Tarjan scratch for the per-edit connectivity re-check.
    scc_scratch: TraversalScratch,
}

impl DynamicSolverSession {
    /// Opens a session: solves and verifies the initial deployment under
    /// `budget` and keeps the state warm for [`DynamicSolverSession::apply`].
    pub fn new(inst: DynamicInstance, budget: AntennaBudget) -> Result<Self, OrientError> {
        let incremental = Theorem2Orienter.applicability(&budget).is_some();
        let mut session = DynamicSolverSession {
            inst,
            budget,
            incremental,
            algorithm: AlgorithmKind::Theorem2,
            assignments: Vec::new(),
            rows: Vec::new(),
            max_radius: 0.0,
            scheme: OrientationScheme::empty(0),
            digraph: DiGraph::from_edges(0, &[]),
            report: VerificationReport {
                is_strongly_connected: true,
                scc_count: 0,
                edge_count: 0,
                max_radius: 0.0,
                max_radius_over_lmax: 0.0,
                max_spread_sum: 0.0,
                max_antenna_count: 0,
                violations: Vec::new(),
            },
            dense_dirty: false,
            scratch: Vec::new(),
            row_buf: Vec::new(),
            scc_scratch: TraversalScratch::default(),
        };
        session.reorient_full()?;
        let all: Vec<SensorId> = session.inst.ids();
        session.recompute_rows(&all);
        session.refresh_verdict()?;
        Ok(session)
    }

    /// The session's budget.
    pub fn budget(&self) -> AntennaBudget {
        self.budget
    }

    /// Returns `true` when the session re-orients incrementally (Theorem 2
    /// regime).
    pub fn is_incremental(&self) -> bool {
        self.incremental
    }

    /// The construction that produced the current scheme.
    pub fn algorithm(&self) -> AlgorithmKind {
        self.algorithm
    }

    /// The dynamic instance (read-only; edits go through
    /// [`DynamicSolverSession::apply`] so the cached state stays in sync).
    pub fn instance(&self) -> &DynamicInstance {
        &self.inst
    }

    /// Applies a shard spec to the underlying instance (see
    /// [`DynamicInstance::apply_shard_spec`]); the session's scheme, digraph
    /// and report are untouched because both index variants answer every
    /// query bit-identically.  Returns `true` when sharded afterwards.
    pub fn set_shard_spec(&mut self, spec: crate::shard::ShardSpec) -> bool {
        self.inst.apply_shard_spec(spec)
    }

    /// The materialized static instance for the current live deployment.
    pub fn materialized(&mut self) -> Result<&Instance, OrientError> {
        self.inst.instance()
    }

    /// The current orientation scheme (dense, aligned with
    /// [`DynamicSolverSession::materialized`]).
    ///
    /// Takes `&mut self`: the dense mirror is rebuilt lazily from the
    /// id-space state — the per-edit repair maintains assignments and rows
    /// in id space only, so steady-state edits never pay the O(n) dense
    /// projection unless someone asks for it.
    pub fn scheme(&mut self) -> &OrientationScheme {
        self.ensure_dense();
        &self.scheme
    }

    /// The current induced communication digraph (dense); lazily rebuilt
    /// like [`DynamicSolverSession::scheme`].
    pub fn digraph(&mut self) -> &DiGraph {
        self.ensure_dense();
        &self.digraph
    }

    /// The current verification verdict.
    pub fn report(&self) -> &VerificationReport {
        &self.report
    }

    /// Applies one edit: updates the MST substrate, re-orients (incrementally
    /// in the Theorem 2 regime), repairs the induced digraph row-wise and
    /// re-checks strong connectivity.
    ///
    /// Removing the last live sensor is allowed: the session drains to the
    /// empty deployment (empty scheme and digraph, trivially valid report)
    /// and can be regrown with inserts.
    pub fn apply(&mut self, edit: Edit) -> Result<EditOutcome, OrientError> {
        let outcome = self.apply_coalesced(std::slice::from_ref(&edit))?;
        let id = match edit {
            Edit::Insert(_) => outcome.inserted_ids[0],
            Edit::Remove(id) | Edit::Move(id, _) => id,
        };
        Ok(EditOutcome {
            id,
            algorithm: outcome.algorithm,
            incremental_orientation: outcome.incremental_orientation,
            mst_changed: outcome.mst_changed,
            rows_recomputed: outcome.rows_recomputed,
            report: outcome.report,
            measured_radius_over_lmax: outcome.measured_radius_over_lmax,
        })
    }

    /// Validates `edits` against a *projected* live set (ids are monotone,
    /// so insert ids are predictable) without touching any state.  Returns
    /// the ids the batch's inserts will be assigned.
    fn validate_edits(&self, edits: &[Edit]) -> Result<Vec<SensorId>, OrientError> {
        // Single-edit batches (the server's common case) need no projected
        // live table: ids are monotone, so the one insert gets `next_id`,
        // and a remove/move only needs its id to be live right now.
        if let [edit] = edits {
            return match *edit {
                Edit::Insert(_) => Ok(vec![self.inst.next_id()]),
                Edit::Remove(id) | Edit::Move(id, _) => {
                    if self.inst.is_alive(id) {
                        Ok(Vec::new())
                    } else {
                        Err(OrientError::UnknownSensor { id })
                    }
                }
            };
        }
        let mut alive = vec![false; self.inst.next_id()];
        for id in self.inst.ids() {
            alive[id] = true;
        }
        let mut inserted = Vec::new();
        for edit in edits {
            match *edit {
                Edit::Insert(_) => {
                    inserted.push(alive.len());
                    alive.push(true);
                }
                Edit::Remove(id) => {
                    if !alive.get(id).copied().unwrap_or(false) {
                        return Err(OrientError::UnknownSensor { id });
                    }
                    alive[id] = false;
                }
                Edit::Move(id, _) => {
                    if !alive.get(id).copied().unwrap_or(false) {
                        return Err(OrientError::UnknownSensor { id });
                    }
                }
            }
        }
        Ok(inserted)
    }

    /// Applies a **burst of edits with one repair**: every edit updates the
    /// MST substrate immediately, but re-orientation, the row-wise digraph
    /// repair and the connectivity re-check run once over the *union* of the
    /// per-edit dirty sets — the batching layer the deployment server's
    /// edit-stream coalescing sits on.
    ///
    /// The result is exactly the state that applying the edits one at a time
    /// produces (pinned by the coalescing oracle in `tests/dynamic_oracle.rs`):
    /// per-vertex orientation depends only on the final MST neighborhood, and
    /// a row can differ from its pre-batch value only when its sensor was
    /// re-oriented or some edited location lies inside its coverage ball —
    /// both captured by the accumulated dirty set, with the reverse-radius
    /// query widened to the larger of the pre- and post-batch max radius.
    ///
    /// The whole batch is validated against a projected live set before any
    /// state changes, so an invalid edit (unknown or dead id anywhere in the
    /// burst) rejects the batch atomically.
    pub fn apply_coalesced(&mut self, edits: &[Edit]) -> Result<BatchOutcome, OrientError> {
        let inserted_ids = self.validate_edits(edits)?;
        let old_max_radius = self.max_radius;

        // Apply every edit to the substrate, accumulating the union of the
        // per-edit changed neighborhoods and every edited location (the
        // reverse row-repair queries below need both old and new positions).
        let mut edited_positions: Vec<Point> = Vec::with_capacity(edits.len() + 1);
        let mut changed: Vec<SensorId> = Vec::new();
        let mut removed: Vec<SensorId> = Vec::new();
        for edit in edits {
            match *edit {
                Edit::Insert(p) => {
                    edited_positions.push(p);
                    self.inst.insert(p);
                }
                Edit::Remove(id) => {
                    edited_positions.push(self.inst.point(id)?);
                    self.inst.remove(id)?;
                    removed.push(id);
                }
                Edit::Move(id, p) => {
                    edited_positions.push(self.inst.point(id)?);
                    edited_positions.push(p);
                    self.inst.move_sensor(id, p)?;
                }
            }
            changed.extend_from_slice(self.inst.changed_ids());
        }
        changed.sort_unstable();
        changed.dedup();
        changed.retain(|&s| self.inst.is_alive(s));
        let mst_changed = changed.len();

        // Re-orient: dead ids lose their assignment and row, changed live
        // ids get a fresh per-vertex orientation (incremental path) or the
        // whole deployment is re-solved (fallback path).
        self.grow_id_tables();
        for &id in &removed {
            self.assignments[id] = SensorAssignment::empty();
            self.rows[id].clear();
        }
        let incremental_orientation = if self.incremental {
            for &slot in &changed {
                self.assignments[slot] = self.orient_one(slot);
            }
            self.refresh_max_radius();
            true
        } else {
            self.reorient_full()?;
            false
        };

        // Repair the induced digraph: dirty rows are the re-oriented sensors
        // plus every sensor whose coverage ball contains an edited location.
        let dirty: Vec<SensorId> = if incremental_orientation {
            let reverse_radius = self.max_radius.max(old_max_radius) + EPS;
            let mut dirty = changed;
            let mut hits = Vec::new();
            for p in &edited_positions {
                self.inst.emst().within_radius_with(
                    p,
                    reverse_radius,
                    &mut self.scratch,
                    &mut hits,
                );
                dirty.extend_from_slice(&hits);
            }
            dirty.sort_unstable();
            dirty.dedup();
            dirty.retain(|&s| self.inst.is_alive(s));
            dirty
        } else {
            self.inst.ids()
        };
        self.recompute_rows(&dirty);
        self.refresh_verdict()?;

        Ok(BatchOutcome {
            applied: edits.len(),
            inserted_ids,
            algorithm: self.algorithm,
            incremental_orientation,
            mst_changed,
            rows_recomputed: dirty.len(),
            report: self.report.clone(),
            measured_radius_over_lmax: self.report.max_radius_over_lmax,
        })
    }

    /// Rebuilds a session from a durable image: a sparse `base` live set
    /// (original ids, strictly ascending, below the `next_id` horizon) plus
    /// a `tail` of logged-but-uncompacted edits — the shape a write-ahead
    /// log hands recovery.
    ///
    /// Ids are monotone and never reused, so the sparse id space is
    /// reconstructed on an empty session by inserting a sensor for **every**
    /// id below the horizon (placeholders at the dead slots), removing the
    /// placeholders, and appending the tail — all through **one**
    /// [`DynamicSolverSession::apply_coalesced`] repair.  By the coalescing
    /// and incremental-vs-fresh oracles (`tests/dynamic_oracle.rs`), the
    /// result is bit-equal (`f64::to_bits` on `lmax`/MST weights, exact
    /// scheme/digraph equality) to the session that lived through the
    /// original edit history, whatever its batch boundaries were.
    ///
    /// Fails with [`OrientError::Internal`] on a malformed base, or with the
    /// usual batch errors when the tail references ids the projected live
    /// set does not hold (a salvaged-but-inconsistent log).
    pub fn replay(
        budget: AntennaBudget,
        base: &[(SensorId, Point)],
        next_id: SensorId,
        tail: &[Edit],
    ) -> Result<Self, OrientError> {
        let mut prev: Option<SensorId> = None;
        for &(id, _) in base {
            if id >= next_id || prev.is_some_and(|p| p >= id) {
                return Err(OrientError::Internal(format!(
                    "replay base ids must be strictly ascending below the \
                     next_id horizon {next_id} (got {id})"
                )));
            }
            prev = Some(id);
        }
        let dead_count = next_id - base.len();
        let mut edits = Vec::with_capacity(next_id + dead_count + tail.len());
        let mut live = base.iter().peekable();
        let mut dead: Vec<SensorId> = Vec::with_capacity(dead_count);
        for id in 0..next_id {
            match live.peek() {
                Some(&&(lid, p)) if lid == id => {
                    live.next();
                    edits.push(Edit::Insert(p));
                }
                _ => {
                    dead.push(id);
                    edits.push(Edit::Insert(Point::new(0.0, 0.0)));
                }
            }
        }
        edits.extend(dead.into_iter().map(Edit::Remove));
        edits.extend_from_slice(tail);
        let mut session = DynamicSolverSession::new(DynamicInstance::empty(), budget)?;
        if !edits.is_empty() {
            session.apply_coalesced(&edits)?;
        }
        Ok(session)
    }

    /// Grows the per-id tables to cover freshly assigned ids (including ids
    /// inserted and removed again within one coalesced batch).
    fn grow_id_tables(&mut self) {
        let slots = self.inst.next_id().max(self.assignments.len());
        self.assignments.resize(slots, SensorAssignment::empty());
        self.rows.resize(slots, Vec::new());
    }

    /// The per-vertex Theorem 2 orientation of one live sensor: Lemma 1 over
    /// its current MST neighbours (ascending id order — the same neighbour
    /// order the materialized instance presents to a full re-orientation).
    fn orient_one(&self, id: SensorId) -> SensorAssignment {
        let apex = self.inst.emst().point(id);
        let neighbors: Vec<Point> = self
            .inst
            .emst()
            .neighbors(id)
            .iter()
            .map(|&(u, _)| self.inst.emst().point(u))
            .collect();
        SensorAssignment::new(orient_node(&apex, &neighbors, self.budget.k))
    }

    /// Full re-orientation: the incremental path rebuilds every per-vertex
    /// assignment (initial solve), the fallback path runs the policy solver
    /// on the materialized instance and scatters the dense scheme back into
    /// id space.
    fn reorient_full(&mut self) -> Result<(), OrientError> {
        self.grow_id_tables();
        for a in &mut self.assignments {
            *a = SensorAssignment::empty();
        }
        if self.inst.is_empty() {
            // Nothing to orient; the empty deployment has the empty scheme.
            self.max_radius = 0.0;
            return Ok(());
        }
        if self.incremental {
            self.algorithm = AlgorithmKind::Theorem2;
            for id in self.inst.ids() {
                self.assignments[id] = self.orient_one(id);
            }
        } else {
            let budget = self.budget;
            let outcome = {
                let instance = self.inst.instance()?;
                Solver::on(instance)
                    .with_budget(budget)
                    .policy(SelectionPolicy::BestGuarantee)
                    .run()?
            };
            self.algorithm = outcome.algorithm;
            for (dense, id) in self.inst.ids().into_iter().enumerate() {
                self.assignments[id] = outcome.scheme.assignments[dense].clone();
            }
        }
        self.refresh_max_radius();
        Ok(())
    }

    fn refresh_max_radius(&mut self) {
        let mut max_radius = 0.0f64;
        for id in 0..self.inst.next_id() {
            if self.inst.is_alive(id) {
                max_radius = f64::max(max_radius, self.assignments[id].max_radius());
            }
        }
        self.max_radius = max_radius;
    }

    /// Recomputes the induced-digraph rows of `ids` (live, id space): one
    /// bounded range query against the shared spatial index, then the exact
    /// sector filter — the same candidate-superset contract as the static
    /// verification engine, so the assembled rows are bit-identical to a
    /// from-scratch rebuild.
    fn recompute_rows(&mut self, ids: &[SensorId]) {
        self.grow_id_tables();
        for &u in ids {
            debug_assert!(self.inst.is_alive(u));
            let assignment = std::mem::take(&mut self.assignments[u]);
            let apex = self.inst.emst().point(u);
            self.inst.emst().within_radius_with(
                &apex,
                assignment.max_radius() + EPS,
                &mut self.scratch,
                &mut self.row_buf,
            );
            let row = &mut self.rows[u];
            row.clear();
            for &v in self.row_buf.iter() {
                if v != u && assignment.covers(&apex, &self.inst.emst().point(v)) {
                    row.push(v as u32);
                }
            }
            self.assignments[u] = assignment;
        }
    }

    /// Refreshes the verification verdict **directly from the id-space
    /// state** — no materialized [`Instance`], no dense scheme clone, no
    /// dense digraph rebuild (those are all Θ(n) per edit and dominated the
    /// repair once the MST surgery became local).
    ///
    /// The sparse computation is bit-equal to
    /// [`crate::verify::verify_with_budget`] on the dense mirrors, field by
    /// field, because each piece replicates the dense path exactly:
    ///
    /// - budget violations scan the live assignments in ascending id order —
    ///   precisely the dense index order of the materialized scheme — with
    ///   the same thresholds (`> budget.k`, `> budget.phi + SPREAD_EPS`);
    ///   `MissingAssignments` cannot fire (the session assigns every live
    ///   sensor by construction);
    /// - the scheme maxima use the same fold shapes as
    ///   [`OrientationScheme::max_radius`] / `max_spread_sum` (`f64::max`
    ///   from `0.0`) and `max_antenna_count` (`usize::max`);
    /// - component count and largest-component size come from the same
    ///   masked Tarjan kernel run over the id-space rows
    ///   ([`TraversalScratch::scc_summary_rows`]); both are graph
    ///   invariants, independent of vertex labelling;
    /// - `edge_count` sums live row lengths = the dense digraph's edge
    ///   count; `lmax` is the maintained MST's, which materialization hands
    ///   over bit-identically.
    ///
    /// The dense mirrors are just **marked stale** here; accessors rebuild
    /// them on demand (see [`DynamicSolverSession::ensure_dense`]).
    ///
    /// The empty deployment (zero live sensors) is **defined** to be valid:
    /// empty scheme, empty digraph, a report with zero components and no
    /// violations — strong connectivity holds vacuously.  There is no
    /// materialized [`Instance`] to verify against in that state.
    fn refresh_verdict(&mut self) -> Result<(), OrientError> {
        let live = self.inst.len();
        if live == 0 {
            self.scheme = OrientationScheme::empty(0);
            self.digraph = DiGraph::from_edges(0, &[]);
            self.report = VerificationReport {
                is_strongly_connected: true,
                scc_count: 0,
                edge_count: 0,
                max_radius: 0.0,
                max_radius_over_lmax: 0.0,
                max_spread_sum: 0.0,
                max_antenna_count: 0,
                violations: Vec::new(),
            };
            self.dense_dirty = false;
            return Ok(());
        }

        let mut violations = Vec::new();
        let mut max_radius = 0.0f64;
        let mut max_spread_sum = 0.0f64;
        let mut max_antenna_count = 0usize;
        let mut edge_count = 0usize;
        let mut dense = 0usize;
        for id in 0..self.inst.next_id() {
            if !self.inst.is_alive(id) {
                continue;
            }
            let assignment = &self.assignments[id];
            if assignment.antenna_count() > self.budget.k {
                violations.push(Violation::TooManyAntennas {
                    sensor: dense,
                    used: assignment.antenna_count(),
                    allowed: self.budget.k,
                });
            }
            if assignment.total_spread() > self.budget.phi + SPREAD_EPS {
                violations.push(Violation::SpreadExceeded {
                    sensor: dense,
                    used: assignment.total_spread(),
                    allowed: self.budget.phi,
                });
            }
            max_radius = f64::max(max_radius, assignment.max_radius());
            max_spread_sum = f64::max(max_spread_sum, assignment.total_spread());
            max_antenna_count = max_antenna_count.max(assignment.antenna_count());
            edge_count += self.rows[id].len();
            dense += 1;
        }
        debug_assert_eq!(dense, live, "live scan disagrees with live count");

        let inst = &self.inst;
        let summary = self
            .scc_scratch
            .scc_summary_rows(&self.rows, |v| inst.is_alive(v));
        let strongly_connected = live <= 1 || summary.count == 1;
        if !strongly_connected {
            violations.push(Violation::NotStronglyConnected {
                components: summary.count,
                largest_component: summary.largest,
            });
        }

        self.report = VerificationReport {
            is_strongly_connected: strongly_connected,
            scc_count: summary.count,
            edge_count,
            max_radius,
            max_radius_over_lmax: radius_over_lmax(max_radius, self.inst.lmax()),
            max_spread_sum,
            max_antenna_count,
            violations,
        };
        self.dense_dirty = true;
        Ok(())
    }

    /// Rebuilds the dense scheme + digraph mirrors from the id-space state
    /// when an accessor finds them stale.  Id → dense is monotone over
    /// ascending live ids, so the ascending id-space rows map to ascending
    /// dense rows — the digraph is bit-identical to the static engine's
    /// construction.
    fn ensure_dense(&mut self) {
        if !self.dense_dirty {
            return;
        }
        let ids = self.inst.ids();
        let assignments: Vec<SensorAssignment> =
            ids.iter().map(|&id| self.assignments[id].clone()).collect();
        self.scheme = OrientationScheme::new(assignments);
        let mut dense_of = vec![u32::MAX; ids.last().map_or(0, |&id| id + 1)];
        for (dense, &id) in ids.iter().enumerate() {
            dense_of[id] = dense as u32;
        }
        self.digraph = DiGraph::from_adjacency(
            ids.len(),
            ids.iter()
                .map(|&u| self.rows[u].iter().map(|&v| dense_of[v as usize] as usize)),
        );
        self.dense_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::theorem2_spread_threshold;
    use crate::verify::{verify_with_budget, DigraphStrategy, VerificationEngine};
    use antennae_geometry::PI;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect()
    }

    /// The session's scheme, digraph and report must equal the from-scratch
    /// static pipeline on the materialized instance.
    fn assert_matches_static(session: &mut DynamicSolverSession) {
        let budget = session.budget();
        let scheme = session.scheme().clone();
        let digraph = session.digraph().clone();
        let report = session.report().clone();
        let instance = session.materialized().unwrap().clone();
        let dense = VerificationEngine::new()
            .with_strategy(DigraphStrategy::Dense)
            .induced_digraph(instance.points(), &scheme);
        assert_eq!(digraph, dense, "digraph diverged from static rebuild");
        let fresh = verify_with_budget(&instance, &scheme, Some(budget));
        assert_eq!(report, fresh, "report diverged from static verify");
        if session.is_incremental() {
            let full = crate::algorithms::theorem2::orient_theorem2(&instance, budget.k).unwrap();
            assert_eq!(scheme, full, "incremental scheme diverged from full orient");
        }
    }

    #[test]
    fn incremental_session_tracks_static_pipeline() {
        let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
        let inst = DynamicInstance::new(&random_points(40, 1)).unwrap();
        let mut session = DynamicSolverSession::new(inst, budget).unwrap();
        assert!(session.is_incremental());
        assert!(session.report().is_valid());
        assert_matches_static(&mut session);

        let mut rng = StdRng::seed_from_u64(7);
        for step in 0..30 {
            let edit = match step % 3 {
                0 => Edit::Insert(Point::new(
                    rng.random_range(0.0..10.0),
                    rng.random_range(0.0..10.0),
                )),
                1 => {
                    let ids = session.instance().ids();
                    Edit::Remove(ids[rng.random_range(0..ids.len())])
                }
                _ => {
                    let ids = session.instance().ids();
                    Edit::Move(
                        ids[rng.random_range(0..ids.len())],
                        Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)),
                    )
                }
            };
            let outcome = session.apply(edit).unwrap();
            assert!(outcome.incremental_orientation);
            assert_eq!(outcome.algorithm, AlgorithmKind::Theorem2);
            assert!(
                outcome.report.is_valid(),
                "step {step}: {:?}",
                outcome.report
            );
            assert_matches_static(&mut session);
        }
    }

    #[test]
    fn incremental_edits_touch_few_rows_on_a_path() {
        // A long path: one interior move must not re-verify the far ends.
        let pts: Vec<Point> = (0..200).map(|i| Point::new(i as f64, 0.0)).collect();
        let inst = DynamicInstance::new(&pts).unwrap();
        let budget = AntennaBudget::new(3, theorem2_spread_threshold(3));
        let mut session = DynamicSolverSession::new(inst, budget).unwrap();
        let outcome = session
            .apply(Edit::Move(100, Point::new(100.0, 0.2)))
            .unwrap();
        assert!(outcome.incremental_orientation);
        assert!(
            outcome.rows_recomputed < 20,
            "rows_recomputed = {} is not local",
            outcome.rows_recomputed
        );
        assert!(outcome.report.is_valid());
        assert_matches_static(&mut session);
    }

    #[test]
    fn fallback_session_uses_the_policy_solver() {
        // (2, π) admits Theorem 3 but not Theorem 2 → full-solve fallback.
        let inst = DynamicInstance::new(&random_points(25, 3)).unwrap();
        let mut session = DynamicSolverSession::new(inst, AntennaBudget::new(2, PI)).unwrap();
        assert!(!session.is_incremental());
        assert_eq!(session.report().violations, vec![]);
        assert_matches_static(&mut session);
        let outcome = session.apply(Edit::Insert(Point::new(5.0, 5.0))).unwrap();
        assert!(!outcome.incremental_orientation);
        assert_eq!(outcome.algorithm, AlgorithmKind::Theorem3);
        assert!(outcome.report.is_valid());
        assert_matches_static(&mut session);
    }

    #[test]
    fn drain_to_one_sensor_and_regrow() {
        let inst = DynamicInstance::new(&random_points(6, 4)).unwrap();
        let budget = AntennaBudget::new(1, theorem2_spread_threshold(1));
        let mut session = DynamicSolverSession::new(inst, budget).unwrap();
        while session.instance().len() > 1 {
            let victim = session.instance().ids()[0];
            let outcome = session.apply(Edit::Remove(victim)).unwrap();
            assert!(outcome.report.is_valid());
            assert_matches_static(&mut session);
        }
        // A single live sensor is trivially strongly connected…
        assert!(session.report().is_strongly_connected);
        assert_eq!(session.instance().lmax(), 0.0);
        // …and removing the last one drains the session to the (defined to
        // be valid) empty deployment.
        let last = session.instance().ids()[0];
        let drained = session.apply(Edit::Remove(last)).unwrap();
        assert!(drained.report.is_valid());
        assert!(drained.report.is_strongly_connected);
        assert_eq!(drained.report.scc_count, 0);
        assert_eq!(session.instance().len(), 0);
        assert_eq!(session.scheme().len(), 0);
        assert!(matches!(
            session.materialized(),
            Err(OrientError::EmptyInstance)
        ));
        // Edits on the empty deployment keep rejecting dead ids.
        assert!(matches!(
            session.apply(Edit::Remove(last)),
            Err(OrientError::UnknownSensor { .. })
        ));
        // Regrowing works.
        let outcome = session.apply(Edit::Insert(Point::new(1.0, 2.0))).unwrap();
        assert!(outcome.report.is_valid());
        assert_matches_static(&mut session);
    }

    #[test]
    fn empty_session_grows_from_nothing() {
        let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
        let mut session = DynamicSolverSession::new(DynamicInstance::empty(), budget).unwrap();
        assert!(session.report().is_valid());
        assert_eq!(session.instance().len(), 0);
        assert_eq!(session.instance().next_id(), 0);
        for i in 0..6 {
            let p = Point::new(i as f64, (i * i % 3) as f64);
            let outcome = session.apply(Edit::Insert(p)).unwrap();
            assert_eq!(outcome.id, i);
            assert!(outcome.report.is_valid());
            assert_matches_static(&mut session);
        }
    }

    #[test]
    fn coalesced_batch_equals_one_at_a_time() {
        let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
        let points = random_points(30, 8);
        let edits = vec![
            Edit::Insert(Point::new(2.5, 2.5)),
            Edit::Move(3, Point::new(9.0, 1.0)),
            Edit::Remove(7),
            Edit::Insert(Point::new(4.0, 8.0)),
            Edit::Move(30, Point::new(0.5, 0.5)), // the first insert's id
            Edit::Remove(31),                     // the second insert's id
        ];

        let mut batched =
            DynamicSolverSession::new(DynamicInstance::new(&points).unwrap(), budget).unwrap();
        let outcome = batched.apply_coalesced(&edits).unwrap();
        assert_eq!(outcome.applied, edits.len());
        assert_eq!(outcome.inserted_ids, vec![30, 31]);

        let mut serial =
            DynamicSolverSession::new(DynamicInstance::new(&points).unwrap(), budget).unwrap();
        for &edit in &edits {
            serial.apply(edit).unwrap();
        }

        assert_eq!(batched.scheme(), serial.scheme());
        assert_eq!(batched.digraph(), serial.digraph());
        assert_eq!(batched.report(), serial.report());
        assert_matches_static(&mut batched);
    }

    #[test]
    fn invalid_batch_is_rejected_atomically() {
        let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
        let points = random_points(10, 9);
        let mut session =
            DynamicSolverSession::new(DynamicInstance::new(&points).unwrap(), budget).unwrap();
        let before_scheme = session.scheme().clone();
        let before_len = session.instance().len();
        // The remove of id 4 is fine, but the later move of the same id must
        // reject the whole batch before any state changes.
        let err = session
            .apply_coalesced(&[
                Edit::Insert(Point::new(1.0, 1.0)),
                Edit::Remove(4),
                Edit::Move(4, Point::new(2.0, 2.0)),
            ])
            .unwrap_err();
        assert!(matches!(err, OrientError::UnknownSensor { id: 4 }));
        assert_eq!(session.instance().len(), before_len);
        assert_eq!(session.scheme(), &before_scheme);
        assert_matches_static(&mut session);
    }

    #[test]
    fn dead_ids_are_rejected() {
        let inst = DynamicInstance::new(&random_points(5, 5)).unwrap();
        let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
        let mut session = DynamicSolverSession::new(inst, budget).unwrap();
        session.apply(Edit::Remove(2)).unwrap();
        assert!(matches!(
            session.apply(Edit::Remove(2)),
            Err(OrientError::UnknownSensor { id: 2 })
        ));
        assert!(matches!(
            session.apply(Edit::Move(2, Point::ORIGIN)),
            Err(OrientError::UnknownSensor { id: 2 })
        ));
        // The session state is still consistent after the rejected edits.
        assert_matches_static(&mut session);
    }

    #[test]
    fn duplicate_point_edits_stay_consistent() {
        let inst = DynamicInstance::new(&[Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap();
        let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
        let mut session = DynamicSolverSession::new(inst, budget).unwrap();
        let dup = session.apply(Edit::Insert(Point::new(1.0, 0.0))).unwrap();
        assert!(dup.report.is_valid());
        assert_matches_static(&mut session);
        let moved = session
            .apply(Edit::Move(dup.id, Point::new(0.0, 0.0)))
            .unwrap();
        assert!(moved.report.is_valid());
        assert_matches_static(&mut session);
    }
}
