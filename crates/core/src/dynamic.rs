//! Dynamic instances: incremental edits with solver and verifier reuse.
//!
//! Every other entry point in this crate assumes a *static* deployment; the
//! paper's target — ad-hoc sensor networks — is defined by churn.  This
//! module is the dynamic front door:
//!
//! * [`DynamicInstance`] wraps the incrementally maintained degree-5
//!   Euclidean MST ([`antennae_graph::dynamic::DynamicEmst`]: buffered
//!   kd-tree edits, Kruskal-merge inserts, localized Borůvka removal
//!   repair) and materializes a regular [`Instance`] on demand — live slots
//!   in ascending order, the maintained tree handed over without a rebuild.
//! * [`DynamicSolverSession`] owns a dynamic instance plus one budget and
//!   keeps the orientation scheme, the induced digraph and the verification
//!   verdict continuously up to date across edits.  When the budget admits
//!   the Theorem 2 construction (whose per-vertex Lemma 1 orientation is
//!   purely local), re-orientation touches only the sensors whose tree
//!   neighborhood changed; the induced digraph is repaired row-wise (dirty
//!   rows = re-oriented sensors plus every sensor whose coverage ball
//!   contains an edited location, found through the shared spatial index);
//!   strong connectivity is then re-checked on the repaired CSR.
//!
//! The correctness story mirrors the earlier engines: the dynamic path is a
//! *different route to the same values*.  After every edit, the maintained
//! MST has the same weight and `lmax` as a from-scratch build, the scheme
//! equals a full re-orientation on the materialized instance, the digraph
//! equals the verification engine's from-scratch construction, and the
//! report equals a fresh [`crate::verify::verify_with_budget`] — all pinned
//! by the edit-script oracle suite in `tests/dynamic_oracle.rs`.

use crate::algorithms::lemma1::orient_node;
use crate::algorithms::AlgorithmKind;
use crate::antenna::{AntennaBudget, SensorAssignment};
use crate::error::OrientError;
use crate::instance::Instance;
use crate::scheme::OrientationScheme;
use crate::solver::{Orienter, SelectionPolicy, Solver, Theorem2Orienter};
use crate::verify::{report_from_digraph, VerificationReport};
use antennae_geometry::{Point, EPS};
use antennae_graph::dynamic::{DynamicEmst, DynamicEmstError};
use antennae_graph::DiGraph;

/// Stable identifier of a sensor inside a [`DynamicInstance`].
///
/// Ids are assigned monotonically by [`DynamicInstance::insert`] (the
/// initial deployment gets `0..n`) and never reused; a removed id stays dead
/// forever.  Ids are *not* the indices of the materialized [`Instance`] —
/// the dense index of a live id is its rank among the live ids.
pub type SensorId = usize;

fn map_emst_error(e: DynamicEmstError) -> OrientError {
    match e {
        DynamicEmstError::UnknownSlot(id) => OrientError::UnknownSensor { id },
        DynamicEmstError::WouldBeEmpty => OrientError::EmptyInstance,
    }
}

/// A sensor deployment under churn: accepts insert/remove/move edits while
/// incrementally maintaining the kd-tree, the Euclidean MST and `lmax`, and
/// the cached materialized [`Instance`] (with its lazily rooted tree).
///
/// # Examples
///
/// ```
/// use antennae_core::dynamic::DynamicInstance;
/// use antennae_geometry::Point;
///
/// let mut deployment = DynamicInstance::new(&[
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(2.0, 0.0),
/// ])?;
/// let id = deployment.insert(Point::new(3.0, 0.0));
/// deployment.move_sensor(id, Point::new(3.0, 1.0))?;
/// deployment.remove(0)?;
/// assert_eq!(deployment.len(), 3);
/// // The materialized instance is a regular `Instance` over the live set.
/// assert_eq!(deployment.instance()?.len(), 3);
/// # Ok::<(), antennae_core::error::OrientError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicInstance {
    emst: DynamicEmst,
    /// Materialized dense instance (invalidated by every edit).
    cache: Option<Instance>,
    /// Live ids in ascending order, aligned with the cached instance.
    live_ids: Vec<SensorId>,
    /// id → dense index in the cached instance (`u32::MAX` when dead).
    dense_of_id: Vec<u32>,
}

impl DynamicInstance {
    /// Builds a dynamic instance over an initial deployment; sensor `i` of
    /// `points` gets id `i`.
    pub fn new(points: &[Point]) -> Result<Self, OrientError> {
        if points.is_empty() {
            return Err(OrientError::EmptyInstance);
        }
        let emst =
            DynamicEmst::new(points).map_err(|e| OrientError::MstConstruction(e.to_string()))?;
        Ok(DynamicInstance {
            emst,
            cache: None,
            live_ids: Vec::new(),
            dense_of_id: Vec::new(),
        })
    }

    /// Number of live sensors.
    pub fn len(&self) -> usize {
        self.emst.live_count()
    }

    /// Returns `true` when no sensor is live (unreachable through the public
    /// API, which refuses to drain the last sensor).
    pub fn is_empty(&self) -> bool {
        self.emst.live_count() == 0
    }

    /// Returns `true` when `id` names a live sensor.
    pub fn is_alive(&self, id: SensorId) -> bool {
        self.emst.is_alive(id)
    }

    /// The live sensor ids in ascending order (the materialized instance's
    /// dense index order).
    pub fn ids(&self) -> Vec<SensorId> {
        self.emst.live_slots()
    }

    /// The location of a live sensor.
    pub fn point(&self, id: SensorId) -> Result<Point, OrientError> {
        if !self.emst.is_alive(id) {
            return Err(OrientError::UnknownSensor { id });
        }
        Ok(self.emst.point(id))
    }

    /// The longest MST edge over the live deployment.
    pub fn lmax(&self) -> f64 {
        self.emst.lmax()
    }

    /// Total weight of the maintained MST.
    pub fn mst_total_weight(&self) -> f64 {
        self.emst.total_weight()
    }

    /// Ids whose MST neighborhood changed in the most recent edit.
    pub fn changed_ids(&self) -> &[SensorId] {
        self.emst.changed_slots()
    }

    /// The underlying incremental MST engine (spatial index included).
    pub fn emst(&self) -> &DynamicEmst {
        &self.emst
    }

    /// Inserts a sensor, returning its id.
    pub fn insert(&mut self, p: Point) -> SensorId {
        self.cache = None;
        self.emst.insert(p)
    }

    /// Removes a live sensor (the last live sensor cannot be removed).
    pub fn remove(&mut self, id: SensorId) -> Result<(), OrientError> {
        self.cache = None;
        self.emst.remove(id).map_err(map_emst_error)
    }

    /// Moves a live sensor to a new location (id is preserved).
    pub fn move_sensor(&mut self, id: SensorId, p: Point) -> Result<(), OrientError> {
        self.cache = None;
        self.emst.move_to(id, p).map_err(map_emst_error)
    }

    /// The dense index of a live id in the materialized instance.  Only
    /// valid after [`DynamicInstance::instance`] since the last edit.
    fn dense_of(&self, id: SensorId) -> u32 {
        self.dense_of_id[id]
    }

    /// Materializes (and caches) the live deployment as a regular
    /// [`Instance`]: live ids ascending, the maintained MST handed over
    /// without a rebuild, the rooted view re-derived lazily as usual.
    pub fn instance(&mut self) -> Result<&Instance, OrientError> {
        if self.cache.is_none() {
            let mst = self
                .emst
                .materialize()
                .map_err(|e| OrientError::MstConstruction(e.to_string()))?;
            self.live_ids = self.emst.live_slots();
            self.dense_of_id = vec![u32::MAX; self.live_ids.last().map_or(0, |&s| s + 1)];
            for (dense, &id) in self.live_ids.iter().enumerate() {
                self.dense_of_id[id] = dense as u32;
            }
            let points = mst.points().to_vec();
            self.cache = Some(Instance::from_prebuilt(points, mst));
        }
        Ok(self.cache.as_ref().expect("cache was just filled"))
    }
}

/// One edit applied to a [`DynamicSolverSession`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Edit {
    /// A sensor arrives at the given location.
    Insert(Point),
    /// The sensor with the given id fails.
    Remove(SensorId),
    /// The sensor with the given id moves to the given location.
    Move(SensorId, Point),
}

/// What one [`DynamicSolverSession::apply`] did: the refreshed verdict plus
/// the incrementality counters the churn experiment records.
#[derive(Debug, Clone, PartialEq)]
pub struct EditOutcome {
    /// The id the edit referenced (the fresh id for an insert).
    pub id: SensorId,
    /// The construction that produced the current scheme.
    pub algorithm: AlgorithmKind,
    /// Whether re-orientation took the incremental per-vertex path (`false`
    /// means a full solve on the materialized instance).
    pub incremental_orientation: bool,
    /// Sensors whose MST neighborhood changed (and were re-oriented on the
    /// incremental path).
    pub mst_changed: usize,
    /// Induced-digraph rows recomputed by the verification repair.
    pub rows_recomputed: usize,
    /// The verification verdict for the refreshed scheme under the
    /// session's budget.
    pub report: VerificationReport,
    /// The refreshed scheme's measured max radius in units of `lmax`.
    pub measured_radius_over_lmax: f64,
}

/// A solver+verifier session over a [`DynamicInstance`]: one budget, a
/// continuously maintained orientation scheme, induced digraph and
/// verification verdict.
///
/// When the budget admits Theorem 2 (`φ_k ≥ 2π(5−k)/5` — exactly the regime
/// where the registry's best guarantee *is* Theorem 2), the session
/// re-orients incrementally: only sensors whose MST neighborhood changed get
/// a fresh per-vertex Lemma 1 orientation, and only digraph rows that could
/// have changed are recomputed.  Other budgets fall back to a full
/// [`Solver`] run per edit, still reusing the incrementally maintained MST
/// substrate and spatial index.
///
/// # Examples
///
/// ```
/// use antennae_core::antenna::AntennaBudget;
/// use antennae_core::bounds::theorem2_spread_threshold;
/// use antennae_core::dynamic::{DynamicInstance, DynamicSolverSession, Edit};
/// use antennae_geometry::Point;
///
/// let deployment = DynamicInstance::new(&[
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.1),
///     Point::new(2.0, 0.3),
///     Point::new(1.1, 1.2),
/// ])?;
/// let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
/// let mut session = DynamicSolverSession::new(deployment, budget)?;
/// assert!(session.report().is_valid());
///
/// let outcome = session.apply(Edit::Insert(Point::new(0.5, 0.8)))?;
/// assert!(outcome.incremental_orientation);
/// assert!(outcome.report.is_strongly_connected);
/// # Ok::<(), antennae_core::error::OrientError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicSolverSession {
    inst: DynamicInstance,
    budget: AntennaBudget,
    /// `true` when the session runs the incremental Theorem 2 path.
    incremental: bool,
    algorithm: AlgorithmKind,
    /// Per-id assignments (dead ids hold empty assignments).
    assignments: Vec<SensorAssignment>,
    /// Per-id induced-digraph rows, targets in id space, ascending.
    rows: Vec<Vec<u32>>,
    /// Largest antenna radius across all live assignments.
    max_radius: f64,
    scheme: OrientationScheme,
    digraph: DiGraph,
    report: VerificationReport,
    /// Scratch buffers for the row queries (allocation-free steady state).
    scratch: Vec<usize>,
    row_buf: Vec<usize>,
}

impl DynamicSolverSession {
    /// Opens a session: solves and verifies the initial deployment under
    /// `budget` and keeps the state warm for [`DynamicSolverSession::apply`].
    pub fn new(inst: DynamicInstance, budget: AntennaBudget) -> Result<Self, OrientError> {
        let incremental = Theorem2Orienter.applicability(&budget).is_some();
        let mut session = DynamicSolverSession {
            inst,
            budget,
            incremental,
            algorithm: AlgorithmKind::Theorem2,
            assignments: Vec::new(),
            rows: Vec::new(),
            max_radius: 0.0,
            scheme: OrientationScheme::empty(0),
            digraph: DiGraph::from_edges(0, &[]),
            report: VerificationReport {
                is_strongly_connected: true,
                scc_count: 0,
                edge_count: 0,
                max_radius: 0.0,
                max_radius_over_lmax: 0.0,
                max_spread_sum: 0.0,
                max_antenna_count: 0,
                violations: Vec::new(),
            },
            scratch: Vec::new(),
            row_buf: Vec::new(),
        };
        session.reorient_full()?;
        let all: Vec<SensorId> = session.inst.ids();
        session.recompute_rows(&all);
        session.refresh_verdict()?;
        Ok(session)
    }

    /// The session's budget.
    pub fn budget(&self) -> AntennaBudget {
        self.budget
    }

    /// Returns `true` when the session re-orients incrementally (Theorem 2
    /// regime).
    pub fn is_incremental(&self) -> bool {
        self.incremental
    }

    /// The dynamic instance (read-only; edits go through
    /// [`DynamicSolverSession::apply`] so the cached state stays in sync).
    pub fn instance(&self) -> &DynamicInstance {
        &self.inst
    }

    /// The materialized static instance for the current live deployment.
    pub fn materialized(&mut self) -> Result<&Instance, OrientError> {
        self.inst.instance()
    }

    /// The current orientation scheme (dense, aligned with
    /// [`DynamicSolverSession::materialized`]).
    pub fn scheme(&self) -> &OrientationScheme {
        &self.scheme
    }

    /// The current induced communication digraph (dense).
    pub fn digraph(&self) -> &DiGraph {
        &self.digraph
    }

    /// The current verification verdict.
    pub fn report(&self) -> &VerificationReport {
        &self.report
    }

    /// Applies one edit: updates the MST substrate, re-orients (incrementally
    /// in the Theorem 2 regime), repairs the induced digraph row-wise and
    /// re-checks strong connectivity.
    pub fn apply(&mut self, edit: Edit) -> Result<EditOutcome, OrientError> {
        // Edited locations drive the reverse row-repair queries below.
        let mut edited_positions: Vec<Point> = Vec::with_capacity(2);
        let id = match edit {
            Edit::Insert(p) => {
                edited_positions.push(p);
                self.inst.insert(p)
            }
            Edit::Remove(id) => {
                edited_positions.push(self.inst.point(id)?);
                self.inst.remove(id)?;
                id
            }
            Edit::Move(id, p) => {
                edited_positions.push(self.inst.point(id)?);
                edited_positions.push(p);
                self.inst.move_sensor(id, p)?;
                id
            }
        };
        let changed: Vec<SensorId> = self.inst.changed_ids().to_vec();
        let old_max_radius = self.max_radius;

        // Re-orient.
        let (mst_changed, reoriented_all) = if self.incremental {
            self.grow_id_tables();
            if !self.inst.is_alive(id) {
                self.assignments[id] = SensorAssignment::empty();
            }
            for &slot in &changed {
                self.assignments[slot] = self.orient_one(slot);
            }
            self.refresh_max_radius();
            (changed.len(), false)
        } else {
            self.reorient_full()?;
            (changed.len(), true)
        };

        // Repair the induced digraph: dirty rows are the re-oriented sensors
        // plus every sensor whose coverage ball contains an edited location.
        let dirty: Vec<SensorId> = if reoriented_all {
            self.inst.ids()
        } else {
            let reverse_radius = self.max_radius.max(old_max_radius) + EPS;
            let mut dirty = changed;
            let mut hits = Vec::new();
            for p in &edited_positions {
                self.inst.emst().kd().within_radius_with(
                    p,
                    reverse_radius,
                    &mut self.scratch,
                    &mut hits,
                );
                dirty.extend_from_slice(&hits);
            }
            dirty.sort_unstable();
            dirty.dedup();
            dirty.retain(|&s| self.inst.is_alive(s));
            dirty
        };
        if !self.inst.is_alive(id) {
            if let Some(row) = self.rows.get_mut(id) {
                row.clear();
            }
        }
        self.recompute_rows(&dirty);
        self.refresh_verdict()?;

        Ok(EditOutcome {
            id,
            algorithm: self.algorithm,
            incremental_orientation: !reoriented_all,
            mst_changed,
            rows_recomputed: dirty.len(),
            report: self.report.clone(),
            measured_radius_over_lmax: self.report.max_radius_over_lmax,
        })
    }

    /// Grows the per-id tables to cover freshly assigned ids.
    fn grow_id_tables(&mut self) {
        let slots = self
            .inst
            .ids()
            .last()
            .map_or(0, |&s| s + 1)
            .max(self.assignments.len());
        self.assignments.resize(slots, SensorAssignment::empty());
        self.rows.resize(slots, Vec::new());
    }

    /// The per-vertex Theorem 2 orientation of one live sensor: Lemma 1 over
    /// its current MST neighbours (ascending id order — the same neighbour
    /// order the materialized instance presents to a full re-orientation).
    fn orient_one(&self, id: SensorId) -> SensorAssignment {
        let apex = self.inst.emst().point(id);
        let neighbors: Vec<Point> = self
            .inst
            .emst()
            .neighbors(id)
            .iter()
            .map(|&(u, _)| self.inst.emst().point(u))
            .collect();
        SensorAssignment::new(orient_node(&apex, &neighbors, self.budget.k))
    }

    /// Full re-orientation: the incremental path rebuilds every per-vertex
    /// assignment (initial solve), the fallback path runs the policy solver
    /// on the materialized instance and scatters the dense scheme back into
    /// id space.
    fn reorient_full(&mut self) -> Result<(), OrientError> {
        self.grow_id_tables();
        for a in &mut self.assignments {
            *a = SensorAssignment::empty();
        }
        if self.incremental {
            self.algorithm = AlgorithmKind::Theorem2;
            for id in self.inst.ids() {
                self.assignments[id] = self.orient_one(id);
            }
        } else {
            let budget = self.budget;
            let outcome = {
                let instance = self.inst.instance()?;
                Solver::on(instance)
                    .with_budget(budget)
                    .policy(SelectionPolicy::BestGuarantee)
                    .run()?
            };
            self.algorithm = outcome.algorithm;
            for (dense, id) in self.inst.ids().into_iter().enumerate() {
                self.assignments[id] = outcome.scheme.assignments[dense].clone();
            }
        }
        self.refresh_max_radius();
        Ok(())
    }

    fn refresh_max_radius(&mut self) {
        self.max_radius = self
            .inst
            .ids()
            .into_iter()
            .map(|id| self.assignments[id].max_radius())
            .fold(0.0, f64::max);
    }

    /// Recomputes the induced-digraph rows of `ids` (live, id space): one
    /// bounded range query against the shared spatial index, then the exact
    /// sector filter — the same candidate-superset contract as the static
    /// verification engine, so the assembled rows are bit-identical to a
    /// from-scratch rebuild.
    fn recompute_rows(&mut self, ids: &[SensorId]) {
        self.grow_id_tables();
        for &u in ids {
            debug_assert!(self.inst.is_alive(u));
            let assignment = std::mem::take(&mut self.assignments[u]);
            let apex = self.inst.emst().point(u);
            self.inst.emst().kd().within_radius_with(
                &apex,
                assignment.max_radius() + EPS,
                &mut self.scratch,
                &mut self.row_buf,
            );
            let row = &mut self.rows[u];
            row.clear();
            for &v in self.row_buf.iter() {
                if v != u && assignment.covers(&apex, &self.inst.emst().point(v)) {
                    row.push(v as u32);
                }
            }
            self.assignments[u] = assignment;
        }
    }

    /// Rebuilds the dense scheme + digraph from the id-space state and
    /// refreshes the verification verdict.
    fn refresh_verdict(&mut self) -> Result<(), OrientError> {
        let ids = self.inst.ids();
        self.inst.instance()?;
        let assignments: Vec<SensorAssignment> =
            ids.iter().map(|&id| self.assignments[id].clone()).collect();
        self.scheme = OrientationScheme::new(assignments);
        // Id → dense is monotone over ascending live ids, so the ascending
        // id-space rows map to ascending dense rows.
        self.digraph = DiGraph::from_adjacency(
            ids.len(),
            ids.iter().map(|&u| {
                self.rows[u]
                    .iter()
                    .map(|&v| self.inst.dense_of(v as usize) as usize)
            }),
        );
        let instance = self.inst.cache.as_ref().expect("materialized above");
        self.report = report_from_digraph(instance, &self.scheme, Some(self.budget), &self.digraph);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::theorem2_spread_threshold;
    use crate::verify::{verify_with_budget, DigraphStrategy, VerificationEngine};
    use antennae_geometry::PI;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect()
    }

    /// The session's scheme, digraph and report must equal the from-scratch
    /// static pipeline on the materialized instance.
    fn assert_matches_static(session: &mut DynamicSolverSession) {
        let budget = session.budget();
        let scheme = session.scheme().clone();
        let digraph = session.digraph().clone();
        let report = session.report().clone();
        let instance = session.materialized().unwrap().clone();
        let dense = VerificationEngine::new()
            .with_strategy(DigraphStrategy::Dense)
            .induced_digraph(instance.points(), &scheme);
        assert_eq!(digraph, dense, "digraph diverged from static rebuild");
        let fresh = verify_with_budget(&instance, &scheme, Some(budget));
        assert_eq!(report, fresh, "report diverged from static verify");
        if session.is_incremental() {
            let full = crate::algorithms::theorem2::orient_theorem2(&instance, budget.k).unwrap();
            assert_eq!(scheme, full, "incremental scheme diverged from full orient");
        }
    }

    #[test]
    fn incremental_session_tracks_static_pipeline() {
        let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
        let inst = DynamicInstance::new(&random_points(40, 1)).unwrap();
        let mut session = DynamicSolverSession::new(inst, budget).unwrap();
        assert!(session.is_incremental());
        assert!(session.report().is_valid());
        assert_matches_static(&mut session);

        let mut rng = StdRng::seed_from_u64(7);
        for step in 0..30 {
            let edit = match step % 3 {
                0 => Edit::Insert(Point::new(
                    rng.random_range(0.0..10.0),
                    rng.random_range(0.0..10.0),
                )),
                1 => {
                    let ids = session.instance().ids();
                    Edit::Remove(ids[rng.random_range(0..ids.len())])
                }
                _ => {
                    let ids = session.instance().ids();
                    Edit::Move(
                        ids[rng.random_range(0..ids.len())],
                        Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)),
                    )
                }
            };
            let outcome = session.apply(edit).unwrap();
            assert!(outcome.incremental_orientation);
            assert_eq!(outcome.algorithm, AlgorithmKind::Theorem2);
            assert!(
                outcome.report.is_valid(),
                "step {step}: {:?}",
                outcome.report
            );
            assert_matches_static(&mut session);
        }
    }

    #[test]
    fn incremental_edits_touch_few_rows_on_a_path() {
        // A long path: one interior move must not re-verify the far ends.
        let pts: Vec<Point> = (0..200).map(|i| Point::new(i as f64, 0.0)).collect();
        let inst = DynamicInstance::new(&pts).unwrap();
        let budget = AntennaBudget::new(3, theorem2_spread_threshold(3));
        let mut session = DynamicSolverSession::new(inst, budget).unwrap();
        let outcome = session
            .apply(Edit::Move(100, Point::new(100.0, 0.2)))
            .unwrap();
        assert!(outcome.incremental_orientation);
        assert!(
            outcome.rows_recomputed < 20,
            "rows_recomputed = {} is not local",
            outcome.rows_recomputed
        );
        assert!(outcome.report.is_valid());
        assert_matches_static(&mut session);
    }

    #[test]
    fn fallback_session_uses_the_policy_solver() {
        // (2, π) admits Theorem 3 but not Theorem 2 → full-solve fallback.
        let inst = DynamicInstance::new(&random_points(25, 3)).unwrap();
        let mut session = DynamicSolverSession::new(inst, AntennaBudget::new(2, PI)).unwrap();
        assert!(!session.is_incremental());
        assert_eq!(session.report().violations, vec![]);
        assert_matches_static(&mut session);
        let outcome = session.apply(Edit::Insert(Point::new(5.0, 5.0))).unwrap();
        assert!(!outcome.incremental_orientation);
        assert_eq!(outcome.algorithm, AlgorithmKind::Theorem3);
        assert!(outcome.report.is_valid());
        assert_matches_static(&mut session);
    }

    #[test]
    fn drain_to_one_sensor_and_regrow() {
        let inst = DynamicInstance::new(&random_points(6, 4)).unwrap();
        let budget = AntennaBudget::new(1, theorem2_spread_threshold(1));
        let mut session = DynamicSolverSession::new(inst, budget).unwrap();
        while session.instance().len() > 1 {
            let victim = session.instance().ids()[0];
            let outcome = session.apply(Edit::Remove(victim)).unwrap();
            assert!(outcome.report.is_valid());
            assert_matches_static(&mut session);
        }
        // A single live sensor is trivially strongly connected…
        assert!(session.report().is_strongly_connected);
        assert_eq!(session.instance().lmax(), 0.0);
        // …and the last one cannot be removed.
        let last = session.instance().ids()[0];
        assert!(matches!(
            session.apply(Edit::Remove(last)),
            Err(OrientError::EmptyInstance)
        ));
        // Regrowing works.
        let outcome = session.apply(Edit::Insert(Point::new(1.0, 2.0))).unwrap();
        assert!(outcome.report.is_valid());
        assert_matches_static(&mut session);
    }

    #[test]
    fn dead_ids_are_rejected() {
        let inst = DynamicInstance::new(&random_points(5, 5)).unwrap();
        let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
        let mut session = DynamicSolverSession::new(inst, budget).unwrap();
        session.apply(Edit::Remove(2)).unwrap();
        assert!(matches!(
            session.apply(Edit::Remove(2)),
            Err(OrientError::UnknownSensor { id: 2 })
        ));
        assert!(matches!(
            session.apply(Edit::Move(2, Point::ORIGIN)),
            Err(OrientError::UnknownSensor { id: 2 })
        ));
        // The session state is still consistent after the rejected edits.
        assert_matches_static(&mut session);
    }

    #[test]
    fn duplicate_point_edits_stay_consistent() {
        let inst = DynamicInstance::new(&[Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap();
        let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
        let mut session = DynamicSolverSession::new(inst, budget).unwrap();
        let dup = session.apply(Edit::Insert(Point::new(1.0, 0.0))).unwrap();
        assert!(dup.report.is_valid());
        assert_matches_static(&mut session);
        let moved = session
            .apply(Edit::Move(dup.id, Point::new(0.0, 0.0)))
            .unwrap();
        assert!(moved.report.is_valid());
        assert_matches_static(&mut session);
    }
}
