//! Axis-aligned bounding boxes.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box (AABB).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl Aabb {
    /// Creates a box from two corner points (they are re-ordered so that
    /// `min ≤ max` componentwise).
    pub fn new(a: Point, b: Point) -> Self {
        Aabb {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The smallest box containing every point of the slice, or `None` for an
    /// empty slice.
    pub fn from_points(points: &[Point]) -> Option<Aabb> {
        let first = points.first()?;
        let mut bb = Aabb::new(*first, *first);
        for p in &points[1..] {
            bb.expand(p);
        }
        Some(bb)
    }

    /// Grows the box (in place) to contain `p`.
    pub fn expand(&mut self, p: &Point) {
        self.min = Point::new(self.min.x.min(p.x), self.min.y.min(p.y));
        self.max = Point::new(self.max.x.max(p.x), self.max.y.max(p.y));
    }

    /// Width of the box.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the box.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the box.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center of the box.
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// Length of the diagonal.
    pub fn diagonal(&self) -> f64 {
        self.min.distance(&self.max)
    }

    /// Returns `true` when `p` lies in the closed box.
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when the two boxes overlap (closed intersection).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Minimum distance from `p` to the box (0 when inside).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reorders_corners() {
        let bb = Aabb::new(Point::new(2.0, -1.0), Point::new(-1.0, 3.0));
        assert!(bb.min.approx_eq(&Point::new(-1.0, -1.0), 1e-12));
        assert!(bb.max.approx_eq(&Point::new(2.0, 3.0), 1e-12));
        assert!((bb.width() - 3.0).abs() < 1e-12);
        assert!((bb.height() - 4.0).abs() < 1e-12);
        assert!((bb.area() - 12.0).abs() < 1e-12);
        assert!((bb.diagonal() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_points_and_containment() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(1.0, 5.0),
        ];
        let bb = Aabb::from_points(&pts).unwrap();
        for p in &pts {
            assert!(bb.contains(p));
        }
        assert!(!bb.contains(&Point::new(4.0, 0.0)));
        assert!(Aabb::from_points(&[]).is_none());
    }

    #[test]
    fn intersection_test() {
        let a = Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Aabb::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let c = Aabb::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn distance_to_point() {
        let bb = Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert_eq!(bb.distance_to_point(&Point::new(1.0, 1.0)), 0.0);
        assert!((bb.distance_to_point(&Point::new(5.0, 2.0)) - 3.0).abs() < 1e-12);
        assert!((bb.distance_to_point(&Point::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn center_of_box() {
        let bb = Aabb::new(Point::new(0.0, 0.0), Point::new(4.0, 2.0));
        assert!(bb.center().approx_eq(&Point::new(2.0, 1.0), 1e-12));
    }
}
