//! Triangles.
//!
//! Fact 1 of the paper states that for two adjacent MST neighbours `u`, `w`
//! of a vertex `v`, the triangle `△uvw` is empty of other input points; the
//! verification harness uses [`Triangle::contains`] to check this fact
//! empirically on generated instances.

use crate::point::Point;
use crate::predicates::{orientation, Orientation};
use serde::{Deserialize, Serialize};

/// A triangle defined by three vertices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Triangle {
    /// First vertex.
    pub a: Point,
    /// Second vertex.
    pub b: Point,
    /// Third vertex.
    pub c: Point,
}

impl Triangle {
    /// Creates a triangle.
    pub const fn new(a: Point, b: Point, c: Point) -> Self {
        Triangle { a, b, c }
    }

    /// Signed area (positive when the vertices are in counterclockwise
    /// order).
    pub fn signed_area(&self) -> f64 {
        0.5 * ((self.b.x - self.a.x) * (self.c.y - self.a.y)
            - (self.c.x - self.a.x) * (self.b.y - self.a.y))
    }

    /// Unsigned area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Returns `true` when the triangle is degenerate (its vertices are
    /// collinear within `eps` of area).
    pub fn is_degenerate(&self, eps: f64) -> bool {
        self.area() <= eps
    }

    /// Perimeter of the triangle.
    pub fn perimeter(&self) -> f64 {
        self.a.distance(&self.b) + self.b.distance(&self.c) + self.c.distance(&self.a)
    }

    /// Returns `true` when `p` lies inside the closed triangle.
    ///
    /// Points on edges and vertices count as contained.  `strict` excludes
    /// the boundary.
    pub fn contains(&self, p: &Point, strict: bool) -> bool {
        let o1 = orientation(&self.a, &self.b, p);
        let o2 = orientation(&self.b, &self.c, p);
        let o3 = orientation(&self.c, &self.a, p);
        let has_cw = [o1, o2, o3].contains(&Orientation::Clockwise);
        let has_ccw = [o1, o2, o3].contains(&Orientation::CounterClockwise);
        let inside_or_boundary = !(has_cw && has_ccw);
        if !strict {
            return inside_or_boundary;
        }
        inside_or_boundary && [o1, o2, o3].iter().all(|&o| o != Orientation::Collinear)
    }

    /// Centroid of the triangle.
    pub fn centroid(&self) -> Point {
        Point::new(
            (self.a.x + self.b.x + self.c.x) / 3.0,
            (self.a.y + self.b.y + self.c.y) / 3.0,
        )
    }

    /// Longest edge length.
    pub fn longest_edge(&self) -> f64 {
        self.a
            .distance(&self.b)
            .max(self.b.distance(&self.c))
            .max(self.c.distance(&self.a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_right_triangle() -> Triangle {
        Triangle::new(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        )
    }

    #[test]
    fn area_of_unit_right_triangle() {
        let t = unit_right_triangle();
        assert!((t.area() - 0.5).abs() < 1e-12);
        assert!(t.signed_area() > 0.0);
        // Reversed orientation flips the sign.
        let r = Triangle::new(t.a, t.c, t.b);
        assert!(r.signed_area() < 0.0);
    }

    #[test]
    fn containment_interior_boundary_exterior() {
        let t = unit_right_triangle();
        assert!(t.contains(&Point::new(0.25, 0.25), false));
        assert!(t.contains(&Point::new(0.25, 0.25), true));
        assert!(t.contains(&Point::new(0.5, 0.0), false)); // on edge
        assert!(!t.contains(&Point::new(0.5, 0.0), true)); // strict excludes edge
        assert!(!t.contains(&Point::new(1.0, 1.0), false));
    }

    #[test]
    fn degenerate_triangle_detection() {
        let t = Triangle::new(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        );
        assert!(t.is_degenerate(1e-12));
        assert!(!unit_right_triangle().is_degenerate(1e-12));
    }

    #[test]
    fn centroid_and_perimeter() {
        let t = unit_right_triangle();
        assert!(t
            .centroid()
            .approx_eq(&Point::new(1.0 / 3.0, 1.0 / 3.0), 1e-12));
        assert!((t.perimeter() - (2.0 + 2.0_f64.sqrt())).abs() < 1e-12);
        assert!((t.longest_edge() - 2.0_f64.sqrt()).abs() < 1e-12);
    }
}
