//! Angular neighbourhood analysis around a pivot point.
//!
//! Lemma 1, Theorem 3 and the chain constructions of Theorems 5/6 all reason
//! about the neighbours of an MST vertex `v` **sorted counterclockwise**
//! around `v` and about the *gaps* (consecutive angular differences) between
//! them.  This module provides those primitives:
//!
//! * [`sort_ccw`] — sort target points counterclockwise around a pivot,
//!   optionally starting the ordering right after a reference direction (the
//!   paper's "`u(1)` is the first neighbour of `u` when rotating the ray
//!   `~up`").
//! * [`circular_gaps`] — the `d` consecutive angular gaps `α_0 … α_{d-1}`
//!   around the pivot (they sum to 2π).
//! * [`max_window_sum`] — the maximum sum of `k` consecutive gaps, which is
//!   the quantity `Σ ≥ 2πk/d` at the heart of Lemma 1's averaging argument.
//! * [`largest_gaps_indices`] — the indices of the `m` largest gaps, used by
//!   the chain constructions (drop the largest gaps, chain the rest).

use crate::angle::Angle;
use crate::point::Point;
use crate::TAU;

/// A target point together with its index in the caller's collection and its
/// direction from the pivot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AngularNeighbor {
    /// Index of the neighbour in the caller's collection.
    pub index: usize,
    /// Direction of the ray pivot → neighbour.
    pub direction: Angle,
    /// Distance from the pivot.
    pub distance: f64,
}

/// Sorts `targets` counterclockwise around `pivot`.
///
/// The result starts from the target with the smallest absolute direction
/// (angle measured from the positive x axis).  Targets coincident with the
/// pivot are placed first with direction 0.
pub fn sort_ccw(pivot: &Point, targets: &[Point]) -> Vec<AngularNeighbor> {
    let mut out: Vec<AngularNeighbor> = targets
        .iter()
        .enumerate()
        .map(|(index, t)| AngularNeighbor {
            index,
            direction: Angle::of_ray(pivot, t),
            distance: pivot.distance(t),
        })
        .collect();
    out.sort_by(|a, b| {
        a.direction
            .radians()
            .total_cmp(&b.direction.radians())
            .then_with(|| a.distance.total_cmp(&b.distance))
    });
    out
}

/// Sorts `targets` counterclockwise around `pivot`, starting with the first
/// target encountered when rotating counterclockwise from `reference`.
///
/// This matches the paper's convention "`u(1)` is the first neighbour of `u`
/// when rotating the ray `~up`" (where `p` is the parent / imaginary point).
pub fn sort_ccw_from(pivot: &Point, targets: &[Point], reference: Angle) -> Vec<AngularNeighbor> {
    let mut out = sort_ccw(pivot, targets);
    if out.is_empty() {
        return out;
    }
    // Rotate the sorted list so that it starts at the first direction that is
    // strictly counterclockwise of `reference`.
    let start = out
        .iter()
        .position(|n| reference.ccw_to(&n.direction).radians() > 1e-12)
        .unwrap_or(0);
    out.rotate_left(start);
    // Order by counterclockwise offset from the reference.
    out.sort_by(|a, b| {
        reference
            .ccw_to(&a.direction)
            .radians()
            .total_cmp(&reference.ccw_to(&b.direction).radians())
    });
    out
}

/// The circular gaps between consecutive sorted directions (in radians).
///
/// `gaps[i]` is the counterclockwise angle from `sorted[i]` to
/// `sorted[(i + 1) % d]`.  For a single direction the gap is the full 2π; for
/// an empty input the result is empty.  The gaps always sum to 2π (up to
/// floating point) when there is at least one direction.
pub fn circular_gaps(sorted: &[AngularNeighbor]) -> Vec<f64> {
    let d = sorted.len();
    if d == 0 {
        return Vec::new();
    }
    if d == 1 {
        return vec![TAU];
    }
    (0..d)
        .map(|i| {
            sorted[i]
                .direction
                .ccw_to(&sorted[(i + 1) % d].direction)
                .radians()
        })
        .map(|g| if d > 1 && g == 0.0 { 0.0 } else { g })
        .collect()
}

/// Maximum sum of `k` consecutive gaps (circularly), returned as
/// `(start_index, sum)`.
///
/// Lemma 1's averaging argument guarantees that for `d` gaps summing to 2π
/// the maximum `k`-window sum is at least `2πk/d`.
pub fn max_window_sum(gaps: &[f64], k: usize) -> Option<(usize, f64)> {
    let d = gaps.len();
    if d == 0 || k == 0 || k > d {
        return None;
    }
    let mut best = (0, f64::NEG_INFINITY);
    for start in 0..d {
        let sum: f64 = (0..k).map(|j| gaps[(start + j) % d]).sum();
        if sum > best.1 {
            best = (start, sum);
        }
    }
    Some(best)
}

/// Minimum sum of `k` consecutive gaps (circularly), returned as
/// `(start_index, sum)`.
pub fn min_window_sum(gaps: &[f64], k: usize) -> Option<(usize, f64)> {
    let d = gaps.len();
    if d == 0 || k == 0 || k > d {
        return None;
    }
    let mut best = (0, f64::INFINITY);
    for start in 0..d {
        let sum: f64 = (0..k).map(|j| gaps[(start + j) % d]).sum();
        if sum < best.1 {
            best = (start, sum);
        }
    }
    Some(best)
}

/// Indices of the `m` largest gaps, sorted by decreasing gap size
/// (ties broken by smaller index first).
pub fn largest_gaps_indices(gaps: &[f64], m: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..gaps.len()).collect();
    idx.sort_by(|&a, &b| gaps[b].total_cmp(&gaps[a]).then(a.cmp(&b)));
    idx.truncate(m);
    idx
}

/// Index of the single largest gap (`None` for an empty slice).
pub fn largest_gap_index(gaps: &[f64]) -> Option<usize> {
    largest_gaps_indices(gaps, 1).first().copied()
}

/// Splits the circular sequence `0..d` into maximal chains by removing the
/// gaps whose indices appear in `removed`.
///
/// A gap index `i` connects position `i` to position `(i + 1) % d`.  The
/// result is a list of chains, each a list of positions in counterclockwise
/// order.  Removing zero gaps yields a single chain that wraps all the way
/// around (starting at position 0).
pub fn split_into_chains(d: usize, removed: &[usize]) -> Vec<Vec<usize>> {
    if d == 0 {
        return Vec::new();
    }
    let removed_set: Vec<bool> = {
        let mut v = vec![false; d];
        for &r in removed {
            if r < d {
                v[r] = true;
            }
        }
        v
    };
    if removed_set.iter().all(|&r| !r) {
        return vec![(0..d).collect()];
    }
    // Start each chain right after a removed gap.
    let mut chains = Vec::new();
    for start_gap in 0..d {
        if !removed_set[start_gap] {
            continue;
        }
        let start_pos = (start_gap + 1) % d;
        let mut chain = vec![start_pos];
        let mut pos = start_pos;
        while !removed_set[pos] {
            pos = (pos + 1) % d;
            chain.push(pos);
        }
        chains.push(chain);
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PI;
    use proptest::prelude::*;

    fn cross_points() -> Vec<Point> {
        // East, North, West, South of the origin (given out of order).
        vec![
            Point::new(0.0, 1.0),  // 90°
            Point::new(1.0, 0.0),  // 0°
            Point::new(0.0, -1.0), // 270°
            Point::new(-1.0, 0.0), // 180°
        ]
    }

    #[test]
    fn sort_ccw_orders_by_direction() {
        let sorted = sort_ccw(&Point::ORIGIN, &cross_points());
        let dirs: Vec<f64> = sorted.iter().map(|n| n.direction.degrees()).collect();
        assert!((dirs[0] - 0.0).abs() < 1e-9);
        assert!((dirs[1] - 90.0).abs() < 1e-9);
        assert!((dirs[2] - 180.0).abs() < 1e-9);
        assert!((dirs[3] - 270.0).abs() < 1e-9);
        // Original indices preserved.
        assert_eq!(sorted[0].index, 1);
        assert_eq!(sorted[1].index, 0);
    }

    #[test]
    fn sort_ccw_from_reference_starts_after_reference() {
        let sorted = sort_ccw_from(&Point::ORIGIN, &cross_points(), Angle::from_degrees(45.0));
        let dirs: Vec<f64> = sorted.iter().map(|n| n.direction.degrees()).collect();
        assert!((dirs[0] - 90.0).abs() < 1e-9);
        assert!((dirs[1] - 180.0).abs() < 1e-9);
        assert!((dirs[2] - 270.0).abs() < 1e-9);
        assert!((dirs[3] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn gaps_of_cross_are_quarter_turns() {
        let sorted = sort_ccw(&Point::ORIGIN, &cross_points());
        let gaps = circular_gaps(&sorted);
        assert_eq!(gaps.len(), 4);
        for g in &gaps {
            assert!((g - PI / 2.0).abs() < 1e-9);
        }
        assert!((gaps.iter().sum::<f64>() - TAU).abs() < 1e-9);
    }

    #[test]
    fn gaps_of_single_point_is_full_turn() {
        let sorted = sort_ccw(&Point::ORIGIN, &[Point::new(1.0, 1.0)]);
        let gaps = circular_gaps(&sorted);
        assert_eq!(gaps, vec![TAU]);
        assert!(circular_gaps(&[]).is_empty());
    }

    #[test]
    fn window_sums() {
        let gaps = vec![1.0, 2.0, 3.0, 0.2832];
        let (idx, sum) = max_window_sum(&gaps, 2).unwrap();
        assert_eq!(idx, 1);
        assert!((sum - 5.0).abs() < 1e-9);
        let (min_idx, min_sum) = min_window_sum(&gaps, 2).unwrap();
        assert_eq!(min_idx, 3);
        assert!((min_sum - 1.2832).abs() < 1e-9);
        assert!(max_window_sum(&gaps, 0).is_none());
        assert!(max_window_sum(&gaps, 5).is_none());
    }

    #[test]
    fn lemma1_averaging_bound_holds_on_gaps() {
        // For any gap vector summing to 2π, max k-window ≥ 2πk/d.
        let gaps = vec![0.5, 1.5, 2.0, 1.0, TAU - 5.0];
        let d = gaps.len();
        for k in 1..=d {
            let (_, sum) = max_window_sum(&gaps, k).unwrap();
            assert!(sum + 1e-9 >= TAU * k as f64 / d as f64);
        }
    }

    #[test]
    fn largest_gaps_are_identified() {
        let gaps = vec![0.1, 2.5, 0.3, 1.9, 1.4831];
        assert_eq!(largest_gap_index(&gaps), Some(1));
        assert_eq!(largest_gaps_indices(&gaps, 2), vec![1, 3]);
        assert_eq!(largest_gaps_indices(&gaps, 0), Vec::<usize>::new());
    }

    #[test]
    fn chain_splitting() {
        // 5 positions, remove gaps 1 and 3: chains are [2,3], [4,0,1]... let's
        // verify: gap i connects i to i+1. Removing gap 1 cuts 1-2; removing
        // gap 3 cuts 3-4. Chains: starting after gap 1 -> [2, 3]; starting
        // after gap 3 -> [4, 0, 1].
        let chains = split_into_chains(5, &[1, 3]);
        assert_eq!(chains.len(), 2);
        assert!(chains.contains(&vec![2, 3]));
        assert!(chains.contains(&vec![4, 0, 1]));
        // Removing nothing yields one full chain.
        let all = split_into_chains(4, &[]);
        assert_eq!(all, vec![vec![0, 1, 2, 3]]);
        // Removing every gap yields singleton chains.
        let singles = split_into_chains(3, &[0, 1, 2]);
        assert_eq!(singles.len(), 3);
        assert!(singles.iter().all(|c| c.len() == 1));
        assert!(split_into_chains(0, &[]).is_empty());
    }

    proptest! {
        #[test]
        fn prop_gaps_sum_to_full_turn(
            xs in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..15)
        ) {
            let targets: Vec<Point> = xs
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .filter(|p| !p.coincident(&Point::ORIGIN))
                .collect();
            prop_assume!(!targets.is_empty());
            let sorted = sort_ccw(&Point::ORIGIN, &targets);
            let gaps = circular_gaps(&sorted);
            let total: f64 = gaps.iter().sum();
            prop_assert!((total - TAU).abs() < 1e-6);
        }

        #[test]
        fn prop_max_window_at_least_average(
            raw in proptest::collection::vec(0.0..1.0f64, 1..12),
            k in 1usize..12,
        ) {
            prop_assume!(k <= raw.len());
            // Normalize so the gaps sum to 2π.
            let s: f64 = raw.iter().sum();
            prop_assume!(s > 1e-9);
            let gaps: Vec<f64> = raw.iter().map(|g| g / s * TAU).collect();
            let (_, best) = max_window_sum(&gaps, k).unwrap();
            prop_assert!(best + 1e-9 >= TAU * k as f64 / gaps.len() as f64);
        }

        #[test]
        fn prop_chains_partition_all_positions(d in 1usize..12, removal_mask in 0u32..4096) {
            let removed: Vec<usize> = (0..d).filter(|i| removal_mask & (1 << i) != 0).collect();
            let chains = split_into_chains(d, &removed);
            let mut seen: Vec<usize> = chains.concat();
            seen.sort_unstable();
            let expected: Vec<usize> = (0..d).collect();
            prop_assert_eq!(seen, expected);
            if !removed.is_empty() {
                prop_assert_eq!(chains.len(), removed.len());
            }
        }
    }
}
