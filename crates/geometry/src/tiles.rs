//! Uniform spatial tiling and the per-tile dynamic kd forest.
//!
//! The spatial-sharding subsystem partitions the plane into a uniform grid
//! of square tiles ([`TileGrid`]) so that the MST build can run per tile
//! (each tile's points are indexed and spanned independently, then the tile
//! forests are stitched — see `antennae-graph`'s sharded builder) and so
//! that churn edits touch only tile-sized spatial indexes
//! ([`TiledKdForest`]).
//!
//! A tile assignment is **only a partition** of the live points: every
//! correctness argument downstream (the cut-property stitch, the bounded
//! star of the dynamic insert) holds for *any* partition, so a point outside
//! the grid's bounding box is simply clamped to the nearest boundary tile.
//! Tiling choices affect performance, never results.

use crate::bbox::Aabb;
use crate::dynamic::DynamicKdTree;
use crate::point::Point;

/// Relative slack applied wherever a tile's bounding-box distance prunes a
/// spatial search: a tile is only skipped when its box is farther than the
/// current bound by more than a few ulps, so floating-point rounding in the
/// box-distance computation can never hide a point that ties the bound.
const PRUNE_SLACK: f64 = 1.0 + 4.0 * f64::EPSILON;

/// A uniform grid of square tiles over a bounding box.
///
/// Tiles are indexed row-major: tile `(ix, iy)` has index `iy * nx + ix`.
/// [`TileGrid::tile_of`] is a pure, deterministic function of the query
/// point (points outside the box clamp to the nearest edge tile), so a
/// point's owning tile never depends on insertion order or on other points.
///
/// # Examples
///
/// ```
/// use antennae_geometry::{Aabb, Point};
/// use antennae_geometry::tiles::TileGrid;
///
/// let bbox = Aabb::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
/// let grid = TileGrid::new(bbox, 5.0);
/// assert_eq!(grid.tiles(), 4); // 2 x 2
/// assert_eq!(grid.tile_of(&Point::new(1.0, 1.0)), 0);
/// assert_eq!(grid.tile_of(&Point::new(9.0, 9.0)), 3);
/// // Points outside the box clamp to the nearest tile.
/// assert_eq!(grid.tile_of(&Point::new(-100.0, -100.0)), 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TileGrid {
    bbox: Aabb,
    tile: f64,
    nx: usize,
    ny: usize,
}

impl TileGrid {
    /// Grid over `bbox` with square tiles of side `tile_size` (must be
    /// positive and finite).  Degenerate boxes (zero width or height) get a
    /// single row/column of tiles along the degenerate axis.
    pub fn new(bbox: Aabb, tile_size: f64) -> Self {
        assert!(
            tile_size.is_finite() && tile_size > 0.0,
            "tile size must be positive and finite"
        );
        let nx = (bbox.width() / tile_size).ceil().max(1.0) as usize;
        let ny = (bbox.height() / tile_size).ceil().max(1.0) as usize;
        TileGrid {
            bbox,
            tile: tile_size,
            nx,
            ny,
        }
    }

    /// Grid over the bounding box of `points` with `per_axis × per_axis`
    /// tiles; `None` for an empty point set.
    pub fn with_tiles_per_axis(points: &[Point], per_axis: usize) -> Option<Self> {
        let per_axis = per_axis.max(1);
        let bbox = Aabb::from_points(points)?;
        let span = bbox.width().max(bbox.height());
        if span <= 0.0 {
            // All points coincide: one tile is the only sensible grid.
            return Some(TileGrid::new(bbox, 1.0));
        }
        Some(TileGrid::new(bbox, span / per_axis as f64))
    }

    /// Auto-sized grid for `points`: the tile side targets
    /// `target_per_tile` points per tile under a uniform density model
    /// (`side = sqrt(area · target / n)`), floored at the Lemma-1
    /// interaction radius scale `sqrt(area / n)` — the expected
    /// nearest-neighbour / `lmax` scale, below which a tile would be
    /// smaller than the edges that have to cross it and every edit would be
    /// a boundary event.  Returns `None` for an empty or degenerate
    /// (all-coincident) point set, where tiling cannot help.
    pub fn auto(points: &[Point], target_per_tile: usize) -> Option<Self> {
        let bbox = Aabb::from_points(points)?;
        let n = points.len().max(1);
        let area = bbox.area();
        if area <= 0.0 {
            return None;
        }
        let target = target_per_tile.max(1) as f64;
        let side = (area * target / n as f64).sqrt();
        let radius_floor = (area / n as f64).sqrt();
        Some(TileGrid::new(bbox, side.max(radius_floor)))
    }

    /// Total number of tiles (`nx × ny`).
    pub fn tiles(&self) -> usize {
        self.nx * self.ny
    }

    /// Tiles along the x axis.
    pub fn tiles_x(&self) -> usize {
        self.nx
    }

    /// Tiles along the y axis.
    pub fn tiles_y(&self) -> usize {
        self.ny
    }

    /// Side length of a tile.
    pub fn tile_size(&self) -> f64 {
        self.tile
    }

    /// The grid's bounding box.
    pub fn bbox(&self) -> &Aabb {
        &self.bbox
    }

    /// The owning tile of `p` (row-major index; out-of-box points clamp).
    pub fn tile_of(&self, p: &Point) -> usize {
        let ix = (((p.x - self.bbox.min.x) / self.tile).floor().max(0.0) as usize).min(self.nx - 1);
        let iy = (((p.y - self.bbox.min.y) / self.tile).floor().max(0.0) as usize).min(self.ny - 1);
        iy * self.nx + ix
    }

    /// The closed bounding box of tile `t`.
    ///
    /// Edge tiles extend to infinity conceptually (out-of-box points clamp
    /// into them), so their boxes are widened to the full half-plane on the
    /// outer side; this keeps box-distance pruning conservative for clamped
    /// points.
    pub fn tile_bbox(&self, t: usize) -> Aabb {
        let ix = t % self.nx;
        let iy = t / self.nx;
        let lo_x = if ix == 0 {
            f64::NEG_INFINITY
        } else {
            self.bbox.min.x + ix as f64 * self.tile
        };
        let lo_y = if iy == 0 {
            f64::NEG_INFINITY
        } else {
            self.bbox.min.y + iy as f64 * self.tile
        };
        let hi_x = if ix + 1 == self.nx {
            f64::INFINITY
        } else {
            self.bbox.min.x + (ix + 1) as f64 * self.tile
        };
        let hi_y = if iy + 1 == self.ny {
            f64::INFINITY
        } else {
            self.bbox.min.y + (iy + 1) as f64 * self.tile
        };
        Aabb {
            min: Point::new(lo_x, lo_y),
            max: Point::new(hi_x, hi_y),
        }
    }

    /// Minimum distance from `p` to tile `t`'s box (0 when inside).
    pub fn tile_distance(&self, t: usize, p: &Point) -> f64 {
        let bb = self.tile_bbox(t);
        let dx = (bb.min.x - p.x).max(0.0).max(p.x - bb.max.x);
        let dy = (bb.min.y - p.y).max(0.0).max(p.y - bb.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

/// A forest of per-tile [`DynamicKdTree`]s keyed by **global** slots.
///
/// Mirrors the `DynamicKdTree` query surface (closed-ball range queries with
/// ascending slot output, filtered nearest with smaller-slot tie-breaking)
/// while keeping every index tile-sized: an edit rebuilds at most one tile's
/// index, and amortized maintenance cost scales with the tile population,
/// not the deployment size.
///
/// **Exactness:** query results are a pure function of the live
/// `(slot, point)` set — identical to a single global `DynamicKdTree` over
/// the same entries.  Range queries union per-tile closed balls over every
/// tile whose box intersects the ball; nearest queries visit tiles in
/// box-distance order and never prune a tile that could tie the incumbent
/// (see [`TileGrid`] on the pruning slack).  The dynamic shard oracle pins
/// this equivalence edit-for-edit.
///
/// # Examples
///
/// ```
/// use antennae_geometry::{Aabb, Point};
/// use antennae_geometry::tiles::{TileGrid, TiledKdForest};
///
/// let grid = TileGrid::new(
///     Aabb::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0)),
///     2.0,
/// );
/// let mut forest = TiledKdForest::new(grid, &[]);
/// forest.insert(0, Point::new(0.5, 0.5));
/// forest.insert(1, Point::new(3.5, 3.5));
/// assert_eq!(forest.len_live(), 2);
/// // Nearest to the far corner, skipping nothing: slot 1.
/// let (slot, _) = forest.nearest_filtered_slot(&Point::new(4.0, 4.0), |_| false).unwrap();
/// assert_eq!(slot, 1);
/// ```
#[derive(Debug, Clone)]
pub struct TiledKdForest {
    grid: TileGrid,
    /// One dynamic index per tile (allocated lazily on first use — an empty
    /// `DynamicKdTree` is cheap, so "lazily" just means `new(&[])`).
    tiles: Vec<DynamicKdTree>,
    /// slot → owning tile (`u32::MAX` when the slot is not live here).
    tile_of_slot: Vec<u32>,
    live: usize,
}

const NO_TILE: u32 = u32::MAX;

impl TiledKdForest {
    /// Builds the forest over `entries` (distinct slots with their points).
    pub fn new(grid: TileGrid, entries: &[(usize, Point)]) -> Self {
        let tile_count = grid.tiles();
        let mut per_tile: Vec<Vec<(usize, Point)>> = vec![Vec::new(); tile_count];
        let max_slot = entries.iter().map(|&(s, _)| s + 1).max().unwrap_or(0);
        let mut tile_of_slot = vec![NO_TILE; max_slot];
        for &(slot, p) in entries {
            let t = grid.tile_of(&p);
            debug_assert_eq!(tile_of_slot[slot], NO_TILE, "duplicate slot {slot}");
            tile_of_slot[slot] = t as u32;
            per_tile[t].push((slot, p));
        }
        let tiles = per_tile
            .into_iter()
            .map(|entries| DynamicKdTree::new(&entries))
            .collect();
        TiledKdForest {
            grid,
            tiles,
            tile_of_slot,
            live: entries.len(),
        }
    }

    /// The grid this forest partitions by.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Number of live entries across all tiles.
    pub fn len_live(&self) -> usize {
        self.live
    }

    /// Number of tiles holding at least one live entry.
    pub fn occupied_tiles(&self) -> usize {
        self.tiles.iter().filter(|t| !t.is_empty()).count()
    }

    /// Total threshold-triggered rebuilds across every tile index.
    pub fn rebuild_count(&self) -> usize {
        self.tiles.iter().map(DynamicKdTree::rebuild_count).sum()
    }

    /// Inserts a live entry under a fresh `slot`.
    pub fn insert(&mut self, slot: usize, point: Point) {
        let t = self.grid.tile_of(&point);
        if slot >= self.tile_of_slot.len() {
            self.tile_of_slot.resize(slot + 1, NO_TILE);
        }
        debug_assert_eq!(self.tile_of_slot[slot], NO_TILE, "slot {slot} already live");
        self.tile_of_slot[slot] = t as u32;
        self.tiles[t].insert(slot, point);
        self.live += 1;
    }

    /// Removes the live entry under `slot`.
    pub fn remove(&mut self, slot: usize) {
        let t = self.tile_of_slot[slot];
        debug_assert_ne!(t, NO_TILE, "slot {slot} not live");
        self.tiles[t as usize].remove(slot);
        self.tile_of_slot[slot] = NO_TILE;
        self.live -= 1;
    }

    /// Moves the live entry under `slot` (re-routing it to its new tile).
    pub fn update(&mut self, slot: usize, point: Point) {
        self.remove(slot);
        self.insert(slot, point);
    }

    /// All live slots within `radius` of `query` (closed ball), ascending,
    /// written into `out`.  `scratch` is reusable query scratch.
    pub fn within_radius_with(
        &self,
        query: &Point,
        radius: f64,
        scratch: &mut Vec<usize>,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let mut tile_out: Vec<usize> = Vec::new();
        for (t, tile) in self.tiles.iter().enumerate() {
            if tile.is_empty() {
                continue;
            }
            // Conservative inclusion: only skip a tile strictly farther than
            // the (slack-widened) radius, so boundary points are never lost.
            if self.grid.tile_distance(t, query) > radius * PRUNE_SLACK {
                continue;
            }
            tile.within_radius_with(query, radius, scratch, &mut tile_out);
            out.extend_from_slice(&tile_out);
        }
        out.sort_unstable();
    }

    /// Nearest live slot to `query` for which `skip` returns `false`, as
    /// `(slot, distance)` — distance ties break towards the smaller slot,
    /// exactly like [`DynamicKdTree::nearest_filtered_slot`].
    pub fn nearest_filtered_slot<F: Fn(usize) -> bool>(
        &self,
        query: &Point,
        skip: F,
    ) -> Option<(usize, f64)> {
        // Visit tiles in box-distance order so the incumbent tightens fast,
        // then stop at the first tile that cannot beat (or tie) it.
        let mut order: Vec<(f64, usize)> = Vec::with_capacity(self.tiles.len());
        for (t, tile) in self.tiles.iter().enumerate() {
            if !tile.is_empty() {
                order.push((self.grid.tile_distance(t, query), t));
            }
        }
        order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let mut best: Option<(usize, f64)> = None;
        for &(box_dist, t) in &order {
            if let Some((_, bd)) = best {
                if box_dist > bd * PRUNE_SLACK {
                    break;
                }
            }
            if let Some((slot, d)) = self.tiles[t].nearest_filtered_slot(query, &skip) {
                let better = match best {
                    None => true,
                    // Lexicographic (distance, slot) minimum: the global
                    // smaller-slot tie-break, independent of tile order.
                    Some((bs, bd)) => d < bd || (d == bd && slot < bs),
                };
                if better {
                    best = Some((slot, d));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64) -> Vec<Point> {
        // Cheap deterministic LCG scatter (the vendored rand stays out of
        // unit-test hot paths here).
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    #[test]
    fn grid_partitions_every_point() {
        let pts = pseudo_points(200, 7);
        let grid = TileGrid::auto(&pts, 20).unwrap();
        for p in &pts {
            let t = grid.tile_of(p);
            assert!(t < grid.tiles());
            assert!(grid.tile_distance(t, p) == 0.0, "owning tile contains it");
        }
    }

    #[test]
    fn grid_clamps_outside_points() {
        let grid = TileGrid::new(Aabb::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)), 2.5);
        assert_eq!(grid.tiles(), 16);
        assert_eq!(grid.tile_of(&Point::new(-5.0, -5.0)), 0);
        assert_eq!(grid.tile_of(&Point::new(50.0, 50.0)), 15);
        // Edge tiles are half-open to infinity, so clamped points have
        // distance 0 to their owning tile.
        assert_eq!(grid.tile_distance(0, &Point::new(-5.0, -5.0)), 0.0);
        assert_eq!(grid.tile_distance(15, &Point::new(50.0, 50.0)), 0.0);
    }

    #[test]
    fn auto_grid_rejects_degenerate_inputs() {
        assert!(TileGrid::auto(&[], 16).is_none());
        let coincident = vec![Point::new(1.0, 1.0); 5];
        assert!(TileGrid::auto(&coincident, 16).is_none());
    }

    #[test]
    fn with_tiles_per_axis_covers_the_box() {
        let pts = pseudo_points(50, 3);
        let grid = TileGrid::with_tiles_per_axis(&pts, 3).unwrap();
        assert!(grid.tiles() >= 9);
        for p in &pts {
            assert!(grid.tile_of(p) < grid.tiles());
        }
    }

    /// Forest queries must agree with one global DynamicKdTree over the same
    /// live entries — range sets and filtered nearest, under churn.
    #[test]
    fn forest_matches_global_index_under_churn() {
        let pts = pseudo_points(120, 11);
        let grid = TileGrid::with_tiles_per_axis(&pts, 4).unwrap();
        let entries: Vec<(usize, Point)> = pts.iter().copied().enumerate().collect();
        let mut forest = TiledKdForest::new(grid, &entries);
        let mut global = DynamicKdTree::new(&entries);

        let moves = pseudo_points(40, 13);
        for (i, p) in moves.iter().enumerate() {
            let slot = (i * 7) % pts.len();
            forest.update(slot, *p);
            global.update(slot, *p);

            let query = Point::new(p.x * 0.5, p.y * 0.5);
            let mut scratch = Vec::new();
            let mut got = Vec::new();
            forest.within_radius_with(&query, 20.0, &mut scratch, &mut got);
            let mut want = Vec::new();
            global.within_radius_with(&query, 20.0, &mut scratch, &mut want);
            assert_eq!(got, want, "range mismatch after move {i}");

            let got_near = forest.nearest_filtered_slot(&query, |s| s == slot);
            let want_near = global.nearest_filtered_slot(&query, |s| s == slot);
            match (got_near, want_near) {
                (Some((gs, gd)), Some((ws, wd))) => {
                    assert_eq!(gs, ws, "nearest slot mismatch after move {i}");
                    assert_eq!(gd.to_bits(), wd.to_bits());
                }
                (a, b) => assert_eq!(a.is_none(), b.is_none(), "{a:?} vs {b:?}"),
            }
        }
        assert_eq!(forest.len_live(), global.len_live());
        assert!(forest.occupied_tiles() >= 1);
    }

    #[test]
    fn forest_handles_empty_and_growth() {
        let grid = TileGrid::new(Aabb::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0)), 4.0);
        let mut forest = TiledKdForest::new(grid, &[]);
        assert_eq!(forest.len_live(), 0);
        assert!(forest
            .nearest_filtered_slot(&Point::new(1.0, 1.0), |_| false)
            .is_none());
        forest.insert(5, Point::new(7.0, 7.0));
        // Out-of-box insert clamps to an edge tile instead of panicking.
        forest.insert(9, Point::new(100.0, -3.0));
        assert_eq!(forest.len_live(), 2);
        let (slot, _) = forest
            .nearest_filtered_slot(&Point::new(6.0, 6.0), |_| false)
            .unwrap();
        assert_eq!(slot, 5);
        forest.remove(5);
        assert_eq!(forest.len_live(), 1);
        assert_eq!(forest.occupied_tiles(), 1);
    }
}
