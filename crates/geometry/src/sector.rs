//! Circular sectors — the antenna beam model of the paper.
//!
//! A directional antenna located at a sensor `u` is modeled as a circular
//! sector with apex `u`, an angular *spread* (aperture) and a *radius*
//! (range).  A directed edge `u → v` exists in the communication graph iff
//! `v` lies inside one of `u`'s sectors.

use crate::angle::Angle;
use crate::point::Point;
use crate::{EPS, TAU};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A circular sector with apex `apex`, counterclockwise boundary starting at
/// direction `start`, aperture `spread` radians and radius `radius`.
///
/// The covered region is the set of points `p` with
/// `d(apex, p) ≤ radius` whose direction from the apex lies on the
/// counterclockwise arc `[start, start + spread]`.
/// A spread of `0` degenerates to a ray segment (the paper routinely uses
/// "antennae of angle 0" aimed exactly at a neighbour); a spread of `2π`
/// covers the full disk (an omnidirectional antenna).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sector {
    /// Apex (the sensor location).
    pub apex: Point,
    /// Direction of the clockwise-most boundary ray; the sector extends
    /// counterclockwise from here.
    pub start: Angle,
    /// Aperture in radians, in `[0, 2π]`.
    pub spread: f64,
    /// Range of the antenna.
    pub radius: f64,
}

impl Sector {
    /// Creates a sector from its counterclockwise start boundary.
    ///
    /// `spread` is clamped into `[0, 2π]`, `radius` must be non-negative
    /// (negative values are clamped to 0).
    pub fn new(apex: Point, start: Angle, spread: f64, radius: f64) -> Self {
        Sector {
            apex,
            start,
            spread: spread.clamp(0.0, TAU),
            radius: radius.max(0.0),
        }
    }

    /// Creates a sector whose *bisector* points in `center`, spanning
    /// `spread / 2` on each side.
    pub fn from_bisector(apex: Point, center: Angle, spread: f64, radius: f64) -> Self {
        let spread = spread.clamp(0.0, TAU);
        Sector::new(apex, center.rotate(-spread * 0.5), spread, radius)
    }

    /// Creates a sector covering the counterclockwise arc from the direction
    /// of `apex → a` to the direction of `apex → b`.
    pub fn between_targets(apex: Point, a: &Point, b: &Point, radius: f64) -> Self {
        let start = Angle::of_ray(&apex, a);
        let end = Angle::of_ray(&apex, b);
        Sector::new(apex, start, start.ccw_to(&end).radians(), radius)
    }

    /// Creates a zero-spread sector (a "beam of angle 0") aimed at `target`.
    pub fn beam_towards(apex: Point, target: &Point, radius: f64) -> Self {
        Sector::new(apex, Angle::of_ray(&apex, target), 0.0, radius)
    }

    /// Creates an omnidirectional sector (full disk) of the given radius.
    pub fn omnidirectional(apex: Point, radius: f64) -> Self {
        Sector::new(apex, Angle::ZERO, TAU, radius)
    }

    /// The minimal sector with apex `apex` and radius `radius` that covers
    /// every point of `targets`, or `None` when `targets` is empty.
    ///
    /// "Minimal" means minimal spread: the returned sector's boundary rays
    /// pass through two of the targets (the pair realising the largest
    /// counterclockwise gap is left *outside* the sector).  Targets that
    /// coincide with the apex are covered regardless of direction and are
    /// ignored for the spread computation.
    pub fn covering_targets(apex: Point, targets: &[Point], radius: f64) -> Option<Sector> {
        if targets.is_empty() {
            return None;
        }
        let mut dirs: Vec<f64> = targets
            .iter()
            .filter(|t| !t.coincident(&apex))
            .map(|t| Angle::of_ray(&apex, t).radians())
            .collect();
        if dirs.is_empty() {
            // All targets coincide with the apex: a degenerate beam suffices.
            return Some(Sector::new(apex, Angle::ZERO, 0.0, radius));
        }
        dirs.sort_by(f64::total_cmp);
        // Find the largest circular gap between consecutive directions.
        let mut best_gap = 0.0;
        let mut best_idx = 0;
        let n = dirs.len();
        for i in 0..n {
            let next = dirs[(i + 1) % n] + if i + 1 == n { TAU } else { 0.0 };
            let gap = next - dirs[i];
            if gap > best_gap {
                best_gap = gap;
                best_idx = i;
            }
        }
        let start = dirs[(best_idx + 1) % n];
        let spread = TAU - best_gap;
        Some(Sector::new(
            apex,
            Angle::from_radians(start),
            spread,
            radius,
        ))
    }

    /// Direction of the counterclockwise-most boundary ray.
    pub fn end(&self) -> Angle {
        self.start.rotate(self.spread)
    }

    /// Direction of the bisector of the sector.
    pub fn bisector(&self) -> Angle {
        self.start.rotate(self.spread * 0.5)
    }

    /// Returns `true` when `p` is covered by the sector under the crate-wide
    /// tolerance [`EPS`].
    pub fn contains(&self, p: &Point) -> bool {
        self.contains_eps(p, EPS)
    }

    /// Returns `true` when `p` is covered, with an explicit tolerance applied
    /// both to the radius and to the angular boundary.
    pub fn contains_eps(&self, p: &Point, eps: f64) -> bool {
        let dist = self.apex.distance(p);
        if dist > self.radius + eps {
            return false;
        }
        if dist <= eps {
            // The apex itself (or a coincident point) is always covered.
            return true;
        }
        let dir = Angle::of_ray(&self.apex, p);
        dir.within_ccw_arc(&self.start, self.spread, eps)
    }

    /// Area of the sector (`spread/2 · r²`), a proxy for radiated energy.
    pub fn area(&self) -> f64 {
        0.5 * self.spread * self.radius * self.radius
    }

    /// Returns a copy of the sector with a different radius.
    pub fn with_radius(&self, radius: f64) -> Sector {
        Sector::new(self.apex, self.start, self.spread, radius)
    }

    /// Returns a copy rotated counterclockwise by `delta` radians around its
    /// apex.
    pub fn rotated(&self, delta: f64) -> Sector {
        Sector::new(
            self.apex,
            self.start.rotate(delta),
            self.spread,
            self.radius,
        )
    }

    /// Returns `true` when this sector's arc fully contains the direction
    /// `dir` (ignoring the radius).
    pub fn covers_direction(&self, dir: &Angle, eps: f64) -> bool {
        dir.within_ccw_arc(&self.start, self.spread, eps)
    }
}

impl fmt::Display for Sector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Sector(apex={}, start={:.4}, spread={:.4}, r={:.4})",
            self.apex,
            self.start.radians(),
            self.spread,
            self.radius
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PI;
    use proptest::prelude::*;

    #[test]
    fn quarter_sector_contains_expected_points() {
        // Sector from 0° to 90°, radius 2, apex at origin.
        let s = Sector::new(Point::ORIGIN, Angle::ZERO, PI / 2.0, 2.0);
        assert!(s.contains(&Point::new(1.0, 1.0)));
        assert!(s.contains(&Point::new(2.0, 0.0))); // on boundary ray and radius
        assert!(s.contains(&Point::new(0.0, 2.0))); // on the other boundary
        assert!(!s.contains(&Point::new(-1.0, 1.0))); // outside the arc
        assert!(!s.contains(&Point::new(2.0, 2.0))); // outside the radius
        assert!(s.contains(&Point::ORIGIN)); // the apex
    }

    #[test]
    fn zero_spread_beam_covers_only_its_ray() {
        let target = Point::new(1.0, 1.0);
        let s = Sector::beam_towards(Point::ORIGIN, &target, 2.0);
        assert!(s.contains(&target));
        assert!(s.contains(&Point::new(0.5, 0.5)));
        assert!(!s.contains(&Point::new(1.0, 0.9)));
    }

    #[test]
    fn omnidirectional_covers_disk() {
        let s = Sector::omnidirectional(Point::new(1.0, 1.0), 1.0);
        assert!(s.contains(&Point::new(1.5, 1.5)));
        assert!(s.contains(&Point::new(0.0, 1.0)));
        assert!(!s.contains(&Point::new(3.0, 1.0)));
        assert!((s.area() - PI * 0.5 * 2.0 * 0.5).abs() < 1e-9 || s.area() > 0.0);
    }

    #[test]
    fn from_bisector_symmetric_coverage() {
        let s = Sector::from_bisector(Point::ORIGIN, Angle::from_degrees(90.0), PI / 2.0, 5.0);
        assert!(s.contains(&Point::new(0.0, 1.0)));
        assert!(s.contains(&Point::new(0.9, 1.0)));
        assert!(s.contains(&Point::new(-0.9, 1.0)));
        assert!(!s.contains(&Point::new(1.1, 0.0)));
    }

    #[test]
    fn between_targets_covers_both_and_arc_between() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        let s = Sector::between_targets(Point::ORIGIN, &a, &b, 2.0);
        assert!(s.contains(&a));
        assert!(s.contains(&b));
        assert!(s.contains(&Point::new(0.7, 0.7)));
        assert!(!s.contains(&Point::new(0.7, -0.7)));
        assert!((s.spread - PI / 2.0).abs() < 1e-9);
    }

    #[test]
    fn covering_targets_leaves_largest_gap_outside() {
        let apex = Point::ORIGIN;
        let targets = vec![
            Point::new(1.0, 0.1),
            Point::new(1.0, -0.1),
            Point::new(0.0, 1.0),
        ];
        let s = Sector::covering_targets(apex, &targets, 2.0).unwrap();
        for t in &targets {
            assert!(s.contains(t), "target {t} not covered by {s}");
        }
        // The spread should be well below 2π: the big gap (from +y around
        // through -x to just below +x) is excluded.
        assert!(s.spread < PI);
    }

    #[test]
    fn covering_targets_empty_and_degenerate() {
        assert!(Sector::covering_targets(Point::ORIGIN, &[], 1.0).is_none());
        let s = Sector::covering_targets(Point::ORIGIN, &[Point::ORIGIN], 1.0).unwrap();
        assert_eq!(s.spread, 0.0);
        assert!(s.contains(&Point::ORIGIN));
    }

    #[test]
    fn rotation_moves_coverage() {
        let s = Sector::new(Point::ORIGIN, Angle::ZERO, PI / 2.0, 2.0);
        let r = s.rotated(PI);
        assert!(r.contains(&Point::new(-1.0, -1.0)));
        assert!(!r.contains(&Point::new(1.0, 1.0)));
    }

    #[test]
    fn area_scales_with_spread_and_radius() {
        let s1 = Sector::new(Point::ORIGIN, Angle::ZERO, PI, 1.0);
        let s2 = Sector::new(Point::ORIGIN, Angle::ZERO, PI, 2.0);
        let s3 = Sector::new(Point::ORIGIN, Angle::ZERO, PI / 2.0, 1.0);
        assert!((s2.area() / s1.area() - 4.0).abs() < 1e-12);
        assert!((s1.area() / s3.area() - 2.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_covering_targets_always_covers(
            xs in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..20)
        ) {
            let apex = Point::ORIGIN;
            let targets: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let radius = targets.iter().map(|t| apex.distance(t)).fold(0.0, f64::max);
            let s = Sector::covering_targets(apex, &targets, radius).unwrap();
            for t in &targets {
                prop_assert!(s.contains_eps(t, 1e-6));
            }
        }

        #[test]
        fn prop_containment_invariant_under_rotation(
            px in -5.0..5.0f64, py in -5.0..5.0f64,
            start in 0.0..TAU, spread in 0.0..TAU,
            rot in 0.0..TAU,
        ) {
            let p = Point::new(px, py);
            let s = Sector::new(Point::ORIGIN, Angle::from_radians(start), spread, 10.0);
            let before = s.contains_eps(&p, 1e-7);
            let rotated_sector = s.rotated(rot);
            let rotated_point = p.rotated_around(&Point::ORIGIN, rot);
            let after = rotated_sector.contains_eps(&rotated_point, 1e-6);
            // Rotation may flip the verdict only for points extremely close to
            // the angular boundary; tolerate that by re-checking with a larger
            // epsilon when the verdicts differ.
            if before != after {
                prop_assert!(s.contains_eps(&p, 1e-4) != s.contains_eps(&p, 0.0)
                             || rotated_sector.contains_eps(&rotated_point, 1e-4)
                                != rotated_sector.contains_eps(&rotated_point, 0.0));
            }
        }

        #[test]
        fn prop_bisector_lies_inside_arc(start in 0.0..TAU, spread in 0.001..TAU) {
            let s = Sector::new(Point::ORIGIN, Angle::from_radians(start), spread, 1.0);
            prop_assert!(s.covers_direction(&s.bisector(), 1e-9));
        }
    }
}
