//! Rigid and similarity transforms of the plane.
//!
//! The orientation algorithms are invariant under translation, rotation and
//! uniform scaling of the input point set (the paper normalizes everything by
//! `lmax`); the property-test suites use [`Transform`] to assert exactly
//! that.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A similarity transform: uniform scale, then rotation, then translation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transform {
    /// Uniform scale factor (must be positive for an orientation-preserving
    /// similarity).
    pub scale: f64,
    /// Rotation in radians (counterclockwise).
    pub rotation: f64,
    /// Translation applied after scaling and rotating.
    pub translation: (f64, f64),
}

impl Transform {
    /// The identity transform.
    pub fn identity() -> Self {
        Transform {
            scale: 1.0,
            rotation: 0.0,
            translation: (0.0, 0.0),
        }
    }

    /// Pure translation.
    pub fn translation(dx: f64, dy: f64) -> Self {
        Transform {
            scale: 1.0,
            rotation: 0.0,
            translation: (dx, dy),
        }
    }

    /// Pure rotation around the origin.
    pub fn rotation(theta: f64) -> Self {
        Transform {
            scale: 1.0,
            rotation: theta,
            translation: (0.0, 0.0),
        }
    }

    /// Pure uniform scaling around the origin.
    pub fn scaling(s: f64) -> Self {
        Transform {
            scale: s,
            rotation: 0.0,
            translation: (0.0, 0.0),
        }
    }

    /// General similarity transform.
    pub fn similarity(scale: f64, rotation: f64, dx: f64, dy: f64) -> Self {
        Transform {
            scale,
            rotation,
            translation: (dx, dy),
        }
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: &Point) -> Point {
        let (s, c) = self.rotation.sin_cos();
        let x = self.scale * (p.x * c - p.y * s) + self.translation.0;
        let y = self.scale * (p.x * s + p.y * c) + self.translation.1;
        Point::new(x, y)
    }

    /// Applies the transform to every point of a slice.
    pub fn apply_all(&self, points: &[Point]) -> Vec<Point> {
        points.iter().map(|p| self.apply(p)).collect()
    }

    /// Composition: `self.then(other)` applies `self` first, then `other`.
    pub fn then(&self, other: &Transform) -> Transform {
        // other(self(p)) = other.scale * R(other.rot) * (self.scale * R(self.rot) p + self.t) + other.t
        let (s, c) = other.rotation.sin_cos();
        let tx =
            other.scale * (self.translation.0 * c - self.translation.1 * s) + other.translation.0;
        let ty =
            other.scale * (self.translation.0 * s + self.translation.1 * c) + other.translation.1;
        Transform {
            scale: self.scale * other.scale,
            rotation: self.rotation + other.rotation,
            translation: (tx, ty),
        }
    }

    /// Inverse transform (requires a non-zero scale).
    pub fn inverse(&self) -> Transform {
        let inv_scale = 1.0 / self.scale;
        let (s, c) = (-self.rotation).sin_cos();
        let tx = -inv_scale * (self.translation.0 * c - self.translation.1 * s);
        let ty = -inv_scale * (self.translation.0 * s + self.translation.1 * c);
        Transform {
            scale: inv_scale,
            rotation: -self.rotation,
            translation: (tx, ty),
        }
    }
}

impl Default for Transform {
    fn default() -> Self {
        Transform::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_leaves_points_unchanged() {
        let p = Point::new(3.0, -2.0);
        assert!(Transform::identity().apply(&p).approx_eq(&p, 1e-12));
    }

    #[test]
    fn translation_moves_points() {
        let t = Transform::translation(1.0, 2.0);
        assert!(t
            .apply(&Point::new(0.0, 0.0))
            .approx_eq(&Point::new(1.0, 2.0), 1e-12));
    }

    #[test]
    fn rotation_by_quarter_turn() {
        let t = Transform::rotation(std::f64::consts::FRAC_PI_2);
        assert!(t
            .apply(&Point::new(1.0, 0.0))
            .approx_eq(&Point::new(0.0, 1.0), 1e-12));
    }

    #[test]
    fn scaling_scales_distances() {
        let t = Transform::scaling(3.0);
        let a = t.apply(&Point::new(1.0, 0.0));
        let b = t.apply(&Point::new(0.0, 1.0));
        assert!((a.distance(&b) - 3.0 * 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn composition_applies_in_order() {
        let first = Transform::rotation(std::f64::consts::FRAC_PI_2);
        let second = Transform::translation(1.0, 0.0);
        let both = first.then(&second);
        let p = Point::new(1.0, 0.0);
        let expected = second.apply(&first.apply(&p));
        assert!(both.apply(&p).approx_eq(&expected, 1e-12));
    }

    proptest! {
        #[test]
        fn prop_inverse_round_trips(
            px in -100.0..100.0f64, py in -100.0..100.0f64,
            scale in 0.1..10.0f64, rot in 0.0..std::f64::consts::TAU,
            dx in -100.0..100.0f64, dy in -100.0..100.0f64,
        ) {
            let t = Transform::similarity(scale, rot, dx, dy);
            let p = Point::new(px, py);
            let q = t.inverse().apply(&t.apply(&p));
            prop_assert!(q.approx_eq(&p, 1e-6));
        }

        #[test]
        fn prop_similarity_scales_distances_uniformly(
            ax in -100.0..100.0f64, ay in -100.0..100.0f64,
            bx in -100.0..100.0f64, by in -100.0..100.0f64,
            scale in 0.1..10.0f64, rot in 0.0..std::f64::consts::TAU,
        ) {
            let t = Transform::similarity(scale, rot, 5.0, -3.0);
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let before = a.distance(&b);
            let after = t.apply(&a).distance(&t.apply(&b));
            prop_assert!((after - scale * before).abs() < 1e-6 * (1.0 + after));
        }
    }
}
