//! Normalized angles and counterclockwise angle arithmetic.
//!
//! The paper writes `∠uvw` for the **counterclockwise** angle at `v` between
//! the ray `v→u` and the ray `v→w`; all of its case analyses (Lemma 1,
//! Theorem 3, Theorems 5/6) are phrased in terms of such angles and of sums
//! of consecutive angular gaps around a vertex.  [`Angle`] captures a
//! direction normalized to `[0, 2π)` and provides the counterclockwise
//! difference operation those analyses need.

use crate::point::Point;
use crate::{PI, TAU};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// An angle in radians, normalized to the half-open interval `[0, 2π)`.
///
/// `Angle` is used both for absolute *directions* (measured counterclockwise
/// from the positive x axis) and for non-negative *spreads* (an antenna's
/// angular aperture).  Spreads of exactly `2π` (the omnidirectional case)
/// are represented by [`Angle::FULL`] via the dedicated constructor
/// [`Angle::full`] and survive normalization because spread arithmetic is
/// done on raw radians.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Angle {
    radians: f64,
}

impl Angle {
    /// The zero angle.
    pub const ZERO: Angle = Angle { radians: 0.0 };
    /// A full turn, 2π.  Only produced by [`Angle::full`]; the normalizing
    /// constructors map 2π to 0.
    pub const FULL: Angle = Angle { radians: TAU };
    /// Half turn, π.
    pub const HALF: Angle = Angle { radians: PI };
    /// Quarter turn, π/2.
    pub const QUARTER: Angle = Angle { radians: PI / 2.0 };

    /// Creates an angle from radians, normalizing into `[0, 2π)`.
    pub fn from_radians(radians: f64) -> Self {
        Angle {
            radians: normalize_radians(radians),
        }
    }

    /// Creates an angle from degrees, normalizing into `[0°, 360°)`.
    pub fn from_degrees(degrees: f64) -> Self {
        Angle::from_radians(degrees.to_radians())
    }

    /// The full turn `2π`, representing an omnidirectional spread.
    pub const fn full() -> Self {
        Angle::FULL
    }

    /// Raw value in radians (in `[0, 2π]`).
    #[inline]
    pub const fn radians(&self) -> f64 {
        self.radians
    }

    /// Value in degrees.
    #[inline]
    pub fn degrees(&self) -> f64 {
        self.radians.to_degrees()
    }

    /// Counterclockwise difference from `self` to `other`, i.e. how far
    /// `other` lies counterclockwise of `self`, in `[0, 2π)`.
    pub fn ccw_to(&self, other: &Angle) -> Angle {
        Angle::from_radians(other.radians - self.radians)
    }

    /// Smallest unsigned separation between the two directions, in `[0, π]`.
    pub fn separation(&self, other: &Angle) -> f64 {
        let d = (self.radians - other.radians).abs() % TAU;
        if d > PI {
            TAU - d
        } else {
            d
        }
    }

    /// Direction obtained by rotating `self` counterclockwise by `delta`
    /// radians.
    pub fn rotate(&self, delta: f64) -> Angle {
        Angle::from_radians(self.radians + delta)
    }

    /// The opposite direction (`self + π`).
    pub fn opposite(&self) -> Angle {
        self.rotate(PI)
    }

    /// Midpoint direction of the counterclockwise arc from `self` to `other`.
    pub fn ccw_midpoint(&self, other: &Angle) -> Angle {
        let span = self.ccw_to(other).radians();
        self.rotate(span * 0.5)
    }

    /// Returns `true` when this direction lies on the counterclockwise arc
    /// that starts at `from` and spans `spread` radians, within tolerance
    /// `eps` (the arc is widened by `eps` on both ends).
    pub fn within_ccw_arc(&self, from: &Angle, spread: f64, eps: f64) -> bool {
        if spread >= TAU - eps {
            return true;
        }
        let offset = from.ccw_to(self).radians();
        offset <= spread + eps || offset >= TAU - eps
    }

    /// Direction of the ray from `from` towards `to`.
    ///
    /// Returns [`Angle::ZERO`] when the two points coincide.
    pub fn of_ray(from: &Point, to: &Point) -> Angle {
        from.vector_to(to).direction()
    }

    /// The paper's `∠uvw`: counterclockwise angle at apex `v` from the ray
    /// `v→u` to the ray `v→w`, in `[0, 2π)`.
    pub fn ccw_at(u: &Point, v: &Point, w: &Point) -> Angle {
        let a = Angle::of_ray(v, u);
        let b = Angle::of_ray(v, w);
        a.ccw_to(&b)
    }

    /// The interior (unsigned, ≤ π) angle at apex `v` between rays `v→u` and
    /// `v→w`.
    pub fn interior_at(u: &Point, v: &Point, w: &Point) -> f64 {
        v.vector_to(u).angle_between(&v.vector_to(w))
    }

    /// Returns `true` when the angle equals `other` up to `eps` radians,
    /// treating 0 and 2π as identical directions.
    pub fn approx_eq(&self, other: &Angle, eps: f64) -> bool {
        self.separation(other) <= eps
    }
}

impl Default for Angle {
    fn default() -> Self {
        Angle::ZERO
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} rad ({:.2}°)", self.radians, self.degrees())
    }
}

impl Add for Angle {
    type Output = Angle;
    fn add(self, other: Angle) -> Angle {
        Angle::from_radians(self.radians + other.radians)
    }
}

impl Sub for Angle {
    type Output = Angle;
    fn sub(self, other: Angle) -> Angle {
        Angle::from_radians(self.radians - other.radians)
    }
}

/// Normalizes a raw radian value into `[0, 2π)`.
pub fn normalize_radians(radians: f64) -> f64 {
    if !radians.is_finite() {
        return 0.0;
    }
    let mut r = radians % TAU;
    if r < 0.0 {
        r += TAU;
    }
    // `% TAU` can return TAU itself for values just below a multiple of 2π
    // after the addition; clamp to keep the invariant half-open.
    if r >= TAU {
        r -= TAU;
    }
    r
}

/// Sums a slice of raw radian spreads without normalization (angular *sums*
/// such as the paper's φ_k may legitimately exceed 2π when several antennae
/// are wide).
pub fn spread_sum(spreads: &[f64]) -> f64 {
    spreads.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalization_wraps_into_range() {
        assert!((Angle::from_radians(TAU + 0.5).radians() - 0.5).abs() < 1e-12);
        assert!((Angle::from_radians(-0.5).radians() - (TAU - 0.5)).abs() < 1e-12);
        assert_eq!(Angle::from_radians(0.0).radians(), 0.0);
        assert_eq!(Angle::from_radians(TAU).radians(), 0.0);
    }

    #[test]
    fn degrees_round_trip() {
        let a = Angle::from_degrees(135.0);
        assert!((a.degrees() - 135.0).abs() < 1e-9);
        assert!((a.radians() - 3.0 * PI / 4.0).abs() < 1e-12);
    }

    #[test]
    fn ccw_difference() {
        let a = Angle::from_degrees(350.0);
        let b = Angle::from_degrees(10.0);
        assert!((a.ccw_to(&b).degrees() - 20.0).abs() < 1e-9);
        assert!((b.ccw_to(&a).degrees() - 340.0).abs() < 1e-9);
    }

    #[test]
    fn separation_is_smallest_arc() {
        let a = Angle::from_degrees(350.0);
        let b = Angle::from_degrees(10.0);
        assert!((a.separation(&b).to_degrees() - 20.0).abs() < 1e-9);
        assert!((b.separation(&a).to_degrees() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn arc_membership_handles_wraparound() {
        let from = Angle::from_degrees(350.0);
        let spread = 30.0_f64.to_radians();
        assert!(Angle::from_degrees(355.0).within_ccw_arc(&from, spread, 1e-9));
        assert!(Angle::from_degrees(10.0).within_ccw_arc(&from, spread, 1e-9));
        assert!(!Angle::from_degrees(30.0).within_ccw_arc(&from, spread, 1e-9));
        assert!(!Angle::from_degrees(340.0).within_ccw_arc(&from, spread, 1e-9));
    }

    #[test]
    fn full_spread_contains_everything() {
        let from = Angle::from_degrees(123.0);
        for deg in (0..360).step_by(7) {
            assert!(Angle::from_degrees(deg as f64).within_ccw_arc(&from, TAU, 1e-9));
        }
    }

    #[test]
    fn zero_spread_contains_only_start_direction() {
        let from = Angle::from_degrees(90.0);
        assert!(Angle::from_degrees(90.0).within_ccw_arc(&from, 0.0, 1e-9));
        assert!(!Angle::from_degrees(91.0).within_ccw_arc(&from, 0.0, 1e-9));
    }

    #[test]
    fn angle_at_apex_matches_hand_computation() {
        let v = Point::new(0.0, 0.0);
        let u = Point::new(1.0, 0.0);
        let w = Point::new(0.0, 1.0);
        // Counterclockwise from ray v→u (0°) to ray v→w (90°) is 90°.
        assert!((Angle::ccw_at(&u, &v, &w).degrees() - 90.0).abs() < 1e-9);
        // And the other way around it is 270°.
        assert!((Angle::ccw_at(&w, &v, &u).degrees() - 270.0).abs() < 1e-9);
        // The interior angle is 90° either way.
        assert!((Angle::interior_at(&u, &v, &w) - PI / 2.0).abs() < 1e-12);
        assert!((Angle::interior_at(&w, &v, &u) - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_of_wrapping_arc() {
        let a = Angle::from_degrees(350.0);
        let b = Angle::from_degrees(10.0);
        assert!((a.ccw_midpoint(&b).degrees() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn opposite_is_half_turn_away() {
        let a = Angle::from_degrees(30.0);
        assert!((a.opposite().degrees() - 210.0).abs() < 1e-9);
    }

    #[test]
    fn spread_sum_adds_raw_values() {
        assert!((spread_sum(&[PI, PI, PI]) - 3.0 * PI).abs() < 1e-12);
        assert_eq!(spread_sum(&[]), 0.0);
    }

    proptest! {
        #[test]
        fn prop_normalized_in_range(r in -100.0..100.0f64) {
            let a = Angle::from_radians(r);
            prop_assert!(a.radians() >= 0.0 && a.radians() < TAU);
        }

        #[test]
        fn prop_ccw_to_and_back_sums_to_full_turn(a in 0.0..TAU, b in 0.0..TAU) {
            let x = Angle::from_radians(a);
            let y = Angle::from_radians(b);
            let fwd = x.ccw_to(&y).radians();
            let bwd = y.ccw_to(&x).radians();
            if fwd > 1e-9 && bwd > 1e-9 {
                prop_assert!((fwd + bwd - TAU).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_rotation_composes(a in 0.0..TAU, d1 in -10.0..10.0f64, d2 in -10.0..10.0f64) {
            let x = Angle::from_radians(a);
            let lhs = x.rotate(d1).rotate(d2);
            let rhs = x.rotate(d1 + d2);
            prop_assert!(lhs.separation(&rhs) < 1e-9);
        }

        #[test]
        fn prop_arc_membership_consistent_with_offset(start in 0.0..TAU,
                                                      spread in 0.0..TAU,
                                                      probe in 0.0..TAU) {
            let from = Angle::from_radians(start);
            let p = Angle::from_radians(probe);
            let offset = from.ccw_to(&p).radians();
            let expect = offset <= spread + 1e-9 || offset >= TAU - 1e-9;
            prop_assert_eq!(p.within_ccw_arc(&from, spread, 1e-9), expect);
        }
    }
}
