//! Planar displacement vectors.

use crate::angle::Angle;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A displacement vector in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
}

impl Vector {
    /// The zero vector.
    pub const ZERO: Vector = Vector { x: 0.0, y: 0.0 };
    /// Unit vector along the positive x axis.
    pub const UNIT_X: Vector = Vector { x: 1.0, y: 0.0 };
    /// Unit vector along the positive y axis.
    pub const UNIT_Y: Vector = Vector { x: 0.0, y: 1.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// Unit vector pointing in direction `angle` (counterclockwise from the
    /// positive x axis).
    #[inline]
    pub fn from_angle(angle: Angle) -> Self {
        let (s, c) = angle.radians().sin_cos();
        Vector::new(c, s)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_squared(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z component of the 3D cross product).  Positive when
    /// `other` is counterclockwise from `self`.
    #[inline]
    pub fn cross(&self, other: &Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Returns the normalized vector, or `None` when the norm is (close to)
    /// zero.
    pub fn normalized(&self) -> Option<Vector> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(Vector::new(self.x / n, self.y / n))
        }
    }

    /// Direction of the vector as an [`Angle`] in `[0, 2π)`.
    ///
    /// The zero vector maps to angle 0 by convention.
    #[inline]
    pub fn direction(&self) -> Angle {
        Angle::from_radians(self.y.atan2(self.x))
    }

    /// The vector rotated counterclockwise by `theta` radians.
    pub fn rotated(&self, theta: f64) -> Vector {
        let (s, c) = theta.sin_cos();
        Vector::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Perpendicular vector (rotated +90°).
    #[inline]
    pub fn perp(&self) -> Vector {
        Vector::new(-self.y, self.x)
    }

    /// Unsigned angle between two vectors in `[0, π]`.
    pub fn angle_between(&self, other: &Vector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom <= f64::EPSILON {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0).acos()
    }

    /// Scalar projection of `self` onto `other`.
    pub fn scalar_projection(&self, other: &Vector) -> f64 {
        let n = other.norm();
        if n <= f64::EPSILON {
            0.0
        } else {
            self.dot(other) / n
        }
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.6}, {:.6}>", self.x, self.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    fn add(self, o: Vector) -> Vector {
        Vector::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Vector {
    type Output = Vector;
    fn sub(self, o: Vector) -> Vector {
        Vector::new(self.x - o.x, self.y - o.y)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    fn mul(self, s: f64) -> Vector {
        Vector::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    fn div(self, s: f64) -> Vector {
        Vector::new(self.x / s, self.y / s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PI;
    use proptest::prelude::*;

    #[test]
    fn norm_and_dot() {
        let v = Vector::new(3.0, 4.0);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        assert!((v.dot(&v) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn cross_sign_indicates_orientation() {
        let x = Vector::UNIT_X;
        let y = Vector::UNIT_Y;
        assert!(x.cross(&y) > 0.0);
        assert!(y.cross(&x) < 0.0);
        assert_eq!(x.cross(&x), 0.0);
    }

    #[test]
    fn normalization() {
        let v = Vector::new(0.0, 2.0);
        let n = v.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(Vector::ZERO.normalized().is_none());
    }

    #[test]
    fn direction_of_axes() {
        assert!((Vector::UNIT_X.direction().radians() - 0.0).abs() < 1e-12);
        assert!((Vector::UNIT_Y.direction().radians() - PI / 2.0).abs() < 1e-12);
        let neg_x = Vector::new(-1.0, 0.0);
        assert!((neg_x.direction().radians() - PI).abs() < 1e-12);
    }

    #[test]
    fn rotation_by_right_angle_equals_perp() {
        let v = Vector::new(2.0, 1.0);
        let r = v.rotated(PI / 2.0);
        let p = v.perp();
        assert!((r.x - p.x).abs() < 1e-12 && (r.y - p.y).abs() < 1e-12);
    }

    #[test]
    fn angle_between_is_symmetric() {
        let a = Vector::new(1.0, 0.0);
        let b = Vector::new(1.0, 1.0);
        assert!((a.angle_between(&b) - PI / 4.0).abs() < 1e-12);
        assert!((b.angle_between(&a) - PI / 4.0).abs() < 1e-12);
    }

    #[test]
    fn from_angle_round_trips() {
        for deg in [0.0_f64, 30.0, 90.0, 123.0, 250.0, 359.0] {
            let a = Angle::from_degrees(deg);
            let v = Vector::from_angle(a);
            assert!((v.direction().radians() - a.radians()).abs() < 1e-9);
        }
    }

    #[test]
    fn scalar_projection_on_axis() {
        let v = Vector::new(3.0, 4.0);
        assert!((v.scalar_projection(&Vector::UNIT_X) - 3.0).abs() < 1e-12);
        assert!((v.scalar_projection(&Vector::UNIT_Y) - 4.0).abs() < 1e-12);
        assert_eq!(v.scalar_projection(&Vector::ZERO), 0.0);
    }

    proptest! {
        #[test]
        fn prop_rotation_preserves_norm(x in -1e3..1e3f64, y in -1e3..1e3f64,
                                        theta in 0.0..std::f64::consts::TAU) {
            let v = Vector::new(x, y);
            prop_assert!((v.rotated(theta).norm() - v.norm()).abs() < 1e-6 * (1.0 + v.norm()));
        }

        #[test]
        fn prop_cauchy_schwarz(ax in -1e3..1e3f64, ay in -1e3..1e3f64,
                               bx in -1e3..1e3f64, by in -1e3..1e3f64) {
            let a = Vector::new(ax, ay);
            let b = Vector::new(bx, by);
            prop_assert!(a.dot(&b).abs() <= a.norm() * b.norm() + 1e-6);
        }

        #[test]
        fn prop_perp_is_orthogonal(x in -1e3..1e3f64, y in -1e3..1e3f64) {
            let v = Vector::new(x, y);
            prop_assert!(v.dot(&v.perp()).abs() < 1e-9 * (1.0 + v.norm_squared()));
        }
    }
}
