//! Circles and disks.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A circle (and its closed disk) with a center and radius.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point,
    /// Radius of the circle.
    pub radius: f64,
}

impl Circle {
    /// Creates a circle; negative radii are clamped to zero.
    pub fn new(center: Point, radius: f64) -> Self {
        Circle {
            center,
            radius: radius.max(0.0),
        }
    }

    /// The unit circle at the origin.
    pub fn unit() -> Self {
        Circle::new(Point::ORIGIN, 1.0)
    }

    /// Returns `true` when `p` lies in the closed disk (within `eps`).
    pub fn contains(&self, p: &Point, eps: f64) -> bool {
        self.center.distance(p) <= self.radius + eps
    }

    /// Returns `true` when `p` lies on the circle boundary (within `eps`).
    pub fn on_boundary(&self, p: &Point, eps: f64) -> bool {
        (self.center.distance(p) - self.radius).abs() <= eps
    }

    /// Area of the disk.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Circumference of the circle.
    pub fn circumference(&self) -> f64 {
        std::f64::consts::TAU * self.radius
    }

    /// Point on the circle at angle `theta` (counterclockwise from +x).
    pub fn point_at(&self, theta: f64) -> Point {
        Point::new(
            self.center.x + self.radius * theta.cos(),
            self.center.y + self.radius * theta.sin(),
        )
    }

    /// Returns `true` when the two closed disks intersect.
    pub fn intersects(&self, other: &Circle) -> bool {
        self.center.distance(&other.center) <= self.radius + other.radius
    }

    /// Smallest circle through two points (diameter circle).
    pub fn from_diameter(a: &Point, b: &Point) -> Circle {
        Circle::new(a.midpoint(b), a.distance(b) * 0.5)
    }

    /// Circumcircle of three points, or `None` when they are (nearly)
    /// collinear.
    pub fn circumcircle(a: &Point, b: &Point, c: &Point) -> Option<Circle> {
        let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
        if d.abs() < 1e-12 {
            return None;
        }
        let a2 = a.x * a.x + a.y * a.y;
        let b2 = b.x * b.x + b.y * b.y;
        let c2 = c.x * c.x + c.y * c.y;
        let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
        let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
        let center = Point::new(ux, uy);
        Some(Circle::new(center, center.distance(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        assert!(c.contains(&Point::new(2.0, 2.0), 1e-9));
        assert!(c.contains(&Point::new(3.0, 1.0), 1e-9)); // boundary
        assert!(!c.contains(&Point::new(3.5, 1.0), 1e-9));
        assert!(c.on_boundary(&Point::new(3.0, 1.0), 1e-9));
        assert!(!c.on_boundary(&Point::new(2.0, 1.0), 1e-9));
    }

    #[test]
    fn area_and_circumference() {
        let c = Circle::unit();
        assert!((c.area() - std::f64::consts::PI).abs() < 1e-12);
        assert!((c.circumference() - std::f64::consts::TAU).abs() < 1e-12);
    }

    #[test]
    fn point_at_angle_lies_on_boundary() {
        let c = Circle::new(Point::new(2.0, -1.0), 3.0);
        for k in 0..8 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_4;
            assert!(c.on_boundary(&c.point_at(theta), 1e-9));
        }
    }

    #[test]
    fn disk_intersection() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        let b = Circle::new(Point::new(1.5, 0.0), 1.0);
        let c = Circle::new(Point::new(3.0, 0.0), 0.5);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn circumcircle_of_right_triangle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        let c = Point::new(0.0, 2.0);
        let circ = Circle::circumcircle(&a, &b, &c).unwrap();
        // Hypotenuse midpoint is the circumcenter of a right triangle.
        assert!(circ.center.approx_eq(&Point::new(1.0, 1.0), 1e-9));
        assert!(circ.on_boundary(&a, 1e-9));
        assert!(circ.on_boundary(&b, 1e-9));
        assert!(circ.on_boundary(&c, 1e-9));
    }

    #[test]
    fn circumcircle_of_collinear_points_is_none() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        let c = Point::new(2.0, 2.0);
        assert!(Circle::circumcircle(&a, &b, &c).is_none());
    }

    #[test]
    fn diameter_circle_contains_both_points() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let c = Circle::from_diameter(&a, &b);
        assert!(c.on_boundary(&a, 1e-9));
        assert!(c.on_boundary(&b, 1e-9));
        assert!((c.radius - 2.0).abs() < 1e-12);
    }
}
