//! Geometric predicates with an explicit tolerance model.

use crate::point::Point;
use crate::EPS;

/// Orientation of an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// The triple makes a left turn.
    CounterClockwise,
    /// The triple makes a right turn.
    Clockwise,
    /// The three points are collinear (within tolerance).
    Collinear,
}

/// Twice the signed area of the triangle `(a, b, c)`; positive for a
/// counterclockwise triple.
#[inline]
pub fn cross_of_triple(a: &Point, b: &Point, c: &Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Orientation of the ordered triple `(a, b, c)` using the crate-wide
/// tolerance, scaled by the magnitude of the coordinates involved.
pub fn orientation(a: &Point, b: &Point, c: &Point) -> Orientation {
    orientation_eps(a, b, c, EPS)
}

/// Orientation of the ordered triple `(a, b, c)` with an explicit tolerance.
pub fn orientation_eps(a: &Point, b: &Point, c: &Point, eps: f64) -> Orientation {
    let cross = cross_of_triple(a, b, c);
    // Scale the tolerance by the extent of the triple so that the predicate
    // is meaningful both for unit-square instances and for kilometre-scale
    // deployments.
    let scale = (b.x - a.x)
        .abs()
        .max((b.y - a.y).abs())
        .max((c.x - a.x).abs())
        .max((c.y - a.y).abs())
        .max(1.0);
    if cross > eps * scale {
        Orientation::CounterClockwise
    } else if cross < -eps * scale {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// Returns `true` when the triple makes a strict left turn.
pub fn is_ccw(a: &Point, b: &Point, c: &Point) -> bool {
    orientation(a, b, c) == Orientation::CounterClockwise
}

/// Returns `true` when the three points are collinear within tolerance.
pub fn are_collinear(a: &Point, b: &Point, c: &Point) -> bool {
    orientation(a, b, c) == Orientation::Collinear
}

/// Returns `true` when point `d` lies strictly inside the circumcircle of the
/// counterclockwise triangle `(a, b, c)`.
///
/// Used by tests that validate MST/Delaunay-style properties of generated
/// instances.
pub fn in_circle(a: &Point, b: &Point, c: &Point, d: &Point) -> bool {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;
    let det = (adx * adx + ady * ady) * (bdx * cdy - cdx * bdy)
        - (bdx * bdx + bdy * bdy) * (adx * cdy - cdx * ady)
        + (cdx * cdx + cdy * cdy) * (adx * bdy - bdx * ady);
    det > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_of_simple_triples() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let up = Point::new(1.0, 1.0);
        let down = Point::new(1.0, -1.0);
        let on = Point::new(2.0, 0.0);
        assert_eq!(orientation(&a, &b, &up), Orientation::CounterClockwise);
        assert_eq!(orientation(&a, &b, &down), Orientation::Clockwise);
        assert_eq!(orientation(&a, &b, &on), Orientation::Collinear);
        assert!(is_ccw(&a, &b, &up));
        assert!(are_collinear(&a, &b, &on));
    }

    #[test]
    fn orientation_scales_with_coordinates() {
        // Large coordinates with a genuinely collinear triple.
        let a = Point::new(1e6, 1e6);
        let b = Point::new(2e6, 2e6);
        let c = Point::new(3e6, 3e6);
        assert_eq!(orientation(&a, &b, &c), Orientation::Collinear);
    }

    #[test]
    fn in_circle_detects_interior_points() {
        // Unit circle through (1,0), (0,1), (-1,0): origin is inside,
        // (2,0) is outside.
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        let c = Point::new(-1.0, 0.0);
        assert!(in_circle(&a, &b, &c, &Point::new(0.0, 0.0)));
        assert!(!in_circle(&a, &b, &c, &Point::new(2.0, 0.0)));
    }

    #[test]
    fn cross_of_triple_is_twice_signed_area() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 1.0);
        assert!((cross_of_triple(&a, &b, &c) - 1.0).abs() < 1e-12);
    }
}
