//! Convex hulls (Andrew's monotone chain).
//!
//! Used by the workload generators (hull-based extremal configurations) and
//! by sanity checks on generated point sets.

use crate::point::Point;
use crate::predicates::cross_of_triple;

/// Computes the convex hull of `points` using Andrew's monotone chain.
///
/// Returns the hull vertices in counterclockwise order, without repeating the
/// first vertex.  Collinear points on the hull boundary are *not* included.
/// Inputs with fewer than three distinct points return all distinct points in
/// lexicographic order.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.lex_cmp(b));
    pts.dedup_by(|a, b| a.coincident(b));
    let n = pts.len();
    if n < 3 {
        return pts;
    }

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for p in &pts {
        while hull.len() >= 2
            && cross_of_triple(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for p in pts.iter().rev() {
        while hull.len() >= lower_len
            && cross_of_triple(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }
    hull.pop(); // last point equals the first
    hull
}

/// Returns `true` when `p` lies inside or on the boundary of the convex hull
/// given as a counterclockwise vertex list.
pub fn hull_contains(hull: &[Point], p: &Point, eps: f64) -> bool {
    if hull.is_empty() {
        return false;
    }
    if hull.len() == 1 {
        return hull[0].approx_eq(p, eps);
    }
    if hull.len() == 2 {
        return crate::segment::Segment::new(hull[0], hull[1]).contains(p, eps);
    }
    for i in 0..hull.len() {
        let a = &hull[i];
        let b = &hull[(i + 1) % hull.len()];
        if cross_of_triple(a, b, p) < -eps {
            return false;
        }
    }
    true
}

/// Perimeter of a polygon given as an ordered vertex list.
pub fn polygon_perimeter(vertices: &[Point]) -> f64 {
    if vertices.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..vertices.len() {
        total += vertices[i].distance(&vertices[(i + 1) % vertices.len()]);
    }
    total
}

/// Area of a simple polygon given as an ordered vertex list (shoelace
/// formula); positive for counterclockwise orientation.
pub fn polygon_signed_area(vertices: &[Point]) -> f64 {
    if vertices.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..vertices.len() {
        let a = &vertices[i];
        let b = &vertices[(i + 1) % vertices.len()];
        acc += a.x * b.y - b.x * a.y;
    }
    acc * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
            Point::new(0.5, 0.5),
            Point::new(0.25, 0.75),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(polygon_signed_area(&hull) > 0.0);
        assert!((polygon_signed_area(&hull) - 1.0).abs() < 1e-12);
        assert!((polygon_perimeter(&hull) - 4.0).abs() < 1e-12);
        for p in &pts {
            assert!(hull_contains(&hull, p, 1e-9));
        }
        assert!(!hull_contains(&hull, &Point::new(2.0, 2.0), 1e-9));
    }

    #[test]
    fn hull_of_collinear_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        // Degenerate hull: only the two extremes survive the turn filter.
        assert!(hull.len() <= 2 || polygon_signed_area(&hull).abs() < 1e-9);
        assert!(hull_contains(
            &convex_hull(&pts[..2]),
            &Point::new(0.5, 0.5),
            1e-9
        ));
    }

    #[test]
    fn hull_of_few_points() {
        assert!(convex_hull(&[]).is_empty());
        let single = convex_hull(&[Point::new(1.0, 2.0)]);
        assert_eq!(single.len(), 1);
        let double = convex_hull(&[Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
        assert_eq!(double.len(), 2);
    }

    #[test]
    fn duplicate_points_are_deduplicated() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 1.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 3);
    }

    proptest! {
        #[test]
        fn prop_hull_contains_all_input_points(
            xs in proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 3..40)
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let hull = convex_hull(&pts);
            prop_assume!(hull.len() >= 3);
            for p in &pts {
                prop_assert!(hull_contains(&hull, p, 1e-6));
            }
        }

        #[test]
        fn prop_hull_is_convex(
            xs in proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 3..40)
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let hull = convex_hull(&pts);
            prop_assume!(hull.len() >= 3);
            for i in 0..hull.len() {
                let a = hull[i];
                let b = hull[(i + 1) % hull.len()];
                let c = hull[(i + 2) % hull.len()];
                prop_assert!(cross_of_triple(&a, &b, &c) > 0.0);
            }
        }
    }
}
