//! Line segments.

use crate::point::Point;
use crate::predicates::{orientation, Orientation};
use crate::vector::Vector;
use serde::{Deserialize, Serialize};

/// A closed line segment between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment between `a` and `b`.
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Squared length of the segment.
    pub fn length_squared(&self) -> f64 {
        self.a.distance_squared(&self.b)
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(&self.b)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(&self.b, t)
    }

    /// Distance from `p` to the closest point of the segment.
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// The point of the segment closest to `p`.
    pub fn closest_point(&self, p: &Point) -> Point {
        let ab: Vector = self.b - self.a;
        let denom = ab.norm_squared();
        if denom <= f64::EPSILON {
            return self.a;
        }
        let t = ((*p - self.a).dot(&ab) / denom).clamp(0.0, 1.0);
        self.at(t)
    }

    /// Returns `true` when `p` lies on the segment within distance `eps`.
    pub fn contains(&self, p: &Point, eps: f64) -> bool {
        self.distance_to_point(p) <= eps
    }

    /// Returns `true` when this segment properly or improperly intersects
    /// `other` (shared endpoints count as intersections).
    pub fn intersects(&self, other: &Segment) -> bool {
        let o1 = orientation(&self.a, &self.b, &other.a);
        let o2 = orientation(&self.a, &self.b, &other.b);
        let o3 = orientation(&other.a, &other.b, &self.a);
        let o4 = orientation(&other.a, &other.b, &self.b);

        if o1 != o2
            && o3 != o4
            && o1 != Orientation::Collinear
            && o2 != Orientation::Collinear
            && o3 != Orientation::Collinear
            && o4 != Orientation::Collinear
        {
            return true;
        }
        // Collinear special cases: check bounding-box overlap of the
        // collinear endpoint on the other segment.
        let on = |s: &Segment, p: &Point| {
            p.x <= s.a.x.max(s.b.x) + 1e-12
                && p.x >= s.a.x.min(s.b.x) - 1e-12
                && p.y <= s.a.y.max(s.b.y) + 1e-12
                && p.y >= s.a.y.min(s.b.y) - 1e-12
        };
        (o1 == Orientation::Collinear && on(self, &other.a))
            || (o2 == Orientation::Collinear && on(self, &other.b))
            || (o3 == Orientation::Collinear && on(other, &self.a))
            || (o4 == Orientation::Collinear && on(other, &self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_midpoint() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert!((s.length() - 5.0).abs() < 1e-12);
        assert!((s.length_squared() - 25.0).abs() < 1e-12);
        assert!(s.midpoint().approx_eq(&Point::new(1.5, 2.0), 1e-12));
    }

    #[test]
    fn closest_point_interior_and_endpoints() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert!(s
            .closest_point(&Point::new(5.0, 3.0))
            .approx_eq(&Point::new(5.0, 0.0), 1e-12));
        assert!(s
            .closest_point(&Point::new(-5.0, 3.0))
            .approx_eq(&Point::new(0.0, 0.0), 1e-12));
        assert!(s
            .closest_point(&Point::new(15.0, -3.0))
            .approx_eq(&Point::new(10.0, 0.0), 1e-12));
        assert!((s.distance_to_point(&Point::new(5.0, 3.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_closest_point_is_endpoint() {
        let s = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert!(s
            .closest_point(&Point::new(4.0, 5.0))
            .approx_eq(&Point::new(1.0, 1.0), 1e-12));
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let s2 = Segment::new(Point::new(0.0, 2.0), Point::new(2.0, 0.0));
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let s2 = Segment::new(Point::new(0.0, 1.0), Point::new(2.0, 1.0));
        assert!(!s1.intersects(&s2));
    }

    #[test]
    fn shared_endpoint_counts_as_intersection() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let s2 = Segment::new(Point::new(2.0, 0.0), Point::new(3.0, 5.0));
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn collinear_overlapping_segments_intersect() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        let s2 = Segment::new(Point::new(2.0, 0.0), Point::new(6.0, 0.0));
        assert!(s1.intersects(&s2));
        let s3 = Segment::new(Point::new(5.0, 0.0), Point::new(6.0, 0.0));
        assert!(!s1.intersects(&s3));
    }

    #[test]
    fn contains_points_on_segment() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert!(s.contains(&Point::new(1.0, 1.0), 1e-9));
        assert!(!s.contains(&Point::new(1.0, 1.5), 1e-9));
    }
}
