//! A 2-d tree (kd-tree) over points, supporting nearest-neighbour and range
//! queries.
//!
//! The Euclidean MST builder in `antennae-graph` uses the kd-tree to find the
//! nearest unconnected neighbour of each Prim frontier vertex, and the
//! simulation crate uses range queries to compute interference metrics
//! (receivers inside a sector).

use crate::bbox::Aabb;
use crate::point::Point;

/// A static kd-tree built once over a point set.
///
/// Indices returned by queries refer to positions in the original slice the
/// tree was built from.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    points: Vec<Point>,
    root: Option<usize>,
}

#[derive(Debug, Clone)]
struct Node {
    /// Index into `points`.
    point_idx: usize,
    /// Splitting axis: 0 for x, 1 for y.
    axis: u8,
    left: Option<usize>,
    right: Option<usize>,
}

impl KdTree {
    /// Builds a kd-tree over `points`.  An empty slice yields an empty tree.
    pub fn build(points: &[Point]) -> Self {
        let pts = points.to_vec();
        let mut idx: Vec<usize> = (0..pts.len()).collect();
        let mut nodes = Vec::with_capacity(pts.len());
        let root = Self::build_recursive(&pts, &mut idx[..], 0, &mut nodes);
        KdTree {
            nodes,
            points: pts,
            root,
        }
    }

    fn build_recursive(
        points: &[Point],
        idx: &mut [usize],
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> Option<usize> {
        if idx.is_empty() {
            return None;
        }
        let axis = (depth % 2) as u8;
        idx.sort_by(|&a, &b| {
            if axis == 0 {
                points[a].x.total_cmp(&points[b].x)
            } else {
                points[a].y.total_cmp(&points[b].y)
            }
        });
        let mid = idx.len() / 2;
        let point_idx = idx[mid];
        let node_pos = nodes.len();
        nodes.push(Node {
            point_idx,
            axis,
            left: None,
            right: None,
        });
        let (left_slice, rest) = idx.split_at_mut(mid);
        let right_slice = &mut rest[1..];
        let left = Self::build_recursive(points, left_slice, depth + 1, nodes);
        let right = Self::build_recursive(points, right_slice, depth + 1, nodes);
        nodes[node_pos].left = left;
        nodes[node_pos].right = right;
        Some(node_pos)
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the tree stores no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Nearest neighbour of `query` among the stored points, optionally
    /// skipping indices for which `skip` returns `true` (e.g. the query point
    /// itself, or points already attached to a growing MST).
    ///
    /// Returns `(index, distance)` or `None` when every point is skipped.
    pub fn nearest_filtered<F: Fn(usize) -> bool>(
        &self,
        query: &Point,
        skip: F,
    ) -> Option<(usize, f64)> {
        let root = self.root?;
        let mut best: Option<(usize, f64)> = None;
        self.nearest_rec(root, query, &skip, &mut best);
        best
    }

    /// Nearest neighbour of `query` (no filtering).
    pub fn nearest(&self, query: &Point) -> Option<(usize, f64)> {
        self.nearest_filtered(query, |_| false)
    }

    fn nearest_rec<F: Fn(usize) -> bool>(
        &self,
        node_idx: usize,
        query: &Point,
        skip: &F,
        best: &mut Option<(usize, f64)>,
    ) {
        let node = &self.nodes[node_idx];
        let p = &self.points[node.point_idx];
        if !skip(node.point_idx) {
            let d = query.distance(p);
            if best.is_none_or(|(_, bd)| d < bd) {
                *best = Some((node.point_idx, d));
            }
        }
        let diff = if node.axis == 0 {
            query.x - p.x
        } else {
            query.y - p.y
        };
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.nearest_rec(n, query, skip, best);
        }
        let must_check_far = best.is_none_or(|(_, bd)| diff.abs() < bd);
        if must_check_far {
            if let Some(f) = far {
                self.nearest_rec(f, query, skip, best);
            }
        }
    }

    /// All indices of points within `radius` of `query` (closed ball).
    pub fn within_radius(&self, query: &Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.radius_rec(root, query, radius, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn radius_rec(&self, node_idx: usize, query: &Point, radius: f64, out: &mut Vec<usize>) {
        let node = &self.nodes[node_idx];
        let p = &self.points[node.point_idx];
        if query.distance(p) <= radius {
            out.push(node.point_idx);
        }
        let diff = if node.axis == 0 {
            query.x - p.x
        } else {
            query.y - p.y
        };
        if diff <= radius {
            if let Some(l) = node.left {
                self.radius_rec(l, query, radius, out);
            }
        }
        if -diff <= radius {
            if let Some(r) = node.right {
                self.radius_rec(r, query, radius, out);
            }
        }
    }

    /// All indices of points inside the axis-aligned box.
    pub fn within_box(&self, bbox: &Aabb) -> Vec<usize> {
        let mut out: Vec<usize> = (0..self.points.len())
            .filter(|&i| bbox.contains(&self.points[i]))
            .collect();
        out.sort_unstable();
        out
    }

    /// The `k` nearest neighbours of `query`, sorted by increasing distance.
    pub fn k_nearest(&self, query: &Point, k: usize) -> Vec<(usize, f64)> {
        // Simple approach: keep a sorted vector of the best k.  The tree is
        // small (thousands of sensors), so this is plenty fast and simpler to
        // verify than a heap-based pruning search.
        let mut all: Vec<(usize, f64)> = (0..self.points.len())
            .map(|i| (i, query.distance(&self.points[i])))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_points() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(-1.0, 3.0),
            Point::new(4.0, -2.0),
            Point::new(0.5, 0.4),
        ]
    }

    #[test]
    fn empty_tree_queries() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert!(t.nearest(&Point::ORIGIN).is_none());
        assert!(t.within_radius(&Point::ORIGIN, 10.0).is_empty());
    }

    #[test]
    fn nearest_neighbour_simple() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let (idx, d) = t.nearest(&Point::new(0.6, 0.5)).unwrap();
        assert_eq!(idx, 5);
        assert!(d < 0.2);
    }

    #[test]
    fn nearest_with_skip_excludes_self() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let (idx, _) = t.nearest_filtered(&pts[0], |i| i == 0).unwrap();
        assert_eq!(idx, 5); // (0.5, 0.4) is the closest other point
    }

    #[test]
    fn within_radius_returns_ball_members() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let hits = t.within_radius(&Point::new(0.0, 0.0), 1.5);
        assert_eq!(hits, vec![0, 1, 5]);
    }

    #[test]
    fn within_box_query() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let bbox = Aabb::new(Point::new(-0.1, -0.1), Point::new(1.1, 1.1));
        assert_eq!(t.within_box(&bbox), vec![0, 1, 5]);
    }

    #[test]
    fn k_nearest_is_sorted() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let knn = t.k_nearest(&Point::new(0.0, 0.0), 3);
        assert_eq!(knn.len(), 3);
        assert!(knn.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(knn[0].0, 0);
    }

    proptest! {
        #[test]
        fn prop_nearest_matches_linear_scan(
            xs in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..60),
            qx in -50.0..50.0f64, qy in -50.0..50.0f64,
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let q = Point::new(qx, qy);
            let t = KdTree::build(&pts);
            let (idx, d) = t.nearest(&q).unwrap();
            let best_lin = pts.iter().map(|p| q.distance(p)).fold(f64::INFINITY, f64::min);
            prop_assert!((d - best_lin).abs() < 1e-9);
            prop_assert!((q.distance(&pts[idx]) - d).abs() < 1e-12);
        }

        #[test]
        fn prop_radius_query_matches_linear_scan(
            xs in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..60),
            qx in -50.0..50.0f64, qy in -50.0..50.0f64,
            r in 0.0..100.0f64,
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let q = Point::new(qx, qy);
            let t = KdTree::build(&pts);
            let mut expected: Vec<usize> = (0..pts.len()).filter(|&i| q.distance(&pts[i]) <= r).collect();
            expected.sort_unstable();
            prop_assert_eq!(t.within_radius(&q, r), expected);
        }
    }
}
