//! A 2-d tree (kd-tree) over points, supporting nearest-neighbour, k-nearest,
//! nearest-foreign-component and range queries.
//!
//! The sub-quadratic Euclidean MST builder in `antennae-graph` drives its
//! Borůvka rounds through [`KdIndex::nearest_foreign`] (the nearest point
//! that belongs to a *different* connected component), and the simulation
//! crate uses range queries to compute interference metrics (receivers
//! inside a sector).
//!
//! Ties on distance are broken towards the smaller point index everywhere, so
//! every query is deterministic even on degenerate inputs (duplicate points,
//! co-circular neighbours) **and independent of the tree's internal layout**:
//! a query's answer is a pure function of the point set.  The MST builder
//! relies on that determinism for its tie-broken total order on candidate
//! edges, and the parallel construction below relies on the layout
//! independence for its bit-equality guarantee.
//!
//! # Two flavours
//!
//! * [`KdIndex`] — the index alone, borrowing the point slice at every
//!   query.  This is what the million-sensor build pipeline uses: the MST
//!   engine already owns the points, so indexing them must not copy them.
//! * [`KdTree`] — an index bundled with an owned copy of the points, for
//!   callers that want a self-contained value (the verification session, the
//!   dynamic snapshot index).  [`KdTree::build_owned`] takes the point
//!   vector by value, so handing ownership over costs nothing; only
//!   [`KdTree::build`] on a borrowed slice pays one copy.
//!
//! # Construction
//!
//! Nodes are found by **median selection** (`select_nth_unstable_by`), not
//! by sorting: each level partitions its slice around the median of the
//! splitting axis in O(len), for O(n log n) total.  (An earlier
//! implementation re-sorted the full index slice with a stable sort at every
//! level — O(n log² n) with a large constant, and the dominant cost of
//! million-point builds.)  [`KdIndex::build_with_threads`] additionally fans
//! subtree construction out over worker threads: the top of the tree is
//! partitioned serially until the pending subtrees are small enough, then
//! each subtree is built as an independent task.  The partition performed
//! for a given subtree is the same whether it runs inline or in a task, so
//! serial and parallel builds produce the *identical logical tree* — and
//! queries would agree even if they didn't, by the layout independence noted
//! above.

use crate::bbox::Aabb;
use crate::point::Point;
use antennae_parallel::parallel_map;
use std::sync::Mutex;

/// Sentinel for "no node" in the flat child links.
const NONE: u32 = u32::MAX;

/// Smallest point count for which a parallel build is attempted; below this
/// the thread-scope setup costs more than the whole build.
const PARALLEL_BUILD_MIN: usize = 8192;

/// A node of the flat kd-tree: 12 bytes instead of the 40 of the earlier
/// boxed-`Option<usize>` layout (u32 ids are exact for every supported
/// instance size, and the splitting axis is derived from the node's depth
/// during traversal instead of being stored).  At a million sensors this is
/// the difference between a 12 MB and a 40 MB node array — and the smaller
/// stride is measurably kinder to the cache on query-heavy workloads.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Index into the point slice the index was built over.
    point: u32,
    left: u32,
    right: u32,
}

/// A kd-tree index over an *externally owned* point slice.
///
/// Every query takes the point slice as a parameter; the caller must pass
/// the same points (same order, same length) the index was built over.
/// This is the zero-copy flavour the Euclidean MST engine builds over the
/// instance's own point storage — see the module docs for the owning
/// [`KdTree`] wrapper.
#[derive(Debug, Clone)]
pub struct KdIndex {
    nodes: Vec<Node>,
    root: u32,
}

/// A subtree deferred to the parallel phase of the build: the (already
/// partitioned) point ids it spans, the splitting axis at its root, and the
/// parent slot to patch once built.  The id vector sits behind a `Mutex`
/// only so the worker can take ownership through the `&Task` that
/// `parallel_map` hands it — each task is claimed exactly once.
struct Task {
    idx: Mutex<Vec<u32>>,
    axis: u8,
    parent: u32,
    is_left: bool,
}

impl KdIndex {
    /// Builds the index over `points` sequentially.  An empty slice yields
    /// an empty index.
    pub fn build(points: &[Point]) -> Self {
        Self::build_with_threads(points, 1)
    }

    /// Builds the index over `points` using up to `threads` workers.
    ///
    /// The tree is partitioned serially from the root until the pending
    /// subtrees are small enough to balance across workers, then each
    /// subtree is built as an independent task over
    /// [`antennae_parallel::parallel_map`].  The result is the identical
    /// logical tree for every thread count (each subtree performs the same
    /// median partition wherever it runs), so parallel construction is
    /// invisible to queries.
    pub fn build_with_threads(points: &[Point], threads: usize) -> Self {
        let n = points.len();
        assert!(
            n < NONE as usize,
            "kd-tree supports at most 2^32 - 1 points"
        );
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let mut nodes: Vec<Node> = Vec::with_capacity(n);
        if n == 0 {
            return KdIndex { nodes, root: NONE };
        }
        if threads <= 1 || n < PARALLEL_BUILD_MIN {
            let root = build_rec(points, &mut idx, 0, &mut nodes);
            return KdIndex { nodes, root };
        }

        // Serial skeleton: partition until subtrees reach the task size.
        // ~8 tasks per worker keeps the fan-out load-balanced even when the
        // point distribution makes subtree costs uneven.
        let task_len = (n / (threads * 8)).max(PARALLEL_BUILD_MIN / 16);
        let mut tasks: Vec<Task> = Vec::new();
        let mut root = skeleton_rec(points, &mut idx, 0, &mut nodes, &mut tasks, task_len);

        // Fan out: each task builds its subtree into a local node arena with
        // local child links.
        let built: Vec<Vec<Node>> = parallel_map(&tasks, threads, |task| {
            let mut idx = std::mem::take(&mut *task.idx.lock().expect("task idx poisoned"));
            let mut local = Vec::with_capacity(idx.len());
            build_rec(points, &mut idx, task.axis, &mut local);
            local
        });

        // Splice: shift each arena's links by its offset and patch the
        // parent slot (a subtree's root is the first node its arena pushed).
        for (task, mut local) in tasks.iter().zip(built) {
            let offset = nodes.len() as u32;
            for node in &mut local {
                if node.left != NONE {
                    node.left += offset;
                }
                if node.right != NONE {
                    node.right += offset;
                }
            }
            nodes.extend(local);
            if task.parent == NONE {
                root = offset;
            } else if task.is_left {
                nodes[task.parent as usize].left = offset;
            } else {
                nodes[task.parent as usize].right = offset;
            }
        }
        KdIndex { nodes, root }
    }

    /// Number of points indexed.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the index covers no points.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nearest neighbour of `query` among the indexed points, optionally
    /// skipping indices for which `skip` returns `true` (e.g. the query
    /// point itself, or points already attached to a growing MST).
    ///
    /// Returns `(index, distance)` or `None` when every point is skipped.
    /// Distance ties are broken towards the smaller index.
    pub fn nearest_filtered<F: Fn(usize) -> bool>(
        &self,
        points: &[Point],
        query: &Point,
        skip: F,
    ) -> Option<(usize, f64)> {
        if self.root == NONE {
            return None;
        }
        // Sentinel seed: accepts any real point, never reported.
        let mut best = (usize::MAX, f64::INFINITY);
        self.nearest_rec(points, self.root, 0, query, &skip, &mut best);
        (best.0 != usize::MAX).then(|| (best.0, best.1.sqrt()))
    }

    /// Nearest point to `query` whose component label differs from `label`.
    ///
    /// `labels[i]` is the component of indexed point `i`; points whose label
    /// equals `label` are invisible to the search.  This is the inner query
    /// of the kd-tree Borůvka MST engine: each Borůvka round asks, for every
    /// vertex, for the nearest vertex *outside* its own component.  Distance
    /// ties are broken towards the smaller index so that concurrent
    /// component searches agree on a single total order of candidate edges.
    ///
    /// Returns `(index, distance)`, or `None` when every point carries
    /// `label`.
    pub fn nearest_foreign(
        &self,
        points: &[Point],
        query: &Point,
        labels: &[usize],
        label: usize,
    ) -> Option<(usize, f64)> {
        self.nearest_foreign_within(points, query, labels, label, f64::INFINITY)
    }

    /// Like [`KdIndex::nearest_foreign`], but only reports points at
    /// distance `max_dist` or closer.
    ///
    /// Subtrees beyond `max_dist` are pruned from the start, which is what
    /// makes the Borůvka engine's late rounds cheap: once one vertex of a
    /// component has found a nearby foreign point, its component-mates search
    /// only within that radius.  A point at exactly `max_dist` is still
    /// reported (the bound behaves like an already-seen candidate with an
    /// infinite index), so a component's minimum candidate edge under the
    /// `(distance, index)` tie order is never lost.  The bound is widened by
    /// a few ulps before use — callers commonly pass a distance a previous
    /// query returned, and the `sqrt`/square round-trip may otherwise land
    /// one ulp *below* the tied candidate's squared distance and hide it; the
    /// widening can only admit marginally farther points, never lose one,
    /// and a returned point is always the true nearest foreigner.
    pub fn nearest_foreign_within(
        &self,
        points: &[Point],
        query: &Point,
        labels: &[usize],
        label: usize,
        max_dist: f64,
    ) -> Option<(usize, f64)> {
        assert_eq!(labels.len(), self.len(), "one label per indexed point");
        self.nearest_filtered_within(points, query, |i| labels[i] == label, max_dist)
    }

    /// Like [`KdIndex::nearest_filtered`], but only reports points at
    /// distance `max_dist` or closer — the general-predicate sibling of
    /// [`KdIndex::nearest_foreign_within`], with the same inclusive,
    /// ulp-widened bound semantics (a returned point is always the true
    /// nearest non-skipped point; `None` only ever hides strictly farther
    /// ones).  The sharded MST stitch uses it with a
    /// same-tile-or-same-component skip.
    pub fn nearest_filtered_within<F: Fn(usize) -> bool>(
        &self,
        points: &[Point],
        query: &Point,
        skip: F,
        max_dist: f64,
    ) -> Option<(usize, f64)> {
        if self.root == NONE {
            return None;
        }
        let bound_sq = (max_dist * max_dist) * (1.0 + 4.0 * f64::EPSILON);
        let mut best = (usize::MAX, bound_sq);
        self.nearest_rec(points, self.root, 0, query, &skip, &mut best);
        (best.0 != usize::MAX).then(|| (best.0, best.1.sqrt()))
    }

    /// Nearest neighbour of `query` (no filtering).
    pub fn nearest(&self, points: &[Point], query: &Point) -> Option<(usize, f64)> {
        self.nearest_filtered(points, query, |_| false)
    }

    /// Recursive nearest search over *squared* distances (saves a `sqrt` per
    /// visited node).  `best` is `(index, squared distance)` with
    /// `usize::MAX` as the not-yet-found sentinel.  The splitting axis is
    /// the depth parity, flipped on the way down.
    fn nearest_rec<F: Fn(usize) -> bool>(
        &self,
        points: &[Point],
        node_idx: u32,
        axis: u8,
        query: &Point,
        skip: &F,
        best: &mut (usize, f64),
    ) {
        let node = self.nodes[node_idx as usize];
        let point_idx = node.point as usize;
        let p = &points[point_idx];
        if !skip(point_idx) {
            let d2 = query.distance_squared(p);
            if d2 < best.1 || (d2 == best.1 && point_idx < best.0) {
                *best = (point_idx, d2);
            }
        }
        let diff = if axis == 0 {
            query.x - p.x
        } else {
            query.y - p.y
        };
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if near != NONE {
            self.nearest_rec(points, near, axis ^ 1, query, skip, best);
        }
        // `<=` (not `<`): with index tie-breaking an equally distant,
        // smaller-indexed point on the far side must still be found.
        if diff * diff <= best.1 && far != NONE {
            self.nearest_rec(points, far, axis ^ 1, query, skip, best);
        }
    }

    /// All indices of points within `radius` of `query` (closed ball).
    pub fn within_radius(&self, points: &[Point], query: &Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.within_radius_into(points, query, radius, &mut out);
        out
    }

    /// Like [`KdIndex::within_radius`], but clears and fills a caller-owned
    /// buffer instead of allocating a fresh `Vec` per query.
    ///
    /// The verification engine in `antennae-core` issues one range query per
    /// sensor while rebuilding an induced communication digraph; reusing a
    /// single buffer across the whole sweep keeps that loop allocation-free.
    /// Results are sorted ascending, exactly as [`KdIndex::within_radius`]
    /// returns them.
    pub fn within_radius_into(
        &self,
        points: &[Point],
        query: &Point,
        radius: f64,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        if self.root != NONE {
            self.radius_rec(points, self.root, 0, query, radius, out);
        }
        out.sort_unstable();
    }

    fn radius_rec(
        &self,
        points: &[Point],
        node_idx: u32,
        axis: u8,
        query: &Point,
        radius: f64,
        out: &mut Vec<usize>,
    ) {
        let node = self.nodes[node_idx as usize];
        let p = &points[node.point as usize];
        if query.distance(p) <= radius {
            out.push(node.point as usize);
        }
        let diff = if axis == 0 {
            query.x - p.x
        } else {
            query.y - p.y
        };
        if diff <= radius && node.left != NONE {
            self.radius_rec(points, node.left, axis ^ 1, query, radius, out);
        }
        if -diff <= radius && node.right != NONE {
            self.radius_rec(points, node.right, axis ^ 1, query, radius, out);
        }
    }

    /// The `k` nearest neighbours of `query`, sorted by increasing distance
    /// (ties towards the smaller index).
    ///
    /// The search keeps the current best `k` candidates and prunes every
    /// subtree whose splitting plane is farther than the worst of them, so a
    /// query costs O(k + log n) on typical inputs rather than the O(n log n)
    /// of a scan-and-sort.
    pub fn k_nearest(&self, points: &[Point], query: &Point, k: usize) -> Vec<(usize, f64)> {
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(k.min(self.len()) + 1);
        if k == 0 {
            return best;
        }
        if self.root != NONE {
            self.k_nearest_rec(points, self.root, 0, query, k, &mut best);
        }
        best
    }

    fn k_nearest_rec(
        &self,
        points: &[Point],
        node_idx: u32,
        axis: u8,
        query: &Point,
        k: usize,
        best: &mut Vec<(usize, f64)>,
    ) {
        let node = self.nodes[node_idx as usize];
        let point_idx = node.point as usize;
        let p = &points[point_idx];
        let d = query.distance(p);
        // Insert into the sorted candidate list (worst candidate last).
        let pos = best
            .iter()
            .position(|&(bi, bd)| d < bd || (d == bd && point_idx < bi))
            .unwrap_or(best.len());
        if pos < k {
            best.insert(pos, (point_idx, d));
            best.truncate(k);
        }
        let diff = if axis == 0 {
            query.x - p.x
        } else {
            query.y - p.y
        };
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if near != NONE {
            self.k_nearest_rec(points, near, axis ^ 1, query, k, best);
        }
        let must_check_far = best.len() < k || best.last().is_none_or(|&(_, wd)| diff.abs() <= wd);
        if must_check_far && far != NONE {
            self.k_nearest_rec(points, far, axis ^ 1, query, k, best);
        }
    }
}

/// Sequential recursive build over a (sub)slice of point ids: partition
/// around the median of the splitting axis in O(len) with
/// `select_nth_unstable_by`, push the node, recurse into the halves.  Child
/// links are indices into `nodes` — local to whatever arena the caller is
/// filling, which is what lets parallel subtree tasks build into private
/// arenas that are spliced (offset) afterwards.
fn build_rec(points: &[Point], idx: &mut [u32], axis: u8, nodes: &mut Vec<Node>) -> u32 {
    if idx.is_empty() {
        return NONE;
    }
    let mid = idx.len() / 2;
    if idx.len() > 1 {
        idx.select_nth_unstable_by(mid, |&a, &b| {
            let (pa, pb) = (&points[a as usize], &points[b as usize]);
            if axis == 0 {
                pa.x.total_cmp(&pb.x)
            } else {
                pa.y.total_cmp(&pb.y)
            }
        });
    }
    let node_pos = nodes.len() as u32;
    nodes.push(Node {
        point: idx[mid],
        left: NONE,
        right: NONE,
    });
    let (left_slice, rest) = idx.split_at_mut(mid);
    let right_slice = &mut rest[1..];
    let left = build_rec(points, left_slice, axis ^ 1, nodes);
    let right = build_rec(points, right_slice, axis ^ 1, nodes);
    let node = &mut nodes[node_pos as usize];
    node.left = left;
    node.right = right;
    node_pos
}

/// The serial top of a parallel build: performs exactly the partitions
/// [`build_rec`] would, but once a subslice is no longer larger than
/// `task_len` it is deferred as a [`Task`] (the ids are moved out, the
/// parent link patched after the fan-out).  Returns the subtree root, or
/// [`NONE`] for an empty or deferred subtree.
fn skeleton_rec(
    points: &[Point],
    idx: &mut [u32],
    axis: u8,
    nodes: &mut Vec<Node>,
    tasks: &mut Vec<Task>,
    task_len: usize,
) -> u32 {
    if idx.is_empty() {
        return NONE;
    }
    if idx.len() <= task_len {
        tasks.push(Task {
            idx: Mutex::new(idx.to_vec()),
            axis,
            parent: NONE,
            is_left: false,
        });
        return NONE;
    }
    let mid = idx.len() / 2;
    idx.select_nth_unstable_by(mid, |&a, &b| {
        let (pa, pb) = (&points[a as usize], &points[b as usize]);
        if axis == 0 {
            pa.x.total_cmp(&pb.x)
        } else {
            pa.y.total_cmp(&pb.y)
        }
    });
    let node_pos = nodes.len() as u32;
    nodes.push(Node {
        point: idx[mid],
        left: NONE,
        right: NONE,
    });
    let (left_slice, rest) = idx.split_at_mut(mid);
    let right_slice = &mut rest[1..];
    let tasks_before_left = tasks.len();
    let left = skeleton_rec(points, left_slice, axis ^ 1, nodes, tasks, task_len);
    // A deferred child registered itself as the most recent task; wire the
    // parent slot it must patch.
    if left == NONE && tasks.len() > tasks_before_left {
        let task = tasks.last_mut().expect("task was just pushed");
        task.parent = node_pos;
        task.is_left = true;
    }
    let tasks_before_right = tasks.len();
    let right = skeleton_rec(points, right_slice, axis ^ 1, nodes, tasks, task_len);
    if right == NONE && tasks.len() > tasks_before_right {
        let task = tasks.last_mut().expect("task was just pushed");
        task.parent = node_pos;
        task.is_left = false;
    }
    let node = &mut nodes[node_pos as usize];
    node.left = left;
    node.right = right;
    node_pos
}

/// A static kd-tree built once over a point set, bundling a [`KdIndex`] with
/// an owned copy of the points.
///
/// Indices returned by queries refer to positions in the original slice the
/// tree was built from.
#[derive(Debug, Clone)]
pub struct KdTree {
    index: KdIndex,
    points: Vec<Point>,
}

impl KdTree {
    /// Builds a kd-tree over `points`.  An empty slice yields an empty tree.
    ///
    /// This copies the slice once (the tree owns its points); callers that
    /// can part with their vector should use [`KdTree::build_owned`], which
    /// copies nothing.
    pub fn build(points: &[Point]) -> Self {
        Self::build_owned(points.to_vec())
    }

    /// Builds a kd-tree that takes ownership of `points` — no copy is made.
    ///
    /// Million-point callers that hold a `Vec<Point>` they no longer need
    /// (the dynamic snapshot rebuild, for one) should prefer this over
    /// [`KdTree::build`], which would otherwise hold a second copy of the
    /// point set for the tree's lifetime.
    pub fn build_owned(points: Vec<Point>) -> Self {
        Self::build_owned_with_threads(points, 1)
    }

    /// Like [`KdTree::build`], but fans subtree construction out over up to
    /// `threads` workers (see [`KdIndex::build_with_threads`]; the logical
    /// tree is identical for every thread count).
    pub fn build_with_threads(points: &[Point], threads: usize) -> Self {
        Self::build_owned_with_threads(points.to_vec(), threads)
    }

    /// [`KdTree::build_owned`] with an explicit worker-thread count.
    pub fn build_owned_with_threads(points: Vec<Point>, threads: usize) -> Self {
        let index = KdIndex::build_with_threads(&points, threads);
        KdTree { index, points }
    }

    /// The underlying index (borrowable for zero-copy query loops that
    /// already hold the point slice).
    pub fn index(&self) -> &KdIndex {
        &self.index
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// The stored point at index `i` (the index space query results use).
    ///
    /// The dynamic wrapper ([`crate::dynamic::DynamicKdTree`]) reads points
    /// back out of its snapshot through this when compacting its edit log.
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }

    /// Returns `true` when the tree stores no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Nearest neighbour of `query` among the stored points, optionally
    /// skipping indices for which `skip` returns `true`.  See
    /// [`KdIndex::nearest_filtered`].
    pub fn nearest_filtered<F: Fn(usize) -> bool>(
        &self,
        query: &Point,
        skip: F,
    ) -> Option<(usize, f64)> {
        self.index.nearest_filtered(&self.points, query, skip)
    }

    /// Nearest point to `query` whose component label differs from `label`.
    /// See [`KdIndex::nearest_foreign`].
    pub fn nearest_foreign(
        &self,
        query: &Point,
        labels: &[usize],
        label: usize,
    ) -> Option<(usize, f64)> {
        self.index
            .nearest_foreign(&self.points, query, labels, label)
    }

    /// Like [`KdTree::nearest_foreign`], but only reports points at distance
    /// `max_dist` or closer.  See [`KdIndex::nearest_foreign_within`].
    pub fn nearest_foreign_within(
        &self,
        query: &Point,
        labels: &[usize],
        label: usize,
        max_dist: f64,
    ) -> Option<(usize, f64)> {
        self.index
            .nearest_foreign_within(&self.points, query, labels, label, max_dist)
    }

    /// Nearest neighbour of `query` (no filtering).
    pub fn nearest(&self, query: &Point) -> Option<(usize, f64)> {
        self.index.nearest(&self.points, query)
    }

    /// All indices of points within `radius` of `query` (closed ball).
    pub fn within_radius(&self, query: &Point, radius: f64) -> Vec<usize> {
        self.index.within_radius(&self.points, query, radius)
    }

    /// Like [`KdTree::within_radius`], but clears and fills a caller-owned
    /// buffer instead of allocating a fresh `Vec` per query.  See
    /// [`KdIndex::within_radius_into`].
    pub fn within_radius_into(&self, query: &Point, radius: f64, out: &mut Vec<usize>) {
        self.index
            .within_radius_into(&self.points, query, radius, out)
    }

    /// All indices of points inside the axis-aligned box.
    pub fn within_box(&self, bbox: &Aabb) -> Vec<usize> {
        let mut out: Vec<usize> = (0..self.points.len())
            .filter(|&i| bbox.contains(&self.points[i]))
            .collect();
        out.sort_unstable();
        out
    }

    /// The `k` nearest neighbours of `query`, sorted by increasing distance
    /// (ties towards the smaller index).  See [`KdIndex::k_nearest`].
    pub fn k_nearest(&self, query: &Point, k: usize) -> Vec<(usize, f64)> {
        self.index.k_nearest(&self.points, query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_points() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(-1.0, 3.0),
            Point::new(4.0, -2.0),
            Point::new(0.5, 0.4),
        ]
    }

    #[test]
    fn empty_tree_queries() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert!(t.nearest(&Point::ORIGIN).is_none());
        assert!(t.within_radius(&Point::ORIGIN, 10.0).is_empty());
        let idx = KdIndex::build(&[]);
        assert!(idx.is_empty());
        assert!(idx.nearest(&[], &Point::ORIGIN).is_none());
    }

    #[test]
    fn nearest_neighbour_simple() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let (idx, d) = t.nearest(&Point::new(0.6, 0.5)).unwrap();
        assert_eq!(idx, 5);
        assert!(d < 0.2);
    }

    #[test]
    fn nearest_with_skip_excludes_self() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let (idx, _) = t.nearest_filtered(&pts[0], |i| i == 0).unwrap();
        assert_eq!(idx, 5); // (0.5, 0.4) is the closest other point
    }

    #[test]
    fn within_radius_returns_ball_members() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let hits = t.within_radius(&Point::new(0.0, 0.0), 1.5);
        assert_eq!(hits, vec![0, 1, 5]);
    }

    #[test]
    fn within_radius_into_reuses_the_buffer() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let mut buf = vec![99, 98]; // stale contents must be cleared
        t.within_radius_into(&Point::new(0.0, 0.0), 1.5, &mut buf);
        assert_eq!(buf, vec![0, 1, 5]);
        t.within_radius_into(&Point::new(100.0, 100.0), 0.5, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn within_box_query() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let bbox = Aabb::new(Point::new(-0.1, -0.1), Point::new(1.1, 1.1));
        assert_eq!(t.within_box(&bbox), vec![0, 1, 5]);
    }

    #[test]
    fn k_nearest_is_sorted() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let knn = t.k_nearest(&Point::new(0.0, 0.0), 3);
        assert_eq!(knn.len(), 3);
        assert!(knn.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(knn[0].0, 0);
    }

    #[test]
    fn k_nearest_edge_cases() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        assert!(t.k_nearest(&Point::ORIGIN, 0).is_empty());
        // Asking for more neighbours than points returns all of them, sorted.
        let all = t.k_nearest(&Point::ORIGIN, 100);
        assert_eq!(all.len(), pts.len());
        assert!(all.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn nearest_foreign_skips_own_component() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        // Points 0 and 5 share component 7; the nearest foreigner of point 0
        // must therefore be point 1, not the closer point 5.
        let labels = vec![7, 1, 1, 2, 2, 7];
        let (idx, d) = t.nearest_foreign(&pts[0], &labels, 7).unwrap();
        assert_eq!(idx, 1);
        assert!((d - pts[0].distance(&pts[1])).abs() < 1e-12);
        // A component holding every point sees no foreigner.
        let all_same = vec![3; pts.len()];
        assert!(t.nearest_foreign(&pts[0], &all_same, 3).is_none());
    }

    #[test]
    fn nearest_foreign_within_respects_the_bound() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let labels = vec![7, 1, 1, 2, 2, 7];
        let exact = t.nearest_foreign(&pts[0], &labels, 7).unwrap();
        // A bound at exactly the true distance still reports the point…
        let bounded = t
            .nearest_foreign_within(&pts[0], &labels, 7, exact.1)
            .unwrap();
        assert_eq!(bounded.0, exact.0);
        // …while a tighter bound hides everything.
        assert!(t
            .nearest_foreign_within(&pts[0], &labels, 7, exact.1 * 0.99)
            .is_none());
    }

    #[test]
    fn nearest_breaks_distance_ties_towards_smaller_index() {
        // Two points equidistant from the query, straddling the splitting
        // plane; the smaller index must win regardless of tree layout.
        let pts = vec![
            Point::new(-1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 5.0),
        ];
        let t = KdTree::build(&pts);
        let (idx, d) = t.nearest(&Point::ORIGIN).unwrap();
        assert_eq!(idx, 0);
        assert!((d - 1.0).abs() < 1e-12);
        // Duplicate points: both at distance 0, index 0 wins.
        let dup = vec![Point::new(2.0, 2.0), Point::new(2.0, 2.0)];
        let td = KdTree::build(&dup);
        assert_eq!(td.nearest(&Point::new(2.0, 2.0)).unwrap().0, 0);
    }

    #[test]
    fn build_owned_matches_build() {
        let pts = sample_points();
        let borrowed = KdTree::build(&pts);
        let owned = KdTree::build_owned(pts.clone());
        for q in &pts {
            assert_eq!(borrowed.nearest(q), owned.nearest(q));
            assert_eq!(borrowed.within_radius(q, 2.0), owned.within_radius(q, 2.0));
        }
        assert_eq!(owned.point(3), pts[3]);
    }

    #[test]
    fn parallel_build_produces_the_identical_logical_tree() {
        // Enough points to clear PARALLEL_BUILD_MIN, with duplicate
        // coordinates sprinkled in so median ties are exercised.
        let n = PARALLEL_BUILD_MIN + 137;
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let x = ((i * 7919) % 1000) as f64 * 0.25;
                let y = ((i * 104729) % 997) as f64 * 0.5;
                Point::new(x, y)
            })
            .collect();
        let serial = KdIndex::build_with_threads(&pts, 1);
        for threads in [2usize, 3, 8] {
            let parallel = KdIndex::build_with_threads(&pts, threads);
            assert_eq!(parallel.len(), serial.len());
            // The logical trees are identical: compare a full preorder walk
            // (point ids + child presence) rather than raw node arrays,
            // whose layout legitimately differs between schedules.
            fn preorder(index: &KdIndex, node: u32, out: &mut Vec<(u32, bool, bool)>) {
                if node == NONE {
                    return;
                }
                let n = index.nodes[node as usize];
                out.push((n.point, n.left != NONE, n.right != NONE));
                preorder(index, n.left, out);
                preorder(index, n.right, out);
            }
            let mut a = Vec::new();
            let mut b = Vec::new();
            preorder(&serial, serial.root, &mut a);
            preorder(&parallel, parallel.root, &mut b);
            assert_eq!(a, b, "threads={threads}");
            // And queries agree bit-for-bit.
            for q in pts.iter().step_by(991) {
                assert_eq!(serial.nearest(&pts, q), parallel.nearest(&pts, q));
            }
        }
    }

    proptest! {
        #[test]
        fn prop_nearest_matches_linear_scan(
            xs in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..60),
            qx in -50.0..50.0f64, qy in -50.0..50.0f64,
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let q = Point::new(qx, qy);
            let t = KdTree::build(&pts);
            let (idx, d) = t.nearest(&q).unwrap();
            let best_lin = pts.iter().map(|p| q.distance(p)).fold(f64::INFINITY, f64::min);
            prop_assert!((d - best_lin).abs() < 1e-9);
            prop_assert!((q.distance(&pts[idx]) - d).abs() < 1e-12);
        }

        #[test]
        fn prop_k_nearest_matches_linear_scan(
            xs in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..60),
            qx in -50.0..50.0f64, qy in -50.0..50.0f64,
            k in 1usize..12,
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let q = Point::new(qx, qy);
            let t = KdTree::build(&pts);
            let got = t.k_nearest(&q, k);
            let mut expected: Vec<(usize, f64)> = (0..pts.len())
                .map(|i| (i, q.distance(&pts[i])))
                .collect();
            expected.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            expected.truncate(k);
            prop_assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(expected.iter()) {
                prop_assert!((g.1 - e.1).abs() < 1e-12, "distance mismatch: {:?} vs {:?}", g, e);
            }
        }

        #[test]
        fn prop_nearest_foreign_matches_linear_scan(
            xs in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64, 0usize..4), 1..50),
            qx in -50.0..50.0f64, qy in -50.0..50.0f64,
            label in 0usize..4,
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y, _)| Point::new(x, y)).collect();
            let labels: Vec<usize> = xs.iter().map(|&(_, _, l)| l).collect();
            let q = Point::new(qx, qy);
            let t = KdTree::build(&pts);
            let got = t.nearest_foreign(&q, &labels, label);
            let expected = (0..pts.len())
                .filter(|&i| labels[i] != label)
                .map(|i| (i, q.distance(&pts[i])))
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            match (got, expected) {
                (None, None) => {}
                (Some((gi, gd)), Some((ei, ed))) => {
                    prop_assert_eq!(gi, ei);
                    prop_assert!((gd - ed).abs() < 1e-12);
                }
                other => prop_assert!(false, "mismatch: {:?}", other),
            }
        }

        #[test]
        fn prop_radius_query_matches_linear_scan(
            xs in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..60),
            qx in -50.0..50.0f64, qy in -50.0..50.0f64,
            r in 0.0..100.0f64,
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let q = Point::new(qx, qy);
            let t = KdTree::build(&pts);
            let mut expected: Vec<usize> = (0..pts.len()).filter(|&i| q.distance(&pts[i]) <= r).collect();
            expected.sort_unstable();
            prop_assert_eq!(t.within_radius(&q, r), expected);
        }
    }
}
