//! A 2-d tree (kd-tree) over points, supporting nearest-neighbour, k-nearest,
//! nearest-foreign-component and range queries.
//!
//! The sub-quadratic Euclidean MST builder in `antennae-graph` drives its
//! Borůvka rounds through [`KdTree::nearest_foreign`] (the nearest point that
//! belongs to a *different* connected component), and the simulation crate
//! uses range queries to compute interference metrics (receivers inside a
//! sector).
//!
//! Ties on distance are broken towards the smaller point index everywhere, so
//! every query is deterministic even on degenerate inputs (duplicate points,
//! co-circular neighbours).  The MST builder relies on that determinism for
//! its tie-broken total order on candidate edges.

use crate::bbox::Aabb;
use crate::point::Point;

/// A static kd-tree built once over a point set.
///
/// Indices returned by queries refer to positions in the original slice the
/// tree was built from.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    points: Vec<Point>,
    root: Option<usize>,
}

#[derive(Debug, Clone)]
struct Node {
    /// Index into `points`.
    point_idx: usize,
    /// Splitting axis: 0 for x, 1 for y.
    axis: u8,
    left: Option<usize>,
    right: Option<usize>,
}

impl KdTree {
    /// Builds a kd-tree over `points`.  An empty slice yields an empty tree.
    pub fn build(points: &[Point]) -> Self {
        let pts = points.to_vec();
        let mut idx: Vec<usize> = (0..pts.len()).collect();
        let mut nodes = Vec::with_capacity(pts.len());
        let root = Self::build_recursive(&pts, &mut idx[..], 0, &mut nodes);
        KdTree {
            nodes,
            points: pts,
            root,
        }
    }

    fn build_recursive(
        points: &[Point],
        idx: &mut [usize],
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> Option<usize> {
        if idx.is_empty() {
            return None;
        }
        let axis = (depth % 2) as u8;
        idx.sort_by(|&a, &b| {
            if axis == 0 {
                points[a].x.total_cmp(&points[b].x)
            } else {
                points[a].y.total_cmp(&points[b].y)
            }
        });
        let mid = idx.len() / 2;
        let point_idx = idx[mid];
        let node_pos = nodes.len();
        nodes.push(Node {
            point_idx,
            axis,
            left: None,
            right: None,
        });
        let (left_slice, rest) = idx.split_at_mut(mid);
        let right_slice = &mut rest[1..];
        let left = Self::build_recursive(points, left_slice, depth + 1, nodes);
        let right = Self::build_recursive(points, right_slice, depth + 1, nodes);
        nodes[node_pos].left = left;
        nodes[node_pos].right = right;
        Some(node_pos)
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// The stored point at index `i` (the index space query results use).
    ///
    /// The dynamic wrapper ([`crate::dynamic::DynamicKdTree`]) reads points
    /// back out of its snapshot through this when compacting its edit log.
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }

    /// Returns `true` when the tree stores no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Nearest neighbour of `query` among the stored points, optionally
    /// skipping indices for which `skip` returns `true` (e.g. the query point
    /// itself, or points already attached to a growing MST).
    ///
    /// Returns `(index, distance)` or `None` when every point is skipped.
    /// Distance ties are broken towards the smaller index.
    pub fn nearest_filtered<F: Fn(usize) -> bool>(
        &self,
        query: &Point,
        skip: F,
    ) -> Option<(usize, f64)> {
        let root = self.root?;
        // Sentinel seed: accepts any real point, never reported.
        let mut best = (usize::MAX, f64::INFINITY);
        self.nearest_rec(root, query, &skip, &mut best);
        (best.0 != usize::MAX).then(|| (best.0, best.1.sqrt()))
    }

    /// Nearest point to `query` whose component label differs from `label`.
    ///
    /// `labels[i]` is the component of stored point `i` (indices refer to the
    /// slice the tree was built from); points whose label equals `label` are
    /// invisible to the search.  This is the inner query of the kd-tree
    /// Borůvka MST engine: each Borůvka round asks, for every vertex, for the
    /// nearest vertex *outside* its own component.  Distance ties are broken
    /// towards the smaller index so that concurrent component searches agree
    /// on a single total order of candidate edges.
    ///
    /// Returns `(index, distance)`, or `None` when every point carries
    /// `label`.
    pub fn nearest_foreign(
        &self,
        query: &Point,
        labels: &[usize],
        label: usize,
    ) -> Option<(usize, f64)> {
        self.nearest_foreign_within(query, labels, label, f64::INFINITY)
    }

    /// Like [`KdTree::nearest_foreign`], but only reports points at distance
    /// `max_dist` or closer.
    ///
    /// Subtrees beyond `max_dist` are pruned from the start, which is what
    /// makes the Borůvka engine's late rounds cheap: once one vertex of a
    /// component has found a nearby foreign point, its component-mates search
    /// only within that radius.  A point at exactly `max_dist` is still
    /// reported (the bound behaves like an already-seen candidate with an
    /// infinite index), so a component's minimum candidate edge under the
    /// `(distance, index)` tie order is never lost.  The bound is widened by
    /// a few ulps before use — callers commonly pass a distance a previous
    /// query returned, and the `sqrt`/square round-trip may otherwise land
    /// one ulp *below* the tied candidate's squared distance and hide it; the
    /// widening can only admit marginally farther points, never lose one,
    /// and a returned point is always the true nearest foreigner.
    pub fn nearest_foreign_within(
        &self,
        query: &Point,
        labels: &[usize],
        label: usize,
        max_dist: f64,
    ) -> Option<(usize, f64)> {
        assert_eq!(
            labels.len(),
            self.points.len(),
            "one label per stored point"
        );
        let root = self.root?;
        let bound_sq = (max_dist * max_dist) * (1.0 + 4.0 * f64::EPSILON);
        let mut best = (usize::MAX, bound_sq);
        self.nearest_rec(root, query, &|i| labels[i] == label, &mut best);
        (best.0 != usize::MAX).then(|| (best.0, best.1.sqrt()))
    }

    /// Nearest neighbour of `query` (no filtering).
    pub fn nearest(&self, query: &Point) -> Option<(usize, f64)> {
        self.nearest_filtered(query, |_| false)
    }

    /// Recursive nearest search over *squared* distances (saves a `sqrt` per
    /// visited node).  `best` is `(index, squared distance)` with
    /// `usize::MAX` as the not-yet-found sentinel.
    fn nearest_rec<F: Fn(usize) -> bool>(
        &self,
        node_idx: usize,
        query: &Point,
        skip: &F,
        best: &mut (usize, f64),
    ) {
        let node = &self.nodes[node_idx];
        let p = &self.points[node.point_idx];
        if !skip(node.point_idx) {
            let d2 = query.distance_squared(p);
            if d2 < best.1 || (d2 == best.1 && node.point_idx < best.0) {
                *best = (node.point_idx, d2);
            }
        }
        let diff = if node.axis == 0 {
            query.x - p.x
        } else {
            query.y - p.y
        };
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.nearest_rec(n, query, skip, best);
        }
        // `<=` (not `<`): with index tie-breaking an equally distant,
        // smaller-indexed point on the far side must still be found.
        if diff * diff <= best.1 {
            if let Some(f) = far {
                self.nearest_rec(f, query, skip, best);
            }
        }
    }

    /// All indices of points within `radius` of `query` (closed ball).
    pub fn within_radius(&self, query: &Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.within_radius_into(query, radius, &mut out);
        out
    }

    /// Like [`KdTree::within_radius`], but clears and fills a caller-owned
    /// buffer instead of allocating a fresh `Vec` per query.
    ///
    /// The verification engine in `antennae-core` issues one range query per
    /// sensor while rebuilding an induced communication digraph; reusing a
    /// single buffer across the whole sweep keeps that loop allocation-free.
    /// Results are sorted ascending, exactly as [`KdTree::within_radius`]
    /// returns them.
    pub fn within_radius_into(&self, query: &Point, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        if let Some(root) = self.root {
            self.radius_rec(root, query, radius, out);
        }
        out.sort_unstable();
    }

    fn radius_rec(&self, node_idx: usize, query: &Point, radius: f64, out: &mut Vec<usize>) {
        let node = &self.nodes[node_idx];
        let p = &self.points[node.point_idx];
        if query.distance(p) <= radius {
            out.push(node.point_idx);
        }
        let diff = if node.axis == 0 {
            query.x - p.x
        } else {
            query.y - p.y
        };
        if diff <= radius {
            if let Some(l) = node.left {
                self.radius_rec(l, query, radius, out);
            }
        }
        if -diff <= radius {
            if let Some(r) = node.right {
                self.radius_rec(r, query, radius, out);
            }
        }
    }

    /// All indices of points inside the axis-aligned box.
    pub fn within_box(&self, bbox: &Aabb) -> Vec<usize> {
        let mut out: Vec<usize> = (0..self.points.len())
            .filter(|&i| bbox.contains(&self.points[i]))
            .collect();
        out.sort_unstable();
        out
    }

    /// The `k` nearest neighbours of `query`, sorted by increasing distance
    /// (ties towards the smaller index).
    ///
    /// The search keeps the current best `k` candidates and prunes every
    /// subtree whose splitting plane is farther than the worst of them, so a
    /// query costs O(k + log n) on typical inputs rather than the O(n log n)
    /// of a scan-and-sort.
    pub fn k_nearest(&self, query: &Point, k: usize) -> Vec<(usize, f64)> {
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(k.min(self.points.len()) + 1);
        if k == 0 {
            return best;
        }
        if let Some(root) = self.root {
            self.k_nearest_rec(root, query, k, &mut best);
        }
        best
    }

    fn k_nearest_rec(
        &self,
        node_idx: usize,
        query: &Point,
        k: usize,
        best: &mut Vec<(usize, f64)>,
    ) {
        let node = &self.nodes[node_idx];
        let p = &self.points[node.point_idx];
        let d = query.distance(p);
        // Insert into the sorted candidate list (worst candidate last).
        let pos = best
            .iter()
            .position(|&(bi, bd)| d < bd || (d == bd && node.point_idx < bi))
            .unwrap_or(best.len());
        if pos < k {
            best.insert(pos, (node.point_idx, d));
            best.truncate(k);
        }
        let diff = if node.axis == 0 {
            query.x - p.x
        } else {
            query.y - p.y
        };
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.k_nearest_rec(n, query, k, best);
        }
        let must_check_far = best.len() < k || best.last().is_none_or(|&(_, wd)| diff.abs() <= wd);
        if must_check_far {
            if let Some(f) = far {
                self.k_nearest_rec(f, query, k, best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_points() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(-1.0, 3.0),
            Point::new(4.0, -2.0),
            Point::new(0.5, 0.4),
        ]
    }

    #[test]
    fn empty_tree_queries() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert!(t.nearest(&Point::ORIGIN).is_none());
        assert!(t.within_radius(&Point::ORIGIN, 10.0).is_empty());
    }

    #[test]
    fn nearest_neighbour_simple() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let (idx, d) = t.nearest(&Point::new(0.6, 0.5)).unwrap();
        assert_eq!(idx, 5);
        assert!(d < 0.2);
    }

    #[test]
    fn nearest_with_skip_excludes_self() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let (idx, _) = t.nearest_filtered(&pts[0], |i| i == 0).unwrap();
        assert_eq!(idx, 5); // (0.5, 0.4) is the closest other point
    }

    #[test]
    fn within_radius_returns_ball_members() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let hits = t.within_radius(&Point::new(0.0, 0.0), 1.5);
        assert_eq!(hits, vec![0, 1, 5]);
    }

    #[test]
    fn within_radius_into_reuses_the_buffer() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let mut buf = vec![99, 98]; // stale contents must be cleared
        t.within_radius_into(&Point::new(0.0, 0.0), 1.5, &mut buf);
        assert_eq!(buf, vec![0, 1, 5]);
        t.within_radius_into(&Point::new(100.0, 100.0), 0.5, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn within_box_query() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let bbox = Aabb::new(Point::new(-0.1, -0.1), Point::new(1.1, 1.1));
        assert_eq!(t.within_box(&bbox), vec![0, 1, 5]);
    }

    #[test]
    fn k_nearest_is_sorted() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let knn = t.k_nearest(&Point::new(0.0, 0.0), 3);
        assert_eq!(knn.len(), 3);
        assert!(knn.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(knn[0].0, 0);
    }

    #[test]
    fn k_nearest_edge_cases() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        assert!(t.k_nearest(&Point::ORIGIN, 0).is_empty());
        // Asking for more neighbours than points returns all of them, sorted.
        let all = t.k_nearest(&Point::ORIGIN, 100);
        assert_eq!(all.len(), pts.len());
        assert!(all.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn nearest_foreign_skips_own_component() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        // Points 0 and 5 share component 7; the nearest foreigner of point 0
        // must therefore be point 1, not the closer point 5.
        let labels = vec![7, 1, 1, 2, 2, 7];
        let (idx, d) = t.nearest_foreign(&pts[0], &labels, 7).unwrap();
        assert_eq!(idx, 1);
        assert!((d - pts[0].distance(&pts[1])).abs() < 1e-12);
        // A component holding every point sees no foreigner.
        let all_same = vec![3; pts.len()];
        assert!(t.nearest_foreign(&pts[0], &all_same, 3).is_none());
    }

    #[test]
    fn nearest_foreign_within_respects_the_bound() {
        let pts = sample_points();
        let t = KdTree::build(&pts);
        let labels = vec![7, 1, 1, 2, 2, 7];
        let exact = t.nearest_foreign(&pts[0], &labels, 7).unwrap();
        // A bound at exactly the true distance still reports the point…
        let bounded = t
            .nearest_foreign_within(&pts[0], &labels, 7, exact.1)
            .unwrap();
        assert_eq!(bounded.0, exact.0);
        // …while a tighter bound hides everything.
        assert!(t
            .nearest_foreign_within(&pts[0], &labels, 7, exact.1 * 0.99)
            .is_none());
    }

    #[test]
    fn nearest_breaks_distance_ties_towards_smaller_index() {
        // Two points equidistant from the query, straddling the splitting
        // plane; the smaller index must win regardless of tree layout.
        let pts = vec![
            Point::new(-1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 5.0),
        ];
        let t = KdTree::build(&pts);
        let (idx, d) = t.nearest(&Point::ORIGIN).unwrap();
        assert_eq!(idx, 0);
        assert!((d - 1.0).abs() < 1e-12);
        // Duplicate points: both at distance 0, index 0 wins.
        let dup = vec![Point::new(2.0, 2.0), Point::new(2.0, 2.0)];
        let td = KdTree::build(&dup);
        assert_eq!(td.nearest(&Point::new(2.0, 2.0)).unwrap().0, 0);
    }

    proptest! {
        #[test]
        fn prop_nearest_matches_linear_scan(
            xs in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..60),
            qx in -50.0..50.0f64, qy in -50.0..50.0f64,
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let q = Point::new(qx, qy);
            let t = KdTree::build(&pts);
            let (idx, d) = t.nearest(&q).unwrap();
            let best_lin = pts.iter().map(|p| q.distance(p)).fold(f64::INFINITY, f64::min);
            prop_assert!((d - best_lin).abs() < 1e-9);
            prop_assert!((q.distance(&pts[idx]) - d).abs() < 1e-12);
        }

        #[test]
        fn prop_k_nearest_matches_linear_scan(
            xs in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..60),
            qx in -50.0..50.0f64, qy in -50.0..50.0f64,
            k in 1usize..12,
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let q = Point::new(qx, qy);
            let t = KdTree::build(&pts);
            let got = t.k_nearest(&q, k);
            let mut expected: Vec<(usize, f64)> = (0..pts.len())
                .map(|i| (i, q.distance(&pts[i])))
                .collect();
            expected.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            expected.truncate(k);
            prop_assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(expected.iter()) {
                prop_assert!((g.1 - e.1).abs() < 1e-12, "distance mismatch: {:?} vs {:?}", g, e);
            }
        }

        #[test]
        fn prop_nearest_foreign_matches_linear_scan(
            xs in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64, 0usize..4), 1..50),
            qx in -50.0..50.0f64, qy in -50.0..50.0f64,
            label in 0usize..4,
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y, _)| Point::new(x, y)).collect();
            let labels: Vec<usize> = xs.iter().map(|&(_, _, l)| l).collect();
            let q = Point::new(qx, qy);
            let t = KdTree::build(&pts);
            let got = t.nearest_foreign(&q, &labels, label);
            let expected = (0..pts.len())
                .filter(|&i| labels[i] != label)
                .map(|i| (i, q.distance(&pts[i])))
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            match (got, expected) {
                (None, None) => {}
                (Some((gi, gd)), Some((ei, ed))) => {
                    prop_assert_eq!(gi, ei);
                    prop_assert!((gd - ed).abs() < 1e-12);
                }
                other => prop_assert!(false, "mismatch: {:?}", other),
            }
        }

        #[test]
        fn prop_radius_query_matches_linear_scan(
            xs in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..60),
            qx in -50.0..50.0f64, qy in -50.0..50.0f64,
            r in 0.0..100.0f64,
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let q = Point::new(qx, qy);
            let t = KdTree::build(&pts);
            let mut expected: Vec<usize> = (0..pts.len()).filter(|&i| q.distance(&pts[i]) <= r).collect();
            expected.sort_unstable();
            prop_assert_eq!(t.within_radius(&q, r), expected);
        }
    }
}
