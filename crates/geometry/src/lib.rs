//! # antennae-geometry
//!
//! Planar geometry substrate for the directional-antenna orientation
//! algorithms of Bhattacharya et al. (IPPS 2009), *"Sensor Network
//! Connectivity with Multiple Directional Antennae of a Given Angular Sum"*.
//!
//! The paper models every antenna as a circular **sector** (apex at the
//! sensor, a spread angle and a radius) and all of its constructions reason
//! about counterclockwise angles between rays emanating from a sensor towards
//! its Euclidean-MST neighbours.  This crate provides exactly those
//! primitives, built from scratch so the whole reproduction is
//! self-contained:
//!
//! * [`Point`] and [`Vector`] — planar points and displacement vectors.
//! * [`Angle`] — radian angles normalized to `[0, 2π)` with counterclockwise
//!   difference arithmetic (the `∠uvw` notation of the paper).
//! * [`Ray`], [`Sector`] — antenna beams.
//! * [`Segment`], [`Circle`], [`Triangle`], [`Aabb`] — supporting shapes used
//!   by the MST facts (Fact 1: the triangle spanned by two adjacent MST edges
//!   is empty) and by workload generation.
//! * [`predicates`] — orientation/incircle style predicates with an explicit
//!   tolerance model.
//! * [`convex_hull`], [`closest_pair`], [`kdtree`] — classic computational
//!   geometry support used by the Euclidean MST builder and the generators.
//! * [`angular`] — sorting points counterclockwise around a pivot and
//!   analysing the angular gaps between consecutive neighbours, the key
//!   sub-routine of Lemma 1 and of the chain constructions of Theorems 5/6.
//!
//! All coordinates are `f64`.  Every predicate that the orientation
//! algorithms rely on accepts an explicit epsilon so that constructions that
//! aim an antenna *exactly* at a neighbour remain robust to floating point
//! rounding.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod angle;
pub mod angular;
pub mod bbox;
pub mod circle;
pub mod closest_pair;
pub mod convex_hull;
pub mod dynamic;
pub mod kdtree;
pub mod point;
pub mod predicates;
pub mod ray;
pub mod sector;
pub mod segment;
pub mod tiles;
pub mod transform;
pub mod triangle;
pub mod vector;

pub use angle::Angle;
pub use bbox::Aabb;
pub use circle::Circle;
pub use dynamic::DynamicKdTree;
pub use kdtree::{KdIndex, KdTree};
pub use point::Point;
pub use ray::Ray;
pub use sector::Sector;
pub use segment::Segment;
pub use tiles::{TileGrid, TiledKdForest};
pub use transform::Transform;
pub use triangle::Triangle;
pub use vector::Vector;

/// Default tolerance used by geometric predicates throughout the workspace.
///
/// The orientation algorithms frequently aim an antenna exactly at a
/// neighbour or place a sector boundary exactly on a ray towards a neighbour;
/// a small positive tolerance keeps those containment checks stable.
pub const EPS: f64 = 1e-9;

/// 2π as an `f64` constant (full angular spread of an omnidirectional
/// antenna, the budget the paper's φ_k is compared against).
pub const TAU: f64 = std::f64::consts::TAU;

/// π as an `f64` constant.
pub const PI: f64 = std::f64::consts::PI;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert!((TAU - 2.0 * PI).abs() < 1e-15);
        const _: () = assert!(EPS > 0.0 && EPS < 1e-6);
    }
}
