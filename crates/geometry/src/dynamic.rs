//! A mutable spatial index: a static [`KdTree`] snapshot plus a deferred
//! edit log (buffered inserts and tombstoned removals) with threshold-driven
//! rebuilds.
//!
//! The static [`KdTree`] is immutable by design — every query in the MST and
//! verification engines relies on its deterministic layout.  Dynamic
//! deployments (sensors arriving, failing, moving) therefore use this
//! wrapper: edits land in O(1) amortized (an append to the insert buffer or
//! a tombstone flag), queries consult the snapshot *and* linearly scan the
//! small buffer, and once the dirty fraction crosses a threshold the
//! snapshot is rebuilt from the live set in one O(n log n) pass.
//!
//! Entries are keyed by caller-assigned *slots* (stable `usize` ids).  All
//! query results are reported in slot space with the same tie-breaking
//! contract as the static tree: distance ties go to the smaller slot, range
//! queries return slots sorted ascending.  That makes the dynamic index a
//! drop-in replacement for a freshly built [`KdTree`] over the live points —
//! the equality the dynamic-instance oracle tests in `antennae-core` pin.

use crate::kdtree::KdTree;
use crate::point::Point;

/// Sentinel for "slot not present in the snapshot".
const NO_POS: u32 = u32::MAX;

/// A kd-tree over a mutable point set: snapshot + insert buffer + tombstones.
///
/// See the [module docs](self) for the design.  The caller owns slot
/// assignment; slots may be any `usize` but the internal slot→position table
/// is dense, so keep them compact (the dynamic MST engine hands out
/// monotonically increasing slots).
#[derive(Debug, Clone)]
pub struct DynamicKdTree {
    /// Snapshot tree over `snapshot_slots`' points (positions index both).
    snapshot: KdTree,
    /// Position → slot for the snapshot's points, ascending by slot.
    snapshot_slots: Vec<usize>,
    /// Position → superseded flag (removed or moved since the snapshot).
    stale: Vec<bool>,
    /// Slot → snapshot position (`NO_POS` when absent).
    pos_of_slot: Vec<u32>,
    /// Pending inserts since the last rebuild.
    buffer: Vec<(usize, Point)>,
    stale_count: usize,
    live: usize,
    rebuilds: usize,
    /// Dirty-entry count (buffer + tombstones) that triggers a rebuild.
    rebuild_limit: fn(usize) -> usize,
}

/// Default rebuild threshold: rebuild once the dirty count exceeds
/// `max(16, live/16)` — the buffer stays short enough that the per-query
/// linear scan is noise, and rebuild cost amortizes to O(log n) per edit.
fn default_rebuild_limit(live: usize) -> usize {
    (live / 16).max(16)
}

impl DynamicKdTree {
    /// Builds the index over `(slot, point)` entries.
    ///
    /// Slots must be distinct; the snapshot is laid out in ascending slot
    /// order so that the underlying tree's index tie-breaking coincides with
    /// slot tie-breaking.
    pub fn new(entries: &[(usize, Point)]) -> Self {
        let mut entries: Vec<(usize, Point)> = entries.to_vec();
        entries.sort_unstable_by_key(|&(slot, _)| slot);
        let points: Vec<Point> = entries.iter().map(|&(_, p)| p).collect();
        let snapshot_slots: Vec<usize> = entries.iter().map(|&(slot, _)| slot).collect();
        let max_slot = snapshot_slots.last().copied().map_or(0, |s| s + 1);
        let mut pos_of_slot = vec![NO_POS; max_slot];
        for (pos, &slot) in snapshot_slots.iter().enumerate() {
            debug_assert_eq!(pos_of_slot[slot], NO_POS, "duplicate slot {slot}");
            pos_of_slot[slot] = pos as u32;
        }
        DynamicKdTree {
            snapshot: KdTree::build_owned(points),
            stale: vec![false; snapshot_slots.len()],
            live: snapshot_slots.len(),
            snapshot_slots,
            pos_of_slot,
            buffer: Vec::new(),
            stale_count: 0,
            rebuilds: 0,
            rebuild_limit: default_rebuild_limit,
        }
    }

    /// Builds the index over a dense point slice (slot `i` = index `i`).
    pub fn from_dense(points: &[Point]) -> Self {
        let entries: Vec<(usize, Point)> = points.iter().copied().enumerate().collect();
        Self::new(&entries)
    }

    /// Number of live (inserted and not removed) entries.
    pub fn len_live(&self) -> usize {
        self.live
    }

    /// Returns `true` when no live entry is stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// How many threshold-triggered rebuilds have run (telemetry for tests
    /// and the churn experiment).
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    /// Returns `true` when `slot` currently holds a live entry.
    pub fn contains(&self, slot: usize) -> bool {
        if self.buffer.iter().any(|&(s, _)| s == slot) {
            return true;
        }
        match self.pos_of_slot.get(slot) {
            Some(&pos) if pos != NO_POS => !self.stale[pos as usize],
            _ => false,
        }
    }

    /// Inserts `point` under `slot` (which must not be live).
    pub fn insert(&mut self, slot: usize, point: Point) {
        debug_assert!(!self.contains(slot), "slot {slot} already live");
        self.buffer.push((slot, point));
        self.live += 1;
        self.maybe_rebuild();
    }

    /// Removes the live entry under `slot`.
    pub fn remove(&mut self, slot: usize) {
        if let Some(i) = self.buffer.iter().position(|&(s, _)| s == slot) {
            self.buffer.swap_remove(i);
        } else {
            let pos = self.pos_of_slot[slot] as usize;
            debug_assert!(!self.stale[pos], "slot {slot} already removed");
            self.stale[pos] = true;
            self.stale_count += 1;
        }
        self.live -= 1;
        self.maybe_rebuild();
    }

    /// Moves the live entry under `slot` to `point` (tombstone + re-insert
    /// under the same slot).
    pub fn update(&mut self, slot: usize, point: Point) {
        self.remove(slot);
        self.insert(slot, point);
    }

    fn maybe_rebuild(&mut self) {
        if self.buffer.len() + self.stale_count > (self.rebuild_limit)(self.live) {
            self.rebuild();
        }
    }

    /// Compacts the edit log into a fresh snapshot over the live entries.
    pub fn rebuild(&mut self) {
        let mut entries: Vec<(usize, Point)> = Vec::with_capacity(self.live);
        for (pos, &slot) in self.snapshot_slots.iter().enumerate() {
            if !self.stale[pos] {
                entries.push((slot, self.snapshot_point(pos)));
            }
        }
        entries.extend_from_slice(&self.buffer);
        let rebuilds = self.rebuilds + 1;
        *self = DynamicKdTree::new(&entries);
        self.rebuilds = rebuilds;
    }

    /// The point stored at snapshot position `pos` (positions match the
    /// build order, which the static tree preserves in its `points` slice —
    /// recovered through a nearest query of radius 0 would be silly, so the
    /// slot table keeps its own copy via the buffer-or-snapshot split).
    fn snapshot_point(&self, pos: usize) -> Point {
        self.snapshot.point(pos)
    }

    /// All live slots within `radius` of `query` (closed ball), sorted
    /// ascending.  `scratch` holds snapshot positions between calls so the
    /// per-query work allocates nothing once the buffers have grown.
    pub fn within_radius_with(
        &self,
        query: &Point,
        radius: f64,
        scratch: &mut Vec<usize>,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        self.snapshot.within_radius_into(query, radius, scratch);
        for &pos in scratch.iter() {
            if !self.stale[pos] {
                out.push(self.snapshot_slots[pos]);
            }
        }
        for &(slot, p) in &self.buffer {
            if query.distance(&p) <= radius {
                out.push(slot);
            }
        }
        out.sort_unstable();
    }

    /// Allocating convenience wrapper over
    /// [`DynamicKdTree::within_radius_with`].
    pub fn within_radius(&self, query: &Point, radius: f64) -> Vec<usize> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.within_radius_with(query, radius, &mut scratch, &mut out);
        out
    }

    /// Nearest live slot to `query` for which `skip` returns `false`, as
    /// `(slot, distance)`.  Distance ties are broken towards the smaller
    /// slot, matching the static tree's contract.
    pub fn nearest_filtered_slot<F: Fn(usize) -> bool>(
        &self,
        query: &Point,
        skip: F,
    ) -> Option<(usize, f64)> {
        let snapshot_best = self
            .snapshot
            .nearest_filtered(query, |pos| {
                self.stale[pos] || skip(self.snapshot_slots[pos])
            })
            .map(|(pos, d)| (self.snapshot_slots[pos], d));
        let mut best = snapshot_best;
        for &(slot, p) in &self.buffer {
            if skip(slot) {
                continue;
            }
            let d = query.distance(&p);
            let better = match best {
                None => true,
                Some((bs, bd)) => d < bd || (d == bd && slot < bs),
            };
            if better {
                best = Some((slot, d));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_matches_fresh(dynamic: &DynamicKdTree, live: &[(usize, Point)]) {
        // Every query must agree with a fresh static tree over the live set.
        let points: Vec<Point> = live.iter().map(|&(_, p)| p).collect();
        let slots: Vec<usize> = live.iter().map(|&(s, _)| s).collect();
        let fresh = KdTree::build(&points);
        let queries = [
            Point::new(0.0, 0.0),
            Point::new(2.5, 1.5),
            Point::new(-1.0, 4.0),
        ];
        for q in &queries {
            for r in [0.5, 2.0, 10.0] {
                let mut expected: Vec<usize> = fresh
                    .within_radius(q, r)
                    .into_iter()
                    .map(|i| slots[i])
                    .collect();
                expected.sort_unstable();
                assert_eq!(dynamic.within_radius(q, r), expected, "q={q} r={r}");
            }
            let expected = fresh.nearest(q).map(|(i, d)| (slots[i], d));
            let got = dynamic.nearest_filtered_slot(q, |_| false);
            match (got, expected) {
                (None, None) => {}
                (Some((gs, gd)), Some((es, ed))) => {
                    assert!((gd - ed).abs() < 1e-12, "{gd} vs {ed}");
                    // Slot ids may differ only on exact distance ties where
                    // the two live orderings coincide anyway.
                    assert_eq!(gs, es);
                }
                other => panic!("mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn edits_track_a_fresh_tree() {
        let mut live: Vec<(usize, Point)> = (0..10)
            .map(|i| (i, Point::new(i as f64 * 0.7, (i % 3) as f64)))
            .collect();
        let mut t = DynamicKdTree::new(&live);
        assert_eq!(t.len_live(), 10);
        assert_matches_fresh(&t, &live);

        // Insert a few new slots.
        for (j, p) in [(10, Point::new(1.1, 2.2)), (11, Point::new(-0.5, 0.5))] {
            t.insert(j, p);
            live.push((j, p));
            assert_matches_fresh(&t, &live);
        }
        // Remove some snapshot and some buffered entries.
        for slot in [3usize, 10, 0] {
            t.remove(slot);
            live.retain(|&(s, _)| s != slot);
            assert_matches_fresh(&t, &live);
        }
        // Move an entry.
        t.update(5, Point::new(9.0, 9.0));
        live.iter_mut().find(|e| e.0 == 5).unwrap().1 = Point::new(9.0, 9.0);
        assert_matches_fresh(&t, &live);
        assert!(t.contains(5));
        assert!(!t.contains(3));
    }

    #[test]
    fn threshold_rebuild_fires_and_preserves_queries() {
        let mut live: Vec<(usize, Point)> = (0..40)
            .map(|i| (i, Point::new((i % 8) as f64, (i / 8) as f64)))
            .collect();
        let mut t = DynamicKdTree::new(&live);
        for (next, round) in (40usize..).zip(0..60) {
            let p = Point::new(0.37 * round as f64 % 7.0, 0.53 * round as f64 % 5.0);
            t.insert(next, p);
            live.push((next, p));
            let victim = live[round % live.len()].0;
            t.remove(victim);
            live.retain(|&(s, _)| s != victim);
        }
        assert!(t.rebuild_count() > 0, "threshold rebuild never fired");
        assert_eq!(t.len_live(), live.len());
        assert_matches_fresh(&t, &live);
    }

    #[test]
    fn empty_and_single_entry() {
        let t = DynamicKdTree::new(&[]);
        assert!(t.is_empty());
        assert!(t.nearest_filtered_slot(&Point::ORIGIN, |_| false).is_none());
        assert!(t.within_radius(&Point::ORIGIN, 5.0).is_empty());

        let mut t = DynamicKdTree::from_dense(&[Point::new(1.0, 1.0)]);
        assert_eq!(t.len_live(), 1);
        assert_eq!(t.within_radius(&Point::ORIGIN, 2.0), vec![0]);
        t.remove(0);
        assert!(t.is_empty());
        assert!(t.within_radius(&Point::ORIGIN, 2.0).is_empty());
    }
}
