//! Closest pair of points (divide and conquer, O(n log n)).
//!
//! Used by the instance-quality checks of the simulation crate (a point set
//! with coincident sensors has `lmax`-normalization issues) and by tests of
//! the kd-tree.

use crate::point::Point;

/// Result of a closest-pair query: the indices of the two closest points and
/// their distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosestPair {
    /// Index of the first point (in the input slice).
    pub i: usize,
    /// Index of the second point.
    pub j: usize,
    /// Euclidean distance between them.
    pub distance: f64,
}

/// Computes the closest pair of a point set.
///
/// Returns `None` when fewer than two points are supplied.
pub fn closest_pair(points: &[Point]) -> Option<ClosestPair> {
    if points.len() < 2 {
        return None;
    }
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| points[a].lex_cmp(&points[b]));
    let mut by_y = idx.clone();
    let mut best = ClosestPair {
        i: idx[0],
        j: idx[1],
        distance: f64::INFINITY,
    };
    recurse(points, &mut idx, &mut by_y, &mut best);
    // Normalize order of the reported indices.
    if best.i > best.j {
        std::mem::swap(&mut best.i, &mut best.j);
    }
    Some(best)
}

fn recurse(points: &[Point], by_x: &mut [usize], scratch: &mut [usize], best: &mut ClosestPair) {
    let n = by_x.len();
    if n <= 3 {
        for a in 0..n {
            for b in (a + 1)..n {
                consider(points, by_x[a], by_x[b], best);
            }
        }
        by_x.sort_by(|&a, &b| points[a].y.total_cmp(&points[b].y));
        return;
    }
    let mid = n / 2;
    let mid_x = points[by_x[mid]].x;
    {
        let (left, right) = by_x.split_at_mut(mid);
        let (sl, sr) = scratch.split_at_mut(mid);
        recurse(points, left, sl, best);
        recurse(points, right, sr, best);
    }
    // Merge the two halves by y into scratch, then copy back (so that the
    // slice is y-sorted for the parent call).
    merge_by_y(points, by_x, mid, scratch);
    by_x.copy_from_slice(scratch);

    // Collect points within `best.distance` of the dividing line and scan
    // each against the next few in y order.
    let strip: Vec<usize> = by_x
        .iter()
        .copied()
        .filter(|&i| (points[i].x - mid_x).abs() < best.distance)
        .collect();
    for a in 0..strip.len() {
        for b in (a + 1)..strip.len() {
            if points[strip[b]].y - points[strip[a]].y >= best.distance {
                break;
            }
            consider(points, strip[a], strip[b], best);
        }
    }
}

fn merge_by_y(points: &[Point], by_x: &[usize], mid: usize, out: &mut [usize]) {
    let (left, right) = by_x.split_at(mid);
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < left.len() && j < right.len() {
        if points[left[i]].y <= points[right[j]].y {
            out[k] = left[i];
            i += 1;
        } else {
            out[k] = right[j];
            j += 1;
        }
        k += 1;
    }
    while i < left.len() {
        out[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        out[k] = right[j];
        j += 1;
        k += 1;
    }
}

fn consider(points: &[Point], i: usize, j: usize, best: &mut ClosestPair) {
    let d = points[i].distance(&points[j]);
    if d < best.distance {
        *best = ClosestPair { i, j, distance: d };
    }
}

/// Brute-force closest pair, O(n²).  Exposed for testing and for tiny inputs.
pub fn closest_pair_brute_force(points: &[Point]) -> Option<ClosestPair> {
    if points.len() < 2 {
        return None;
    }
    let mut best = ClosestPair {
        i: 0,
        j: 1,
        distance: points[0].distance(&points[1]),
    };
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d = points[i].distance(&points[j]);
            if d < best.distance {
                best = ClosestPair { i, j, distance: d };
            }
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_single_return_none() {
        assert!(closest_pair(&[]).is_none());
        assert!(closest_pair(&[Point::new(0.0, 0.0)]).is_none());
    }

    #[test]
    fn two_points() {
        let pts = [Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        let cp = closest_pair(&pts).unwrap();
        assert_eq!((cp.i, cp.j), (0, 1));
        assert!((cp.distance - 5.0).abs() < 1e-12);
    }

    #[test]
    fn obvious_closest_pair_is_found() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(10.05, 10.0),
            Point::new(-7.0, 3.0),
            Point::new(5.0, -8.0),
        ];
        let cp = closest_pair(&pts).unwrap();
        assert_eq!((cp.i, cp.j), (1, 2));
        assert!((cp.distance - 0.05).abs() < 1e-9);
    }

    #[test]
    fn duplicate_points_have_distance_zero() {
        let pts = [
            Point::new(1.0, 1.0),
            Point::new(5.0, 5.0),
            Point::new(1.0, 1.0),
        ];
        let cp = closest_pair(&pts).unwrap();
        assert_eq!(cp.distance, 0.0);
        assert_eq!((cp.i, cp.j), (0, 2));
    }

    proptest! {
        #[test]
        fn prop_matches_brute_force(
            xs in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 2..80)
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let fast = closest_pair(&pts).unwrap();
            let brute = closest_pair_brute_force(&pts).unwrap();
            prop_assert!((fast.distance - brute.distance).abs() < 1e-9);
        }
    }
}
