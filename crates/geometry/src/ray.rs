//! Rays: half-lines from an origin in a given direction.
//!
//! The paper's constructions constantly talk about "the ray `~up`" (from a
//! sensor `u` towards its parent `p`) and sectors bounded by two such rays.

use crate::angle::Angle;
use crate::point::Point;
use crate::vector::Vector;
use serde::{Deserialize, Serialize};

/// A ray (half-line) rooted at `origin`, pointing in `direction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ray {
    /// Apex of the ray.
    pub origin: Point,
    /// Direction of the ray.
    pub direction: Angle,
}

impl Ray {
    /// Creates a ray from an origin and a direction.
    pub fn new(origin: Point, direction: Angle) -> Self {
        Ray { origin, direction }
    }

    /// Creates the ray from `origin` through `target`.
    ///
    /// If the two points coincide the direction defaults to [`Angle::ZERO`].
    pub fn towards(origin: Point, target: Point) -> Self {
        Ray::new(origin, Angle::of_ray(&origin, &target))
    }

    /// The point at parameter `t ≥ 0` along the ray.
    pub fn at(&self, t: f64) -> Point {
        self.origin + Vector::from_angle(self.direction) * t
    }

    /// Perpendicular distance from `p` to the ray (distance to the nearest
    /// point of the half-line, which may be the origin).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let d = Vector::from_angle(self.direction);
        let v = self.origin.vector_to(p);
        let t = v.dot(&d);
        if t <= 0.0 {
            self.origin.distance(p)
        } else {
            self.at(t).distance(p)
        }
    }

    /// Returns `true` when `p` lies (approximately) on the ray, within
    /// distance `eps`.
    pub fn contains(&self, p: &Point, eps: f64) -> bool {
        self.distance_to_point(p) <= eps
    }

    /// Counterclockwise angle from this ray to `other` (both must share the
    /// same origin for the result to be geometrically meaningful; only the
    /// directions are compared).
    pub fn ccw_angle_to(&self, other: &Ray) -> Angle {
        self.direction.ccw_to(&other.direction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PI;

    #[test]
    fn point_along_ray() {
        let r = Ray::new(Point::new(1.0, 1.0), Angle::from_degrees(90.0));
        let p = r.at(2.0);
        assert!(p.approx_eq(&Point::new(1.0, 3.0), 1e-12));
    }

    #[test]
    fn towards_builds_correct_direction() {
        let r = Ray::towards(Point::new(0.0, 0.0), Point::new(-1.0, 0.0));
        assert!((r.direction.radians() - PI).abs() < 1e-12);
    }

    #[test]
    fn distance_to_point_behind_origin_uses_origin() {
        let r = Ray::new(Point::ORIGIN, Angle::ZERO);
        // Point behind the ray (negative x): closest point is the origin.
        let p = Point::new(-3.0, 4.0);
        assert!((r.distance_to_point(&p) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_point_beside_ray_is_perpendicular() {
        let r = Ray::new(Point::ORIGIN, Angle::ZERO);
        let p = Point::new(5.0, 2.0);
        assert!((r.distance_to_point(&p) - 2.0).abs() < 1e-12);
        assert!(r.contains(&Point::new(7.0, 0.0), 1e-9));
        assert!(!r.contains(&p, 1e-9));
    }

    #[test]
    fn ccw_angle_between_rays() {
        let a = Ray::new(Point::ORIGIN, Angle::from_degrees(10.0));
        let b = Ray::new(Point::ORIGIN, Angle::from_degrees(100.0));
        assert!((a.ccw_angle_to(&b).degrees() - 90.0).abs() < 1e-9);
        assert!((b.ccw_angle_to(&a).degrees() - 270.0).abs() < 1e-9);
    }
}
