//! Planar points.
//!
//! The paper's set `S` of `n` sensors is a set of points in the plane; every
//! distance in the paper is the Euclidean distance `d(x, y)`.

use crate::vector::Vector;
use crate::EPS;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A point in the Euclidean plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance `d(self, other)`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only
    /// comparisons are needed, e.g. inside the MST builder).
    #[inline]
    pub fn distance_squared(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector from `self` to `other`.
    #[inline]
    pub fn vector_to(&self, other: &Point) -> Vector {
        Vector::new(other.x - self.x, other.y - self.y)
    }

    /// Midpoint of the segment `self`–`other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: returns `self` when `t = 0` and `other` when
    /// `t = 1`.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Returns `true` when both coordinates differ by at most `eps`.
    #[inline]
    pub fn approx_eq(&self, other: &Point, eps: f64) -> bool {
        (self.x - other.x).abs() <= eps && (self.y - other.y).abs() <= eps
    }

    /// Returns `true` when the two points coincide under the crate-wide
    /// [`EPS`] tolerance.
    #[inline]
    pub fn coincident(&self, other: &Point) -> bool {
        self.approx_eq(other, EPS)
    }

    /// Centroid (arithmetic mean) of a non-empty set of points.
    ///
    /// Returns `None` for an empty slice.
    pub fn centroid(points: &[Point]) -> Option<Point> {
        if points.is_empty() {
            return None;
        }
        let (sx, sy) = points
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        let n = points.len() as f64;
        Some(Point::new(sx / n, sy / n))
    }

    /// Returns the point rotated by `theta` radians counterclockwise around
    /// `pivot`.
    pub fn rotated_around(&self, pivot: &Point, theta: f64) -> Point {
        let (s, c) = theta.sin_cos();
        let dx = self.x - pivot.x;
        let dy = self.y - pivot.y;
        Point::new(pivot.x + dx * c - dy * s, pivot.y + dx * s + dy * c)
    }

    /// Returns whether every coordinate is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison by `(x, y)`, used for deterministic
    /// tie-breaking in hulls and MSTs.
    pub fn lex_cmp(&self, other: &Point) -> std::cmp::Ordering {
        self.x
            .total_cmp(&other.x)
            .then_with(|| self.y.total_cmp(&other.y))
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;

    fn add(self, v: Vector) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }
}

impl Sub<Vector> for Point {
    type Output = Point;

    fn sub(self, v: Vector) -> Point {
        Point::new(self.x - v.x, self.y - v.y)
    }
}

impl Sub<Point> for Point {
    type Output = Vector;

    fn sub(self, other: Point) -> Vector {
        Vector::new(self.x - other.x, self.y - other.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((b.distance(&a) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn distance_squared_matches_distance() {
        let a = Point::new(-1.0, 0.5);
        let b = Point::new(2.5, -3.0);
        assert!((a.distance_squared(&b) - a.distance(&b).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert!(a.midpoint(&b).approx_eq(&a.lerp(&b, 0.5), 1e-12));
        assert!(a.lerp(&b, 0.0).approx_eq(&a, 1e-12));
        assert!(a.lerp(&b, 1.0).approx_eq(&b, 1e-12));
    }

    #[test]
    fn centroid_of_square_is_center() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let c = Point::centroid(&pts).unwrap();
        assert!(c.approx_eq(&Point::new(0.5, 0.5), 1e-12));
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(Point::centroid(&[]).is_none());
    }

    #[test]
    fn rotation_by_quarter_turn() {
        let p = Point::new(1.0, 0.0);
        let r = p.rotated_around(&Point::ORIGIN, std::f64::consts::FRAC_PI_2);
        assert!(r.approx_eq(&Point::new(0.0, 1.0), 1e-12));
    }

    #[test]
    fn point_vector_arithmetic() {
        let p = Point::new(1.0, 1.0);
        let v = Vector::new(2.0, -1.0);
        assert!((p + v).approx_eq(&Point::new(3.0, 0.0), 1e-12));
        assert!((p - v).approx_eq(&Point::new(-1.0, 2.0), 1e-12));
        let w = Point::new(3.0, 0.0) - p;
        assert!((w.x - 2.0).abs() < 1e-12 && (w.y + 1.0).abs() < 1e-12);
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        let a = Point::new(0.0, 5.0);
        let b = Point::new(1.0, -5.0);
        let c = Point::new(0.0, 6.0);
        assert_eq!(a.lex_cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(a.lex_cmp(&c), std::cmp::Ordering::Less);
        assert_eq!(a.lex_cmp(&a), std::cmp::Ordering::Equal);
    }

    proptest! {
        #[test]
        fn prop_triangle_inequality(ax in -1e3..1e3f64, ay in -1e3..1e3f64,
                                    bx in -1e3..1e3f64, by in -1e3..1e3f64,
                                    cx in -1e3..1e3f64, cy in -1e3..1e3f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        }

        #[test]
        fn prop_rotation_preserves_distance(px in -1e3..1e3f64, py in -1e3..1e3f64,
                                            qx in -1e3..1e3f64, qy in -1e3..1e3f64,
                                            theta in 0.0..std::f64::consts::TAU) {
            let p = Point::new(px, py);
            let q = Point::new(qx, qy);
            let pivot = Point::new(0.3, -0.7);
            let d_before = p.distance(&q);
            let d_after = p.rotated_around(&pivot, theta).distance(&q.rotated_around(&pivot, theta));
            prop_assert!((d_before - d_after).abs() < 1e-6 * (1.0 + d_before));
        }
    }
}
