//! # antennae-parallel
//!
//! Order-preserving parallel map, the execution primitive under every
//! parallel pipeline in the workspace: the batch orientation pipeline and
//! verification fan-outs in `antennae-core`, the simulation crate's
//! parameter sweeps — and, since the build pipeline went parallel, the
//! kd-tree subtree construction in `antennae-geometry` and the chunked
//! Borůvka rounds in `antennae-graph`.
//!
//! This crate sits at the bottom of the dependency graph (it depends on
//! nothing) precisely so that the geometry and graph substrates can fan work
//! out without reaching *up* into `antennae-core`; `antennae_core::parallel`
//! re-exports everything here, so existing import paths keep working.
//!
//! Work items are pulled off a shared atomic counter by
//! `std::thread::scope` workers, so no item is processed twice and results
//! land in input order regardless of scheduling.
//!
//! The contract every caller leans on: for a pure `f`, the output of
//! [`parallel_map`] is *identical* — not just equivalent — at every thread
//! count, which is what lets the workspace promise bit-exact builds
//! (`tests/parallel_build_oracle.rs`, `tests/shard_oracle.rs`) while still
//! fanning out:
//!
//! ```
//! use antennae_parallel::{chunk_ranges, parallel_map};
//!
//! let items: Vec<u64> = (0..1000).collect();
//! let serial = parallel_map(&items, 1, |x| x.wrapping_mul(0x9E37_79B9));
//! let fanned = parallel_map(&items, 8, |x| x.wrapping_mul(0x9E37_79B9));
//! assert_eq!(serial, fanned); // same order, same values, any thread count
//!
//! // Stages that need index ranges instead of items chunk the same way:
//! let ranges = chunk_ranges(items.len(), 8);
//! assert_eq!(ranges.iter().map(|&(s, e)| e - s).sum::<usize>(), items.len());
//! ```

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` using up to `threads` worker threads, preserving the
/// input order of the results.
///
/// With `threads <= 1` (or a single item) the map runs inline on the calling
/// thread — handy for debugging and for comparing sequential vs parallel
/// throughput in the benches.
///
/// Results are written through **disjoint chunk-claimed slots** carved out of
/// the output vector's spare capacity: workers pull chunk indices off one
/// atomic counter and take exclusive `&mut` ownership of their chunk's slots
/// (one uncontended `Mutex::take` per *chunk*, not per item, purely to hand
/// the `&mut` slice across threads safely).  The earlier implementation
/// locked a per-item `Mutex<Option<R>>` for every single result, which put a
/// lock acquisition on the hot path of every batch orientation, portfolio
/// fan-out and verification sweep; the `parallel` bench pins the difference.
///
/// # Examples
///
/// ```
/// use antennae_parallel::parallel_map;
///
/// let items: Vec<u64> = (0..100).collect();
/// let squares = parallel_map(&items, 4, |x| x * x);
/// assert_eq!(squares[9], 81);
/// assert_eq!(squares.len(), 100);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if threads <= 1 || items.len() == 1 {
        return items.iter().map(&f).collect();
    }
    let len = items.len();
    let worker_count = threads.min(len);
    // Small chunks keep dynamic load balancing (stragglers don't serialize
    // the tail), large chunks amortize the claim; 4 chunks per worker is a
    // comfortable middle for this workspace's coarse work items.
    let chunk_size = len.div_ceil(worker_count * 4).max(1);

    let mut results: Vec<R> = Vec::with_capacity(len);
    // Chunk the uninitialized tail of the output vector into disjoint `&mut`
    // slots.  Each chunk is claimed exactly once (`Option::take` under a
    // never-contended per-chunk mutex), after which its worker writes every
    // slot without further synchronization.
    let slots: Vec<Mutex<Option<&mut [MaybeUninit<R>]>>> = results.spare_capacity_mut()[..len]
        .chunks_mut(chunk_size)
        .map(|chunk| Mutex::new(Some(chunk)))
        .collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| loop {
                let chunk_index = next.fetch_add(1, Ordering::Relaxed);
                if chunk_index >= slots.len() {
                    break;
                }
                let chunk = slots[chunk_index]
                    .lock()
                    .expect("chunk slot poisoned")
                    .take()
                    .expect("every chunk is claimed exactly once");
                let base = chunk_index * chunk_size;
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    slot.write(f(&items[base + offset]));
                }
            });
        }
    });

    // SAFETY: the scope joined every worker without panicking, the chunks
    // tile `0..len` exactly, and each claimed chunk wrote all of its slots —
    // so all `len` slots are initialized.  (If a worker panicked, the scope
    // propagates the panic above this point and the written slots leak,
    // which is safe.)
    unsafe { results.set_len(len) };
    results
}

/// Splits `0..len` into at most `threads * 4` contiguous, non-empty ranges —
/// the chunking the parallel build stages (kd-tree subtree fan-out, Borůvka
/// component scans, Lemma-1 sector assignment, CSR row assembly) feed to
/// [`parallel_map`].
///
/// Four chunks per worker keeps stragglers from serializing the tail while
/// amortizing per-chunk overhead, mirroring [`parallel_map`]'s own internal
/// chunking.  With `threads <= 1` a single full-range chunk is returned.
/// Every range is non-empty and the ranges tile `0..len` exactly, in order.
///
/// # Examples
///
/// ```
/// use antennae_parallel::chunk_ranges;
///
/// let ranges = chunk_ranges(10, 2);
/// assert_eq!(ranges, vec![(0, 2), (2, 4), (4, 6), (6, 8), (8, 10)]);
/// assert_eq!(chunk_ranges(10, 1), vec![(0, 10)]); // serial: one chunk
/// assert!(chunk_ranges(0, 4).is_empty());
/// ```
pub fn chunk_ranges(len: usize, threads: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return vec![(0, len)];
    }
    let chunk = len.div_ceil(threads * 4).max(1);
    (0..len.div_ceil(chunk))
        .map(|i| (i * chunk, ((i + 1) * chunk).min(len)))
        .collect()
}

/// The hard fallback cap on [`default_threads`]: the pre-override behaviour
/// kept as the conservative default for machines where nobody has asked for
/// more (the workloads are memory-light and small enough that far more
/// threads stop paying off on typical instances).
pub const DEFAULT_THREAD_CAP: usize = 8;

/// The number of worker threads parallel pipelines use by default.
///
/// The `ANTENNAE_THREADS` environment variable, when set to a positive
/// integer, wins outright — *uncapped*, so >8-core machines can be told to
/// actually scale (and `ANTENNAE_THREADS=1` forces every pipeline
/// sequential, which is how the parallel-vs-serial oracles pin bit-equality
/// from the outside).  Otherwise the machine's available parallelism is
/// used, capped at [`DEFAULT_THREAD_CAP`].  A malformed or zero override is
/// ignored rather than honoured as nonsense.
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("ANTENNAE_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(DEFAULT_THREAD_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = parallel_map(&Vec::<i32>::new(), 4, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn sequential_and_parallel_agree_and_preserve_order() {
        let items: Vec<u64> = (0..200).collect();
        let seq = parallel_map(&items, 1, |x| x * x);
        let par = parallel_map(&items, 4, |x| x * x);
        assert_eq!(seq, par);
        assert_eq!(seq[10], 100);
        assert_eq!(seq.len(), 200);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let counter = AtomicU32::new(0);
        let items: Vec<u32> = (0..500).collect();
        let out = parallel_map(&items, 8, |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            *x
        });
        assert_eq!(out.len(), 500);
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = vec![1, 2, 3];
        let out = parallel_map(&items, 64, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn chunk_ranges_tile_the_input_exactly() {
        for len in [0usize, 1, 2, 7, 100, 1023] {
            for threads in [1usize, 2, 3, 8, 64] {
                let ranges = chunk_ranges(len, threads);
                if len == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges.last().unwrap().1, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
                }
                assert!(ranges.iter().all(|&(s, e)| s < e), "ranges are non-empty");
                if threads > 1 {
                    assert!(ranges.len() <= threads * 4);
                }
            }
        }
    }

    #[test]
    fn default_threads_is_positive() {
        // The env override is process-global, so this test only asserts the
        // invariants that hold regardless of whether ANTENNAE_THREADS is set.
        assert!(default_threads() >= 1);
        if std::env::var("ANTENNAE_THREADS").is_err() {
            assert!(default_threads() <= DEFAULT_THREAD_CAP);
        }
    }
}
