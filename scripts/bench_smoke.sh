#!/usr/bin/env bash
# Bench smoke run: quick-mode passes of the headline criterion benches
# (traversal, verification, dispatch_policy, dynamic, parallel, serve,
# store, shard, mst_scaling), parsed into BENCH_10.json so every PR leaves a machine-readable
# point on the bench trajectory.  `scripts/bench_gate.sh` compares this
# output against the previous committed BENCH_*.json.
#
#   ./scripts/bench_smoke.sh            # quick mode (40 ms budget per bench)
#   CRITERION_STUB_MS=200 ./scripts/bench_smoke.sh   # steadier numbers
#   ./scripts/bench_smoke.sh out.json   # custom output path
#
# Output: a JSON array of {suite, workload, n, ns_per_iter, iters} objects —
# `workload` is the full criterion id, `n` the trailing numeric size
# parameter when the id has one (null otherwise), `ns_per_iter` the best
# measured per-iteration wall-clock in nanoseconds.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK_MS="${CRITERION_STUB_MS:-40}"
OUT="${1:-BENCH_10.json}"
BENCHES=(traversal verification dispatch_policy dynamic parallel serve store shard mst_scaling)

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

for bench in "${BENCHES[@]}"; do
    echo "== bench: $bench (CRITERION_STUB_MS=$QUICK_MS) =="
    CRITERION_STUB_MS="$QUICK_MS" cargo bench -p antennae-bench --bench "$bench" \
        | tee /dev/stderr | grep '^bench ' >> "$RAW" || true
done

# Lines look like:  bench group/id/n ... 12.345 µs/iter (1023 iters)
awk '
BEGIN { print "["; first = 1 }
$1 == "bench" {
    name = $2
    value = $4
    unit = $5
    sub(/\/iter$/, "", unit)
    iters = $6
    sub(/^\(/, "", iters)
    ns = value
    if (unit == "s")       ns = value * 1e9
    else if (unit == "ms") ns = value * 1e6
    else if (unit == "µs") ns = value * 1e3
    # suite = first path segment; n = trailing segment when numeric
    split(name, parts, "/")
    suite = parts[1]
    n = "null"
    last = parts[length(parts)]
    if (last ~ /^[0-9]+$/) n = last
    if (!first) printf(",\n")
    first = 0
    printf("  {\"suite\": \"%s\", \"workload\": \"%s\", \"n\": %s, \"ns_per_iter\": %.1f, \"iters\": %s}", suite, name, n, ns, iters)
}
END { print "\n]" }
' "$RAW" > "$OUT"

echo "bench_smoke: wrote $(grep -c '"workload"' "$OUT") entries to $OUT"
