#!/usr/bin/env bash
# Repo verification gate: build, full test suite, and warning-free rustdoc.
#
#   ./scripts/verify.sh          # everything (tier-1 + workspace + docs)
#   ./scripts/verify.sh --quick  # tier-1 only (release build + root tests)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== formatting (cargo fmt --check) =="
cargo fmt --all --check

echo "== tier-1: release build =="
cargo build --release

if [[ "${1:-}" == "--quick" ]]; then
    echo "== tier-1: tests =="
    cargo test -q
    echo "verify: tier-1 OK (quick mode, skipped workspace tests and docs)"
    exit 0
fi

# The workspace run is a strict superset of the tier-1 `cargo test -q`
# (which covers the root package only), so the full gate runs it once.
# PROPTEST_CASES pins every property suite — the verification engine's
# oracle suite (tests/verification_oracle.rs, fast kd-tree path vs dense
# reference) and the dynamic-instance edit-script oracle suite
# (tests/dynamic_oracle.rs, incremental MST/scheme/digraph/verdict vs
# from-scratch rebuild after every edit) — to a fixed budget: large enough
# to sweep degenerate geometry, deterministic in CI time.  The vendored
# proptest stub derives every case from the test name + case index, so the
# run is reproducible.
echo "== workspace tests (unit + property + doctests; PROPTEST_CASES=128) =="
PROPTEST_CASES=128 cargo test --workspace -q

echo "== clippy, warnings as errors =="
cargo clippy --workspace --all-targets -- -D warnings

# Benches are not exercised by the test suite; building them (without
# running) keeps them from rotting.  `scripts/bench_smoke.sh` runs the
# headline benches in quick mode and records the numbers in BENCH_5.json;
# `scripts/bench_gate.sh` compares that run against the previous committed
# BENCH_*.json and flags >2x regressions (advisory CI job).
echo "== benches compile (cargo bench --no-run) =="
cargo bench --no-run

echo "== rustdoc, warnings as errors =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
    -p antennae \
    -p antennae-geometry \
    -p antennae-graph \
    -p antennae-core \
    -p antennae-sim \
    -p antennae-bench

echo "verify: all gates OK"
