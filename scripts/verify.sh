#!/usr/bin/env bash
# Repo verification gate: build, full test suite, and warning-free rustdoc.
#
#   ./scripts/verify.sh          # everything (tier-1 + workspace + docs)
#   ./scripts/verify.sh --quick  # tier-1 only (release build + root tests)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== formatting (cargo fmt --check) =="
cargo fmt --all --check

echo "== tier-1: release build =="
cargo build --release

if [[ "${1:-}" == "--quick" ]]; then
    echo "== tier-1: tests =="
    cargo test -q
    echo "verify: tier-1 OK (quick mode, skipped workspace tests and docs)"
    exit 0
fi

# The workspace run is a strict superset of the tier-1 `cargo test -q`
# (which covers the root package only), so the full gate runs it once.
# PROPTEST_CASES pins every property suite — the verification engine's
# oracle suite (tests/verification_oracle.rs, fast kd-tree path vs dense
# reference) and the dynamic-instance edit-script oracle suite
# (tests/dynamic_oracle.rs, incremental MST/scheme/digraph/verdict vs
# from-scratch rebuild after every edit) — to a fixed budget: large enough
# to sweep degenerate geometry, deterministic in CI time.  The vendored
# proptest stub derives every case from the test name + case index, so the
# run is reproducible.
echo "== workspace tests (unit + property + doctests; PROPTEST_CASES=128) =="
PROPTEST_CASES=128 cargo test --workspace -q

# The chaos oracle (tests/chaos_oracle.rs) already ran once above with its
# built-in seeds; this pass re-runs the seeded sweep at the pinned fault
# schedules so the gate is explicit about which chaos runs every PR must
# survive.  Override CHAOS_SEEDS (comma-separated u64s) to explore others.
echo "== chaos oracle (pinned fault seeds) =="
CHAOS_SEEDS="$((0x00C0FFEE)),$((0x0BAD5EED)),$((0x5CA1AB1E))" \
    cargo test -q --test chaos_oracle seeded_fault_scripts

echo "== clippy, warnings as errors =="
cargo clippy --workspace --all-targets -- -D warnings

# Server smoke: boot the real `orientd` binary on an ephemeral loopback
# port, drive one deployment over a raw TCP session (bash /dev/tcp — no
# extra tooling), and require a clean SHUTDOWN exit.  The in-process tests
# already cover the protocol exhaustively; this step pins the last mile the
# test harness can't: the released binary, argument parsing, real sockets
# and process exit.
# The robustness knobs ride along: a token file gates the session behind
# AUTH, and explicit queue/deadline/quota flags prove the grammar on the
# released binary.
echo "== orientd server smoke (release binary over loopback) =="
ORIENTD_LOG="$(mktemp)"
TOKEN_FILE="$(mktemp)"
printf 'smoke-secret\n' > "$TOKEN_FILE"
./target/release/orientd --listen 127.0.0.1:0 --threads 2 --print-port \
    --max-queue 64 --read-timeout-ms 10000 --tenant-quota 1000 \
    --auth-token-file "$TOKEN_FILE" \
    > "$ORIENTD_LOG" 2>/dev/null &
ORIENTD_PID=$!
trap 'kill "$ORIENTD_PID" 2>/dev/null || true; rm -f "$ORIENTD_LOG" "$TOKEN_FILE"' EXIT
PORT=""
for _ in $(seq 1 50); do
    PORT="$(awk '$1 == "PORT" { print $2; exit }' "$ORIENTD_LOG")"
    [[ -n "$PORT" ]] && break
    sleep 0.1
done
[[ -n "$PORT" ]] || { echo "orientd never reported its port" >&2; exit 1; }
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
smoke_request() {
    local reply
    printf '%s\n' "$1" >&3
    IFS= read -r reply <&3
    echo "  > $1"
    echo "  < $reply"
    [[ "$reply" == OK* ]] || { echo "smoke request failed: $1 -> $reply" >&2; exit 1; }
}
smoke_request "PING"
# Unauthenticated sessions may only PING; AUTH with the token file's
# contents unlocks the rest.
printf 'STATS\n' >&3
IFS= read -r GATED <&3
echo "  > STATS (unauthenticated)"
echo "  < $GATED"
[[ "$GATED" == "ERR unauthorized"* ]] \
    || { echo "unauthenticated STATS should be refused: $GATED" >&2; exit 1; }
smoke_request "AUTH smoke-secret"
smoke_request "CREATE smoke 2 3.7699111843077517 0 0 1 0 2 0.5 1.5 1.5"
smoke_request "EDIT smoke INSERT 0.5 0.75"
smoke_request "ORIENT smoke"
smoke_request "VERIFY smoke"
smoke_request "QUERY smoke"
smoke_request "STATS"
smoke_request "SHUTDOWN"
exec 3<&- 3>&-
wait "$ORIENTD_PID" || { echo "orientd exited non-zero" >&2; exit 1; }
trap - EXIT
rm -f "$ORIENTD_LOG" "$TOKEN_FILE"
echo "orientd smoke OK (port $PORT, auth + clean shutdown)"

# Durable recovery smoke: the same binary with --data-dir must carry a
# deployment across a full process restart — write, SHUTDOWN, reboot on the
# same directory, and answer QUERY/VERIFY for the recovered tenant.  The
# crash-grade variants (SIGKILL mid-burst, torn tails) live in
# tests/durable_recovery.rs and tests/durability_oracle.rs; this step pins
# the operational happy path end to end, flags included.
echo "== orientd durable recovery smoke (write -> SHUTDOWN -> restart -> QUERY) =="
DURABLE_DIR="$(mktemp -d)"
DURABLE_LOG="$(mktemp)"
trap 'kill "$ORIENTD_PID" 2>/dev/null || true; rm -rf "$DURABLE_DIR"; rm -f "$DURABLE_LOG"' EXIT

durable_boot() {
    ./target/release/orientd --listen 127.0.0.1:0 --threads 2 --print-port \
        --data-dir "$DURABLE_DIR" --sync every-n=4 > "$DURABLE_LOG" 2>&1 &
    ORIENTD_PID=$!
    PORT=""
    for _ in $(seq 1 50); do
        PORT="$(awk '$1 == "PORT" { print $2; exit }' "$DURABLE_LOG")"
        [[ -n "$PORT" ]] && break
        sleep 0.1
    done
    [[ -n "$PORT" ]] || { echo "durable orientd never reported its port" >&2; exit 1; }
}

durable_request() {
    printf '%s\n' "$1" >&3
    IFS= read -r DURABLE_REPLY <&3
    echo "  > $1"
    echo "  < $DURABLE_REPLY"
    [[ "$DURABLE_REPLY" == OK* ]] || { echo "durable request failed: $1 -> $DURABLE_REPLY" >&2; exit 1; }
}

durable_boot
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
durable_request "CREATE persisted 2 3.7699111843077517 0 0 1 0 2 0.5 1.5 1.5"
durable_request "EDIT persisted INSERT 0.5 0.75"
durable_request "ORIENT persisted"
durable_request "QUERY persisted"
BEFORE_RESTART="$DURABLE_REPLY"
durable_request "SHUTDOWN"
exec 3<&- 3>&-
wait "$ORIENTD_PID" || { echo "durable orientd exited non-zero" >&2; exit 1; }

durable_boot
grep -q "recovered 1 deployment" "$DURABLE_LOG" \
    || { echo "restart did not report a recovered deployment:" >&2; cat "$DURABLE_LOG" >&2; exit 1; }
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
durable_request "QUERY persisted"
AFTER_RESTART="$DURABLE_REPLY"
# revision is a per-process repair counter; everything else must match.
if [[ "$(sed 's/revision=[0-9]*/revision=_/' <<<"$BEFORE_RESTART")" \
   != "$(sed 's/revision=[0-9]*/revision=_/' <<<"$AFTER_RESTART")" ]]; then
    echo "recovered QUERY diverged:" >&2
    echo "  before: $BEFORE_RESTART" >&2
    echo "  after:  $AFTER_RESTART" >&2
    exit 1
fi
durable_request "VERIFY persisted"
[[ "$DURABLE_REPLY" == *"valid=true"* ]] \
    || { echo "recovered deployment failed verification: $DURABLE_REPLY" >&2; exit 1; }
durable_request "SHUTDOWN"
exec 3<&- 3>&-
wait "$ORIENTD_PID" || { echo "durable orientd exited non-zero after recovery" >&2; exit 1; }
trap - EXIT
rm -rf "$DURABLE_DIR"
rm -f "$DURABLE_LOG"
echo "orientd durable recovery smoke OK"

# The docs suite must track the code: check_docs.sh verifies existence and
# README linkage, then runs tests/docs_sync.rs (error-code table pinned to
# ErrorCode::ALL, framing caps to the compiled constants, verb coverage).
# --fast here because the full workspace test run above already executed
# docs_sync; this step only adds the structural greps.
echo "== docs suite (scripts/check_docs.sh) =="
./scripts/check_docs.sh --fast

# Benches are not exercised by the test suite; building them (without
# running) keeps them from rotting.  `scripts/bench_smoke.sh` runs the
# headline benches in quick mode and records the numbers in BENCH_10.json;
# `scripts/bench_gate.sh` compares that run against the previous committed
# BENCH_*.json and flags >2x regressions (advisory CI job).
echo "== benches compile (cargo bench --no-run) =="
cargo bench --no-run

echo "== rustdoc, warnings as errors =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
    -p antennae \
    -p antennae-parallel \
    -p antennae-geometry \
    -p antennae-graph \
    -p antennae-core \
    -p antennae-serve \
    -p antennae-store \
    -p antennae-sim \
    -p antennae-bench

echo "verify: all gates OK"
