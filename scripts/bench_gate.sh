#!/usr/bin/env bash
# Bench regression gate: runs scripts/bench_smoke.sh into BENCH_10.json and
# compares every workload that also appears in the previous committed
# BENCH_*.json, failing when any entry regressed by more than the gate
# factor.
#
#   ./scripts/bench_gate.sh                 # gate at the default 2.0x
#   BENCH_GATE_FACTOR=1.5 ./scripts/bench_gate.sh   # stricter gate
#   ./scripts/bench_gate.sh --check-only    # compare an existing BENCH_10.json
#                                           # without re-running the benches
#
# Knobs:
#   BENCH_GATE_FACTOR  ratio of current/previous ns_per_iter that counts as a
#                      regression (default 2.0 — quick-mode smoke numbers are
#                      noisy, so the gate is deliberately loose).
#   CRITERION_STUB_MS  forwarded to bench_smoke.sh for steadier numbers.
#
# The CI workflow wires this as an *advisory* job (non-blocking): a red gate
# is a prompt to look at the numbers, not an automatic veto — container noise
# can trip it, and genuine regressions should be discussed in the PR.
set -euo pipefail
cd "$(dirname "$0")/.."

FACTOR="${BENCH_GATE_FACTOR:-2.0}"
CURRENT="BENCH_10.json"

# Previous trajectory point: the highest-numbered committed BENCH_*.json
# other than the current output.
PREV=""
for f in $(ls BENCH_*.json 2>/dev/null | sort -V); do
    [[ "$f" == "$CURRENT" ]] && continue
    PREV="$f"
done
if [[ -z "$PREV" ]]; then
    echo "bench_gate: no previous BENCH_*.json to compare against; nothing to gate"
    exit 0
fi

if [[ "${1:-}" != "--check-only" ]]; then
    ./scripts/bench_smoke.sh "$CURRENT"
fi
if [[ ! -f "$CURRENT" ]]; then
    echo "bench_gate: $CURRENT missing (run scripts/bench_smoke.sh first)" >&2
    exit 2
fi

echo "bench_gate: comparing $CURRENT against $PREV (gate factor ${FACTOR}x)"

# Extract "workload ns_per_iter" pairs from the flat JSON arrays.
extract() {
    tr ',' '\n' < "$1" | tr -d ' {}' | awk -F'"' '
        /"workload":/ { wl = $4 }
        /"ns_per_iter":/ { split($0, kv, ":"); printf "%s %s\n", wl, kv[2] }
    '
}

extract "$PREV" | sort > /tmp/bench_gate_prev.$$
extract "$CURRENT" | sort > /tmp/bench_gate_cur.$$
trap 'rm -f /tmp/bench_gate_prev.$$ /tmp/bench_gate_cur.$$' EXIT

join /tmp/bench_gate_prev.$$ /tmp/bench_gate_cur.$$ | awk -v factor="$FACTOR" '
{
    workload = $1; prev = $2; cur = $3
    ratio = (prev > 0) ? cur / prev : 1
    flag = (ratio > factor) ? "REGRESSED" : "ok"
    printf "%-55s %12.0f -> %12.0f ns  %6.2fx  %s\n", workload, prev, cur, ratio, flag
    if (ratio > factor) regressions++
    compared++
}
END {
    if (compared == 0) {
        print "bench_gate: no overlapping workloads between runs; nothing gated"
        exit 0
    }
    printf "bench_gate: %d workloads compared, %d regressed beyond %.2fx\n", \
        compared, regressions + 0, factor
    exit (regressions > 0) ? 1 : 0
}
'
