#!/usr/bin/env bash
# Docs gate: the docs suite must exist, be linked from the README, and stay
# in sync with the code it describes.
#
#   ./scripts/check_docs.sh          # structural checks + doc-sync tests
#   ./scripts/check_docs.sh --fast   # structural checks only (no cargo)
#
# The structural half is cheap grep: every doc file exists, the README links
# each of them, and PROTOCOL.md carries the pinned error-code table marker.
# The semantic half — the error-code table matching `ErrorCode::ALL`, the
# framing caps matching the compiled constants, verb coverage — lives in
# tests/docs_sync.rs so it fails with a real diff; this script runs it
# unless --fast is given.
set -euo pipefail
cd "$(dirname "$0")/.."

DOCS=(docs/PROTOCOL.md docs/OPERATIONS.md docs/ARCHITECTURE.md)

fail() { echo "check_docs: $*" >&2; exit 1; }

for doc in "${DOCS[@]}"; do
    [[ -s "$doc" ]] || fail "$doc is missing or empty"
    grep -qF "$doc" README.md || fail "README.md does not link $doc"
done

# The pinned error-code vocabulary: PROTOCOL.md must state the count and
# carry one table row per code (the exact set is asserted by docs_sync).
grep -q '\*\*17\*\* kebab-case codes' docs/PROTOCOL.md \
    || fail "docs/PROTOCOL.md must state the pinned 17-code vocabulary"

# Every doc the suite cross-references must exist where it points.
for ref in PAPER.md ROADMAP.md CHANGES.md; do
    [[ -s "$ref" ]] || fail "$ref is missing or empty"
done

# OPERATIONS.md must cover every flag the binary parses (grep the usage
# string out of the source so a new flag can't land undocumented).
while read -r flag; do
    grep -qF "\`$flag" docs/OPERATIONS.md \
        || fail "docs/OPERATIONS.md does not document orientd flag $flag"
done < <(grep -o '"--[a-z-]*" =>' src/bin/orientd.rs | cut -d'"' -f2 | sort -u)

if [[ "${1:-}" != "--fast" ]]; then
    echo "check_docs: structural checks OK; running doc-sync tests"
    cargo test -q --test docs_sync
fi

echo "check_docs: OK"
