//! # antennae
//!
//! Umbrella crate for the reproduction of Bhattacharya, Hu, Shi, Kranakis and
//! Krizanc, *"Sensor Network Connectivity with Multiple Directional Antennae
//! of a Given Angular Sum"* (IPPS 2009).
//!
//! The workspace is split into focused crates; this crate simply re-exports
//! them under one roof so that applications (and the runnable examples in
//! `examples/`) can depend on a single facade:
//!
//! * [`geometry`] — planar geometry substrate (points, angles, sectors,
//!   spatial indexing).
//! * [`graph`] — graph substrate (Euclidean MSTs with maximum degree 5,
//!   rooted trees, strong connectivity).
//! * [`core`] — the paper's contribution: antenna orientation algorithms for
//!   every row of Table 1, plus the verification machinery.
//! * [`sim`] — workload generators, energy model, flooding simulation and the
//!   experiment drivers that regenerate every table and figure.
//! * [`serve`] — orientation-as-a-service: the `orientd` multi-tenant
//!   deployment server, its line protocol, and in-process/TCP clients.
//! * [`store`] — `orientd`'s durability layer: per-tenant write-ahead logs,
//!   snapshot compaction and crash recovery.
//!
//! ## Quickstart
//!
//! ```
//! use antennae::prelude::*;
//!
//! // A small deployment of sensors in the unit square.
//! let points = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(1.0, 0.2),
//!     Point::new(0.4, 0.9),
//!     Point::new(1.3, 1.1),
//!     Point::new(0.1, 1.4),
//! ];
//!
//! // Each sensor has two antennae whose spreads sum to at most π; the
//! // solver picks the Table 1 construction with the best proven guarantee.
//! let instance = Instance::new(points).expect("valid instance");
//! let outcome = Solver::on(&instance)
//!     .budget(2, std::f64::consts::PI)
//!     .run()
//!     .expect("orientation exists");
//!
//! // The induced directed graph is strongly connected and every antenna's
//! // range is at most 2·sin(2π/9) times the longest MST edge.
//! let report = verify(&instance, &outcome.scheme);
//! assert!(report.is_strongly_connected);
//! assert!(outcome.measured_radius_over_lmax <= 2.0 * (2.0 * std::f64::consts::PI / 9.0).sin() + 1e-9);
//!
//! // Running *every* applicable construction and keeping the measured best
//! // is a one-line policy change:
//! let portfolio = Solver::on(&instance)
//!     .budget(2, std::f64::consts::PI)
//!     .policy(SelectionPolicy::Portfolio)
//!     .run()
//!     .expect("orientation exists");
//! assert!(portfolio.measured_radius_over_lmax <= outcome.measured_radius_over_lmax);
//! ```

pub use antennae_core as core;
pub use antennae_geometry as geometry;
pub use antennae_graph as graph;
pub use antennae_serve as serve;
pub use antennae_sim as sim;
pub use antennae_store as store;

/// Convenience re-exports of the types used by almost every application.
pub mod prelude {
    // The deprecated dispatch shims stay re-exported so pre-0.2 callers keep
    // compiling; new code should use `Solver`.
    #[allow(deprecated)]
    pub use antennae_core::algorithms::dispatch::{orient, orient_with_report};
    pub use antennae_core::algorithms::AlgorithmKind;
    pub use antennae_core::antenna::{Antenna, AntennaBudget, SensorAssignment};
    pub use antennae_core::batch::{BatchOrienter, InstanceBatch};
    pub use antennae_core::bounds;
    pub use antennae_core::dynamic::{
        BatchOutcome, DynamicInstance, DynamicSolverSession, Edit, EditOutcome,
    };
    pub use antennae_core::instance::Instance;
    pub use antennae_core::scheme::OrientationScheme;
    pub use antennae_core::solver::{
        Guarantee, OrientationOutcome, Orienter, Registry, SelectionPolicy, Solver, VerifiedOutcome,
    };
    pub use antennae_core::verify::{
        verify, DigraphStrategy, VerificationEngine, VerificationReport, VerificationSession,
    };
    pub use antennae_geometry::{Angle, Point, Sector};
    pub use antennae_graph::euclidean::EuclideanMst;
    pub use antennae_sim::generators::{self, PointSetGenerator};
}
