//! `orientd` — the orientation-as-a-service deployment server.
//!
//! Serves the line protocol of [`antennae::serve`] over TCP:
//!
//! ```text
//! orientd [--listen ADDR] [--threads N] [--print-port]
//! ```
//!
//! * `--listen ADDR` — bind address, default `127.0.0.1:7011`; use port 0
//!   for an ephemeral port.
//! * `--threads N` — worker pool size, default `min(cores, 8)`.
//! * `--print-port` — print `PORT <n>` on stdout once bound (used by the
//!   CI smoke test to discover an ephemeral port).
//!
//! The process exits cleanly after a `SHUTDOWN` request.

use antennae::serve::{Server, Service};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    listen: String,
    threads: usize,
    print_port: bool,
}

fn usage() -> ! {
    eprintln!("usage: orientd [--listen ADDR] [--threads N] [--print-port]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:7011".to_string(),
        threads: antennae::core::parallel::default_threads(),
        print_port: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--listen" => match argv.next() {
                Some(addr) => args.listen = addr,
                None => usage(),
            },
            "--threads" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => args.threads = n,
                _ => usage(),
            },
            "--print-port" => args.print_port = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let server = match Server::bind_with(&args.listen, Arc::new(Service::new()), args.threads) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("orientd: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    if args.print_port {
        // Machine-readable, flushed immediately: scripts wait for this line.
        println!("PORT {}", addr.port());
        use std::io::Write;
        let _ = std::io::stdout().flush();
    }
    eprintln!("orientd: listening on {addr} ({} workers)", args.threads);
    match server.run() {
        Ok(()) => {
            eprintln!("orientd: clean shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("orientd: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
