//! `orientd` — the orientation-as-a-service deployment server.
//!
//! Serves the line protocol of [`antennae::serve`] over TCP:
//!
//! ```text
//! orientd [--listen ADDR | --port N] [--threads N] [--print-port]
//!         [--data-dir DIR] [--sync always|every-n[=N]|never]
//!         [--max-queue N] [--read-timeout-ms N] [--tenant-quota N]
//!         [--auth-token-file PATH] [--shards auto|N|off]
//! ```
//!
//! * `--listen ADDR` — bind address, default `127.0.0.1:7011`; use port 0
//!   for an ephemeral port.
//! * `--port N` — shorthand for `--listen 127.0.0.1:N`.
//! * `--threads N` — worker pool size, default `min(cores, 8)`.
//! * `--print-port` — print `PORT <n>` on stdout once bound (used by the
//!   CI smoke test to discover an ephemeral port).
//! * `--data-dir DIR` — run durable: every deployment keeps a write-ahead
//!   log + snapshot under `DIR/<name>/`, and boot recovers whatever a
//!   previous process left there (crashed or not).
//! * `--sync POLICY` — WAL fsync policy (requires `--data-dir`):
//!   `always` (fsync every record), `every-n` or `every-n=N` (fsync every
//!   N records, default 32), `never` (OS-buffered only; clean `SHUTDOWN`
//!   still syncs).  Default `every-n`.
//! * `--max-queue N` — cap on connections waiting for a worker, default
//!   1024; past it new connections are answered `ERR overloaded` and
//!   closed.  `0` disables the cap.
//! * `--read-timeout-ms N` — per-connection read deadline, default 30000;
//!   a connection that dribbles or idles past it is evicted (slow-loris
//!   defence).  `0` disables the deadline.
//! * `--tenant-quota N` — cap on buffered (un-drained) edits per
//!   deployment, default 65536; past it `EDIT` answers `ERR overloaded`
//!   until `ORIENT`/`VERIFY` drains.  `0` disables the quota.
//! * `--auth-token-file PATH` — require `AUTH <token>` (the file's
//!   trimmed contents) before any verb other than `PING`.
//! * `--shards auto|N|off` — spatial sharding for every deployment
//!   (created or recovered), default `auto`: large deployments get a
//!   per-tile kd/MST forest so one edit repairs inside its ~10³-point
//!   tile.  `N` forces an N×N tile grid, `off` keeps the global engines.
//!   Bit-exact either way — the flag only changes what edits cost.
//!
//! Unknown or malformed flags exit with status 2 and print the usage line
//! to stderr.  The process exits cleanly after a `SHUTDOWN` request.

use antennae::core::shard::ShardSpec;
use antennae::serve::{Server, ServerConfig, Service};
use antennae::store::{Store, StoreConfig, SyncPolicy};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: orientd [--listen ADDR | --port N] [--threads N] [--print-port] \
                     [--data-dir DIR] [--sync always|every-n[=N]|never] [--max-queue N] \
                     [--read-timeout-ms N] [--tenant-quota N] [--auth-token-file PATH] \
                     [--shards auto|N|off]";

#[derive(Debug)]
struct Args {
    listen: String,
    threads: usize,
    print_port: bool,
    data_dir: Option<std::path::PathBuf>,
    sync: Option<SyncPolicy>,
    /// Waiting-connection cap (`None` = unbounded, from `--max-queue 0`).
    max_queue: Option<usize>,
    /// Read deadline (`None` = no deadline, from `--read-timeout-ms 0`).
    read_timeout: Option<Duration>,
    /// Per-tenant pending-edit cap (`None` = unbounded).
    tenant_quota: Option<usize>,
    auth_token_file: Option<std::path::PathBuf>,
    /// Spatial-sharding policy for every deployment.
    shards: ShardSpec,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7011".to_string(),
        threads: antennae::core::parallel::default_threads(),
        print_port: false,
        data_dir: None,
        sync: None,
        max_queue: Some(1024),
        read_timeout: Some(Duration::from_millis(30_000)),
        tenant_quota: Some(65_536),
        auth_token_file: None,
        shards: ShardSpec::default(),
    };
    let mut argv = argv.peekable();
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--listen" => match argv.next() {
                Some(addr) => args.listen = addr,
                None => return Err("--listen needs an address".into()),
            },
            "--port" => match argv.next().and_then(|v| v.parse::<u16>().ok()) {
                Some(port) => args.listen = format!("127.0.0.1:{port}"),
                None => return Err("--port needs a port number".into()),
            },
            "--threads" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => args.threads = n,
                _ => return Err("--threads needs a positive integer".into()),
            },
            "--data-dir" => match argv.next() {
                Some(dir) if !dir.is_empty() => args.data_dir = Some(dir.into()),
                _ => return Err("--data-dir needs a directory path".into()),
            },
            "--sync" => match argv.next().as_deref().and_then(SyncPolicy::parse) {
                Some(policy) => args.sync = Some(policy),
                None => {
                    return Err("--sync takes always, every-n, every-n=N or never".into());
                }
            },
            "--max-queue" => match argv.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(0) => args.max_queue = None,
                Some(n) => args.max_queue = Some(n),
                None => return Err("--max-queue needs a non-negative integer".into()),
            },
            "--read-timeout-ms" => match argv.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(0) => args.read_timeout = None,
                Some(ms) => args.read_timeout = Some(Duration::from_millis(ms)),
                None => return Err("--read-timeout-ms needs a non-negative integer".into()),
            },
            "--tenant-quota" => match argv.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(0) => args.tenant_quota = None,
                Some(n) => args.tenant_quota = Some(n),
                None => return Err("--tenant-quota needs a non-negative integer".into()),
            },
            "--auth-token-file" => match argv.next() {
                Some(path) if !path.is_empty() => args.auth_token_file = Some(path.into()),
                _ => return Err("--auth-token-file needs a file path".into()),
            },
            "--shards" => match argv.next() {
                Some(value) => args.shards = ShardSpec::parse(&value)?,
                None => return Err("--shards takes auto, off or a tile count ≥ 2".into()),
            },
            "--print-port" => args.print_port = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.sync.is_some() && args.data_dir.is_none() {
        return Err("--sync requires --data-dir".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(reason) if reason.is_empty() => {
            // --help: usage on stdout, success.
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(reason) => {
            eprintln!("orientd: {reason}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut service = match &args.data_dir {
        None => Service::new(),
        Some(dir) => {
            let config = StoreConfig {
                sync: args.sync.unwrap_or_default(),
                ..StoreConfig::default()
            };
            let store = match Store::open(dir, config) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("orientd: cannot open data dir {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            };
            match Service::open_durable_sharded(store, args.shards) {
                Ok((service, report)) => {
                    for (name, reason) in &report.skipped {
                        eprintln!("orientd: skipped tenant {name:?}: {reason}");
                    }
                    eprintln!(
                        "orientd: recovered {} deployment(s) from {} \
                         ({} skipped, {} torn tail(s), {} byte(s) discarded, sync={})",
                        report.recovered.len(),
                        dir.display(),
                        report.skipped.len(),
                        report.truncated_tails,
                        report.lost_bytes,
                        config.sync.as_flag(),
                    );
                    service
                }
                Err(e) => {
                    eprintln!("orientd: recovery failed in {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    if let Some(path) = &args.auth_token_file {
        let token = match std::fs::read_to_string(path) {
            Ok(contents) => contents.trim().to_string(),
            Err(e) => {
                eprintln!("orientd: cannot read token file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        if token.is_empty() {
            eprintln!("orientd: token file {} is empty", path.display());
            return ExitCode::FAILURE;
        }
        service.set_auth_token(Some(token));
        eprintln!("orientd: AUTH required (token from {})", path.display());
    }
    service.set_tenant_quota(args.tenant_quota);
    service.set_shard_spec(args.shards);
    let service = Arc::new(service);

    let server_config = ServerConfig {
        threads: args.threads,
        read_timeout: args.read_timeout,
        max_queue: args.max_queue,
    };
    let server = match Server::bind_with_config(&args.listen, service, server_config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("orientd: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    if args.print_port {
        // Machine-readable, flushed immediately: scripts wait for this line.
        println!("PORT {}", addr.port());
        use std::io::Write;
        let _ = std::io::stdout().flush();
    }
    eprintln!("orientd: listening on {addr} ({} workers)", args.threads);
    match server.run() {
        Ok(()) => {
            eprintln!("orientd: clean shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("orientd: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        parse_args(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flag_grammar() {
        let args = parse(&[
            "--port",
            "7050",
            "--threads",
            "3",
            "--data-dir",
            "/tmp/x",
            "--sync",
            "every-n=8",
            "--print-port",
        ])
        .unwrap();
        assert_eq!(args.listen, "127.0.0.1:7050");
        assert_eq!(args.threads, 3);
        assert_eq!(
            args.data_dir.as_deref(),
            Some(std::path::Path::new("/tmp/x"))
        );
        assert_eq!(args.sync, Some(SyncPolicy::EveryN(8)));
        assert!(args.print_port);

        // Robustness knobs: explicit values, zero-disables, and defaults.
        let args = parse(&[
            "--max-queue",
            "16",
            "--read-timeout-ms",
            "250",
            "--tenant-quota",
            "100",
            "--auth-token-file",
            "/tmp/token",
            "--shards",
            "8",
        ])
        .unwrap();
        assert_eq!(args.max_queue, Some(16));
        assert_eq!(args.read_timeout, Some(Duration::from_millis(250)));
        assert_eq!(args.tenant_quota, Some(100));
        assert_eq!(args.shards, ShardSpec::Grid(8));
        assert_eq!(
            args.auth_token_file.as_deref(),
            Some(std::path::Path::new("/tmp/token"))
        );
        let off = parse(&[
            "--max-queue",
            "0",
            "--read-timeout-ms",
            "0",
            "--tenant-quota",
            "0",
            "--shards",
            "off",
        ])
        .unwrap();
        assert_eq!(off.max_queue, None);
        assert_eq!(off.read_timeout, None);
        assert_eq!(off.tenant_quota, None);
        assert_eq!(off.shards, ShardSpec::Off);

        let defaults = parse(&[]).unwrap();
        assert!(defaults.data_dir.is_none());
        assert_eq!(defaults.max_queue, Some(1024));
        assert_eq!(defaults.read_timeout, Some(Duration::from_millis(30_000)));
        assert_eq!(defaults.tenant_quota, Some(65_536));
        assert!(defaults.auth_token_file.is_none());
        assert_eq!(defaults.shards, ShardSpec::Auto);
        assert_eq!(parse(&["--help"]).unwrap_err(), "");
        for bad in [
            &["--frobnicate"][..],
            &["--port"],
            &["--port", "notaport"],
            &["--threads", "0"],
            &["--sync", "sometimes", "--data-dir", "/tmp/x"],
            &["--sync", "every-n=0", "--data-dir", "/tmp/x"],
            &["--sync", "always"], // requires --data-dir
            &["--data-dir"],
            &["--max-queue"],
            &["--max-queue", "lots"],
            &["--read-timeout-ms", "-1"],
            &["--tenant-quota", "many"],
            &["--auth-token-file"],
            &["--shards"],
            &["--shards", "1"],
            &["--shards", "sideways"],
        ] {
            let err = parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad:?} should be a hard flag error");
        }
    }
}
