//! Cross-crate consistency tests: the geometry/graph substrates, the core
//! algorithms and the simulation layer must agree with each other.

use antennae::graph::euclidean::EuclideanMst;
use antennae::graph::scc::is_strongly_connected;
use antennae::prelude::*;
use antennae::sim::flooding::{flood, FloodingConfig};
use antennae::sim::interference::interference_stats;
use std::f64::consts::PI;

#[test]
fn flooding_delivers_everywhere_iff_scc_says_strongly_connected() {
    let generator = PointSetGenerator::UniformSquare { n: 50, side: 10.0 };
    for seed in 0..3u64 {
        let points = generator.generate(seed);
        let instance = Instance::new(points.clone()).unwrap();
        let scheme = Solver::on(&instance).budget(2, PI).run().unwrap().scheme;
        let digraph = scheme.induced_digraph(&points);
        assert!(is_strongly_connected(&digraph));
        // Flooding from several sources reaches everyone.
        for source in [0usize, points.len() / 2, points.len() - 1] {
            let result = flood(&points, &scheme, source, FloodingConfig::default());
            assert!(result.fully_delivered(), "seed {seed} source {source}");
        }
    }
}

#[test]
fn broken_scheme_detected_by_both_scc_and_flooding() {
    let generator = PointSetGenerator::UniformSquare { n: 30, side: 8.0 };
    let points = generator.generate(1);
    let instance = Instance::new(points.clone()).unwrap();
    // Remove every antenna from one sensor: it can still receive but never
    // transmit, so strong connectivity must fail and flooding from it must
    // only reach itself.
    let mut scheme = Solver::on(&instance).budget(3, 0.0).run().unwrap().scheme;
    scheme.assignments[7] = antennae::core::antenna::SensorAssignment::empty();
    let report = verify(&instance, &scheme);
    assert!(!report.is_strongly_connected);
    let result = flood(&points, &scheme, 7, FloodingConfig::default());
    assert_eq!(result.delivered, 1);
}

#[test]
fn scheme_radius_never_below_lmax_and_mst_degree_bounded() {
    let generator = PointSetGenerator::Clustered {
        n: 80,
        clusters: 5,
        side: 40.0,
        spread: 1.0,
    };
    for seed in 0..3u64 {
        let points = generator.generate(seed);
        let mst = EuclideanMst::build(&points).unwrap();
        assert!(mst.max_degree() <= 5);
        let instance = Instance::new(points).unwrap();
        assert!((instance.lmax() - mst.lmax()).abs() < 1e-12);
        for k in 2..=5usize {
            let scheme = Solver::on(&instance).budget(k, 0.0).run().unwrap().scheme;
            let report = verify(&instance, &scheme);
            assert!(report.is_strongly_connected);
            // lmax is a lower bound on any feasible radius.
            assert!(report.max_radius_over_lmax >= 1.0 - 1e-9);
        }
    }
}

#[test]
fn directional_interference_decreases_with_narrower_budgets() {
    let generator = PointSetGenerator::UniformSquare { n: 80, side: 9.0 };
    let points = generator.generate(5);
    let instance = Instance::new(points.clone()).unwrap();
    // Wide antennae (theorem 2, k=1 needs spread up to 8π/5) cover more
    // unintended receivers than beam-only schemes.
    let wide = Solver::on(&instance)
        .budget(1, 8.0 * PI / 5.0)
        .run()
        .unwrap()
        .scheme;
    let narrow = Solver::on(&instance).budget(5, 0.0).run().unwrap().scheme;
    let wide_stats = interference_stats(&points, &wide);
    let narrow_stats = interference_stats(&points, &narrow);
    assert!(
        narrow_stats.mean_covered_per_antenna <= wide_stats.mean_covered_per_antenna,
        "narrow {} vs wide {}",
        narrow_stats.mean_covered_per_antenna,
        wide_stats.mean_covered_per_antenna
    );
}

#[test]
fn induced_digraph_contains_every_mst_edge_for_theorem2() {
    // Theorem 2 covers all MST neighbours at every vertex, so the induced
    // digraph must contain both directions of every MST edge.
    let generator = PointSetGenerator::UniformSquare { n: 60, side: 10.0 };
    let points = generator.generate(9);
    let instance = Instance::new(points.clone()).unwrap();
    let scheme = Solver::on(&instance)
        .budget(2, 6.0 * PI / 5.0)
        .run()
        .unwrap()
        .scheme;
    let digraph = scheme.induced_digraph(&points);
    for edge in instance.mst().edges() {
        assert!(
            digraph.has_edge(edge.u, edge.v),
            "missing {} -> {}",
            edge.u,
            edge.v
        );
        assert!(
            digraph.has_edge(edge.v, edge.u),
            "missing {} -> {}",
            edge.v,
            edge.u
        );
    }
}
