//! Keeps the docs honest: the wire-facing tables in `docs/PROTOCOL.md` are
//! parsed and compared against the compiled protocol constants, so the doc
//! cannot drift from `crates/serve/src/protocol.rs` without this test
//! failing.  `scripts/check_docs.sh` layers the cheap existence/link checks
//! on top; this test owns the semantic ones.

use antennae::serve::protocol::{MAX_CREATE_POINTS, MAX_LINE_BYTES, MAX_NAME_BYTES};
use antennae::serve::ErrorCode;
use std::path::Path;

fn repo_file(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Error-code tokens listed in the PROTOCOL.md table, in document order.
/// Table rows look like `| \`unknown-verb\` | ... |`.
fn documented_error_codes(doc: &str) -> Vec<String> {
    doc.lines()
        .filter_map(|line| {
            let cell = line.strip_prefix("| `")?;
            let (token, _) = cell.split_once('`')?;
            ErrorCode::ALL
                .iter()
                .any(|c| c.as_str() == token)
                .then(|| token.to_string())
        })
        .collect()
}

#[test]
fn protocol_doc_error_table_matches_error_code_all() {
    let doc = repo_file("docs/PROTOCOL.md");
    let documented = documented_error_codes(&doc);
    let expected: Vec<String> = ErrorCode::ALL
        .iter()
        .map(|c| c.as_str().to_string())
        .collect();
    assert_eq!(
        documented, expected,
        "docs/PROTOCOL.md error table must list every ErrorCode::ALL token, \
         once each, in enum order"
    );
    assert_eq!(documented.len(), 17, "the pinned vocabulary is 17 codes");
    // The doc states the count in prose; keep the number honest too.
    assert!(
        doc.contains("**17** kebab-case codes"),
        "PROTOCOL.md must state the pinned code count"
    );
}

#[test]
fn protocol_doc_framing_caps_match_constants() {
    let doc = repo_file("docs/PROTOCOL.md");
    for (name, value) in [
        ("MAX_LINE_BYTES", MAX_LINE_BYTES),
        ("MAX_NAME_BYTES", MAX_NAME_BYTES),
        ("MAX_CREATE_POINTS", MAX_CREATE_POINTS),
    ] {
        let expected = format!("`{name}` = {value}");
        assert!(
            doc.contains(&expected),
            "PROTOCOL.md framing table must contain {expected:?}"
        );
    }
}

#[test]
fn protocol_doc_covers_every_verb() {
    let doc = repo_file("docs/PROTOCOL.md");
    for verb in [
        "CREATE", "EDIT", "ORIENT", "VERIFY", "QUERY", "STATS", "DROP", "RECOVER", "AUTH", "PING",
        "SHUTDOWN",
    ] {
        assert!(
            doc.contains(&format!("{verb} ")) || doc.contains(&format!("`{verb}`")),
            "PROTOCOL.md must document the {verb} verb"
        );
    }
    for op in ["INSERT", "REMOVE", "MOVE"] {
        assert!(
            doc.contains(&format!("EDIT <name> {op}")),
            "PROTOCOL.md must document EDIT {op}"
        );
    }
}

#[test]
fn readme_links_the_docs_suite() {
    let readme = repo_file("README.md");
    for doc in [
        "docs/PROTOCOL.md",
        "docs/OPERATIONS.md",
        "docs/ARCHITECTURE.md",
    ] {
        assert!(readme.contains(doc), "README.md must link {doc}");
    }
}
