//! Oracle tests for the parallel build pipeline.
//!
//! The kd-tree construction, the Borůvka MST rounds, the Theorem-2 Lemma-1
//! sweep and the verification engine's digraph rebuild all fan out over
//! worker threads on large instances.  Parallelism must be **invisible**:
//! this suite pins bit-equality — `f64::to_bits`, not tolerances — between
//! 1 worker, 2 workers and the session default (`default_threads()`), for
//! every artifact of the pipeline:
//!
//! * the MST (exact edge list, `lmax`, total weight),
//! * the orientation scheme (every antenna's start/spread/radius bits),
//! * the induced digraph (structural equality, same adjacency order),
//! * the verification report (every measurement and violation).
//!
//! The deterministic sweeps cover the stochastic and extremal workload
//! families (duplicates, collinear paths, exact lattices — worst cases for
//! kd-tree splitting planes and for distance ties) at sizes *above* the
//! parallel activation thresholds, so the chunked code paths genuinely run
//! and must reconcile; the property tests fuzz degenerate small geometry
//! through the full pipeline at several thread counts.  `scripts/verify.sh`
//! runs the property suites under `PROPTEST_CASES=128`.

use antennae::core::algorithms::theorem2::orient_theorem2_with_threads;
use antennae::graph::euclidean::MstEngine;
use antennae::prelude::*;
use antennae_parallel::default_threads;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The thread counts every stage is exercised at: forced-serial, the
/// smallest genuinely parallel count, an oversubscribed count (more workers
/// than the container has cores), and whatever this session defaults to.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 5, default_threads()];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Bit-exact fingerprint of an MST: every edge as `(u, v, weight bits)` in
/// edge order, plus `lmax` and the total weight.
fn mst_bits(mst: &EuclideanMst) -> (Vec<(usize, usize, u64)>, u64, u64) {
    let edges = mst
        .edges()
        .iter()
        .map(|e| (e.u, e.v, e.weight.to_bits()))
        .collect();
    (edges, mst.lmax().to_bits(), mst.total_weight().to_bits())
}

/// Bit-exact fingerprint of a scheme: per sensor, per antenna,
/// `(start bits, spread bits, radius bits)`.
fn scheme_bits(scheme: &OrientationScheme) -> Vec<Vec<(u64, u64, u64)>> {
    scheme
        .assignments
        .iter()
        .map(|a| {
            a.antennas
                .iter()
                .map(|ant| {
                    (
                        ant.start.radians().to_bits(),
                        ant.spread.to_bits(),
                        ant.radius.to_bits(),
                    )
                })
                .collect()
        })
        .collect()
}

/// Bit-exact fingerprint of a verification report (the struct's own
/// `PartialEq` compares floats with `==`, which would let `-0.0 == 0.0`
/// slide; the oracle demands the stronger bit equality).
fn report_bits(r: &VerificationReport) -> (bool, usize, usize, u64, u64, u64, usize, String) {
    (
        r.is_strongly_connected,
        r.scc_count,
        r.edge_count,
        r.max_radius.to_bits(),
        r.max_radius_over_lmax.to_bits(),
        r.max_spread_sum.to_bits(),
        r.max_antenna_count,
        format!("{:?}", r.violations),
    )
}

/// Runs the full build pipeline — MST, Theorem-2 scheme, induced digraph,
/// verification report — at every thread count and asserts each artifact is
/// bit-identical to the single-threaded run.
fn assert_pipeline_thread_invariant(points: &[Point], k: usize, context: &str) {
    let serial_mst =
        EuclideanMst::build_with_engine_threads(points, MstEngine::KdTreeBoruvka, 1).unwrap();
    let instance = Instance::new(points.to_vec()).unwrap();
    let serial_scheme = orient_theorem2_with_threads(&instance, k, 1).unwrap();
    let serial_engine = VerificationEngine::new()
        .with_strategy(DigraphStrategy::KdTree)
        .with_threads(1);
    let serial_graph = serial_engine.induced_digraph(instance.points(), &serial_scheme);
    let serial_report = serial_engine.verify(&instance, &serial_scheme);

    for threads in thread_counts() {
        let mst =
            EuclideanMst::build_with_engine_threads(points, MstEngine::KdTreeBoruvka, threads)
                .unwrap();
        assert_eq!(
            mst_bits(&serial_mst),
            mst_bits(&mst),
            "MST mismatch: {context} threads={threads}"
        );

        let scheme = orient_theorem2_with_threads(&instance, k, threads).unwrap();
        assert_eq!(
            scheme_bits(&serial_scheme),
            scheme_bits(&scheme),
            "scheme mismatch: {context} threads={threads}"
        );

        let engine = VerificationEngine::new()
            .with_strategy(DigraphStrategy::KdTree)
            .with_threads(threads);
        let graph = engine.induced_digraph(instance.points(), &scheme);
        assert_eq!(
            serial_graph, graph,
            "digraph mismatch: {context} threads={threads}"
        );

        let report = engine.verify(&instance, &scheme);
        assert_eq!(
            report_bits(&serial_report),
            report_bits(&report),
            "report mismatch: {context} threads={threads}"
        );
    }
}

/// Uniform random points over a side-length scaled square (the bench
/// harness's workload shape).
fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
    let side = (n as f64).sqrt() * 2.0;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
        .collect()
}

#[test]
fn pipeline_is_thread_invariant_on_large_uniform_instances() {
    // 9000 points clears every parallel activation threshold in the
    // pipeline (kd build at 8192, Borůvka and Lemma-1 chunking at 4096,
    // verify fan-out at 1024), so the chunked code paths all genuinely run.
    let points = uniform_points(9000, 7);
    assert_pipeline_thread_invariant(&points, 3, "uniform n=9000");
}

#[test]
fn pipeline_is_thread_invariant_on_duplicate_heavy_instances() {
    // Every location shared by 3 sensors: duplicate points give zero-length
    // candidate edges and constant distance ties in every Borůvka round.
    let base = uniform_points(1700, 11);
    let mut points = Vec::with_capacity(base.len() * 3);
    for p in &base {
        points.extend([*p, *p, *p]);
    }
    assert_pipeline_thread_invariant(&points, 2, "duplicates n=5100");
}

#[test]
fn pipeline_is_thread_invariant_on_collinear_instances() {
    // A single line of 5000 sensors: degenerate kd splits (every y equal)
    // and a maximal-depth Borůvka merge cascade.
    let points: Vec<Point> = (0..5000).map(|i| Point::new(i as f64, 0.0)).collect();
    assert_pipeline_thread_invariant(&points, 1, "collinear n=5000");
}

#[test]
fn pipeline_is_thread_invariant_on_exact_lattices() {
    // A 72x72 integer lattice: exact distance ties everywhere, the
    // worst case for the tie-broken total order on candidate edges.
    let mut points = Vec::with_capacity(72 * 72);
    for i in 0..72 {
        for j in 0..72 {
            points.push(Point::new(i as f64, j as f64));
        }
    }
    assert_pipeline_thread_invariant(&points, 4, "lattice 72x72");
}

#[test]
fn pipeline_is_thread_invariant_on_standard_and_extremal_workloads() {
    // The shared workload families at their catalogue sizes (mostly below
    // the parallel thresholds — these pin that the explicit-thread APIs are
    // exact on the serial fallback path too, for every family).
    let workloads: Vec<PointSetGenerator> = generators::standard_workloads()
        .into_iter()
        .chain(generators::extremal_workloads())
        .collect();
    for generator in &workloads {
        let points = generator.generate(23);
        assert_pipeline_thread_invariant(&points, 3, generator.label().as_str());
    }
}

#[test]
fn solver_output_is_identical_under_env_default_threads() {
    // The public entry points (Instance::new -> Solver) pick up
    // default_threads() internally; their output must equal the explicitly
    // serial pipeline.  n above the Borůvka threshold so the default path
    // actually fans out whenever the session default exceeds one worker.
    let points = uniform_points(4608, 3);
    let serial_mst =
        EuclideanMst::build_with_engine_threads(&points, MstEngine::KdTreeBoruvka, 1).unwrap();
    let instance = Instance::new(points).unwrap();
    assert_eq!(
        mst_bits(&serial_mst),
        mst_bits(instance.mst()),
        "Instance::new must build the same MST as the serial engine"
    );
    let outcome = Solver::on(&instance)
        .budget(3, antennae::core::bounds::theorem2_spread_threshold(3))
        .run()
        .unwrap();
    let serial_scheme = orient_theorem2_with_threads(&instance, 3, 1).unwrap();
    assert_eq!(scheme_bits(&outcome.scheme), scheme_bits(&serial_scheme));
    let report = VerificationEngine::new().verify(&instance, &outcome.scheme);
    let serial_report = VerificationEngine::new()
        .with_threads(1)
        .verify(&instance, &serial_scheme);
    assert_eq!(report_bits(&report), report_bits(&serial_report));
}

/// Snap to a coarse half-unit lattice: duplicates, collinear runs and exact
/// ties with high probability.
fn snapped(x: f64, y: f64) -> Point {
    Point::new((x * 2.0).round() / 2.0, (y * 2.0).round() / 2.0)
}

proptest! {
    #[test]
    fn prop_pipeline_thread_invariant_on_degenerate_geometry(
        raw_points in proptest::collection::vec((-8.0..8.0f64, -8.0..8.0f64), 2..100),
        k in 1usize..=5,
    ) {
        let points: Vec<Point> = raw_points.iter().map(|&(x, y)| snapped(x, y)).collect();
        let serial_mst =
            EuclideanMst::build_with_engine_threads(&points, MstEngine::KdTreeBoruvka, 1).unwrap();
        let instance = Instance::new(points.clone()).unwrap();
        let serial_scheme = orient_theorem2_with_threads(&instance, k, 1).unwrap();
        let serial_report = VerificationEngine::new()
            .with_strategy(DigraphStrategy::KdTree)
            .with_threads(1)
            .verify(&instance, &serial_scheme);
        for threads in [2usize, 4] {
            let mst = EuclideanMst::build_with_engine_threads(
                &points,
                MstEngine::KdTreeBoruvka,
                threads,
            )
            .unwrap();
            prop_assert_eq!(mst_bits(&serial_mst), mst_bits(&mst));
            let scheme = orient_theorem2_with_threads(&instance, k, threads).unwrap();
            prop_assert_eq!(scheme_bits(&serial_scheme), scheme_bits(&scheme));
            let report = VerificationEngine::new()
                .with_strategy(DigraphStrategy::KdTree)
                .with_threads(threads)
                .verify(&instance, &scheme);
            prop_assert_eq!(report_bits(&serial_report), report_bits(&report));
        }
    }

    #[test]
    fn prop_kd_index_build_is_thread_invariant(
        raw_points in proptest::collection::vec((-30.0..30.0f64, -30.0..30.0f64), 1..150),
        queries in proptest::collection::vec((-30.0..30.0f64, -30.0..30.0f64), 1..8),
    ) {
        // Small inputs take the serial path inside build_with_threads; the
        // invariant asserted here is the query-level one the pipeline's
        // exactness argument rests on: answers depend only on the point
        // set.  (The large-input structural equality is pinned by the
        // kd-tree's own unit suite.)
        let points: Vec<Point> = raw_points.iter().map(|&(x, y)| snapped(x, y)).collect();
        let serial = antennae::geometry::KdIndex::build_with_threads(&points, 1);
        let parallel = antennae::geometry::KdIndex::build_with_threads(&points, 4);
        for &(qx, qy) in &queries {
            let q = Point::new(qx, qy);
            let a = serial.nearest(&points, &q);
            let b = parallel.nearest(&points, &q);
            prop_assert_eq!(
                a.map(|(i, d)| (i, d.to_bits())),
                b.map(|(i, d)| (i, d.to_bits()))
            );
        }
    }
}
