//! Over-the-wire churn replay: a sim-generated churn trace is rendered into
//! an `orientd` protocol script (`antennae::sim::serve_script`), replayed
//! through a real TCP server, and the served final state is compared against
//! a bare [`DynamicSolverSession`] applying the recorded edits serially.
//!
//! This closes the loop across all four layers the PR touches: sim produces
//! the workload, serve transports and coalesces it, core repairs it, and the
//! verification report at the end must be bit-identical either way.

use antennae::core::antenna::AntennaBudget;
use antennae::core::bounds::theorem2_spread_threshold;
use antennae::core::dynamic::{DynamicInstance, DynamicSolverSession, Edit};
use antennae::prelude::*;
use antennae::serve::{Server, TcpClient};
use antennae::sim::events::{churn_trace, ChurnMix};
use antennae::sim::serve_script::churn_protocol_script;

#[test]
fn churn_script_over_tcp_matches_bare_session() {
    let k = 2;
    let phi = theorem2_spread_threshold(k);
    let seeds = PointSetGenerator::UniformSquare { n: 30, side: 10.0 }.generate(21);
    let trace = churn_trace(ChurnMix::balanced(3.0), 120, 10.0, 0.8, 77);
    let script = churn_protocol_script("churny", k, phi, &seeds, &trace, 7);

    // Replay over a real socket.
    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = TcpClient::connect(addr).expect("connect");
    let mut last_verify = String::new();
    for line in &script.lines {
        let response = client.request(line).expect("round trip").to_line();
        assert!(response.starts_with("OK "), "{line:?} -> {response}");
        if line.starts_with("VERIFY ") {
            last_verify = response;
        }
    }
    assert!(last_verify.contains("valid=true"), "{last_verify}");

    // Bare-session oracle: apply the recorded edits serially (the encoder
    // already resolved pick-mod-live victims into concrete ids).
    let mut oracle = DynamicSolverSession::new(
        DynamicInstance::new(&seeds).expect("seed instance"),
        AntennaBudget::new(k, phi),
    )
    .expect("seed session");
    for &(id, op) in &script.edits {
        let edit = match op {
            Some(p) if id == oracle.instance().next_id() => Edit::Insert(p),
            Some(p) => Edit::Move(id, p),
            None => Edit::Remove(id),
        };
        oracle.apply(edit).expect("oracle edit");
    }

    // Compare through the registry (state bits) and the snapshot (wire view).
    let service = handle.service();
    let tenant = service.registry().get("churny").expect("tenant exists");
    tenant.with_session_mut(|served| {
        assert_eq!(served.instance().ids(), oracle.instance().ids(), "live ids");
        assert_eq!(
            served.instance().lmax().to_bits(),
            oracle.instance().lmax().to_bits(),
            "lmax"
        );
        assert_eq!(
            served.instance().mst_total_weight().to_bits(),
            oracle.instance().mst_total_weight().to_bits(),
            "MST weight"
        );
        assert_eq!(served.scheme(), oracle.scheme(), "scheme");
        assert_eq!(served.digraph(), oracle.digraph(), "digraph");
        assert_eq!(served.report(), oracle.report(), "report");
    });
    let snapshot = tenant.snapshot();
    assert_eq!(snapshot.n, oracle.instance().len());
    for (id, p) in &snapshot.positions {
        assert_eq!(
            oracle.instance().point(*id).expect("live"),
            *p,
            "position of {id}"
        );
    }

    drop(client);
    handle.stop().expect("clean shutdown");
}

#[test]
fn churn_script_survives_drain_heavy_mixes() {
    // Failure-heavy mix on a tiny seed: the deployment repeatedly shrinks
    // towards (and possibly through) the near-empty regime.
    let k = 1;
    let phi = theorem2_spread_threshold(k);
    let seeds = vec![
        Point::new(0.0, 0.0),
        Point::new(2.0, 0.0),
        Point::new(0.0, 2.0),
    ];
    let mix = ChurnMix {
        arrival: 0.8,
        failure: 2.0,
        mobility: 0.2,
    };
    let trace = churn_trace(mix, 60, 5.0, 0.4, 13);
    let script = churn_protocol_script("drainy", k, phi, &seeds, &trace, 3);

    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = server.spawn();
    let mut client = TcpClient::connect(handle.local_addr()).expect("connect");
    for line in &script.lines {
        let response = client.request(line).expect("round trip").to_line();
        assert!(response.starts_with("OK "), "{line:?} -> {response}");
    }
    drop(client);
    handle.stop().expect("clean shutdown");
}
