//! Oracle property tests for the verification engine.
//!
//! The dense pairwise induced-digraph construction
//! (`OrientationScheme::induced_digraph`) is the reference; the kd-tree fast
//! path of `VerificationEngine` must reproduce it **bit-for-bit**: the same
//! `DiGraph` (same edges in the same adjacency order) and the same
//! `VerificationReport` (every measurement and every `Violation`), across
//! solver-produced schemes, adversarial random schemes, and degenerate point
//! sets (duplicates, collinear paths, exact lattices).
//!
//! The deterministic sweep covers `standard_workloads() ∪
//! extremal_workloads()` for every `k ∈ 1..=5` under the Table 1 φ regimes;
//! the property tests fuzz random geometry and random (often invalid)
//! schemes.  `scripts/verify.sh` runs this suite under a pinned
//! `PROPTEST_CASES` budget so CI stays fast but deterministic.

use antennae::core::antenna::{Antenna, AntennaBudget, SensorAssignment};
use antennae::core::bounds::theorem2_spread_threshold;
use antennae::prelude::*;
use antennae::sim::generators::{extremal_workloads, standard_workloads};
use proptest::prelude::*;
use std::f64::consts::PI;

fn dense() -> VerificationEngine {
    VerificationEngine::new().with_strategy(DigraphStrategy::Dense)
}

fn fast() -> VerificationEngine {
    VerificationEngine::new().with_strategy(DigraphStrategy::KdTree)
}

/// Asserts the two digraph paths are bit-identical on `(instance, scheme)`,
/// both as raw digraphs and as full verification reports.
fn assert_paths_identical(
    instance: &Instance,
    scheme: &OrientationScheme,
    budget: Option<AntennaBudget>,
    context: &str,
) {
    let dense_graph = dense().induced_digraph(instance.points(), scheme);
    let fast_graph = fast().induced_digraph(instance.points(), scheme);
    assert_eq!(dense_graph, fast_graph, "digraph mismatch: {context}");

    let dense_report = dense().verify_with_budget(instance, scheme, budget);
    let fast_report = fast().verify_with_budget(instance, scheme, budget);
    assert_eq!(dense_report, fast_report, "report mismatch: {context}");
}

/// The Table 1 φ regimes exercised for each `k`: every threshold at which a
/// different construction takes over, plus the beams-only floor.
fn phi_regimes(k: usize) -> Vec<f64> {
    let mut regimes = vec![0.0];
    match k {
        1 => regimes.extend([PI, 8.0 * PI / 5.0]),
        2 => regimes.extend([2.0 * PI / 3.0, PI]),
        _ => {}
    }
    regimes.push(theorem2_spread_threshold(k));
    regimes
}

#[test]
fn oracle_solver_schemes_across_workloads_and_table1_regimes() {
    let workloads: Vec<PointSetGenerator> = standard_workloads()
        .into_iter()
        .chain(extremal_workloads())
        .collect();
    for generator in &workloads {
        let instance = Instance::new(generator.generate(23)).unwrap();
        for k in 1..=5usize {
            for phi in phi_regimes(k) {
                let budget = AntennaBudget::new(k, phi);
                let scheme = Solver::on(&instance)
                    .with_budget(budget)
                    .run()
                    .expect("Table 1 budgets are always solvable")
                    .scheme;
                assert_paths_identical(
                    &instance,
                    &scheme,
                    Some(budget),
                    &format!("{} k={k} phi={phi:.3}", generator.label()),
                );
            }
        }
    }
}

#[test]
fn oracle_on_duplicate_and_coincident_point_sets() {
    // Heavy duplication: 3 distinct locations shared by 9 sensors, plus the
    // fully coincident instance (lmax = 0).
    let triple = vec![
        Point::new(0.0, 0.0),
        Point::new(0.0, 0.0),
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(0.5, 0.8),
        Point::new(0.5, 0.8),
        Point::new(0.5, 0.8),
    ];
    let coincident = vec![Point::new(2.0, -1.0); 6];
    for (name, points) in [("triple", triple), ("coincident", coincident)] {
        let instance = Instance::new(points.clone()).unwrap();
        // A ring of beams (covers under the apex rule on duplicates), an
        // omnidirectional blanket, and the empty scheme.
        let n = points.len();
        let ring = OrientationScheme::new(
            (0..n)
                .map(|i| {
                    let next = (i + 1) % n;
                    SensorAssignment::new(vec![Antenna::beam(
                        &points[i],
                        &points[next],
                        points[i].distance(&points[next]).max(0.1),
                    )])
                })
                .collect(),
        );
        let blanket = OrientationScheme::new(
            (0..n)
                .map(|_| {
                    SensorAssignment::new(vec![Antenna::new(
                        Angle::ZERO,
                        std::f64::consts::TAU,
                        2.0,
                    )])
                })
                .collect(),
        );
        let empty = OrientationScheme::empty(n);
        for (label, scheme) in [("ring", &ring), ("blanket", &blanket), ("empty", &empty)] {
            assert_paths_identical(
                &instance,
                scheme,
                Some(AntennaBudget::new(1, std::f64::consts::TAU)),
                &format!("{name}/{label}"),
            );
        }
    }
}

#[test]
fn oracle_on_exact_lattice_and_collinear_sets() {
    // Exact integer lattice (ties everywhere) and a collinear path.
    let lattice = PointSetGenerator::Grid { cols: 9, rows: 7 };
    let path = PointSetGenerator::Path { n: 40 };
    for generator in [lattice, path] {
        let instance = Instance::new(generator.generate(0)).unwrap();
        for k in [1usize, 2, 3, 5] {
            let budget = AntennaBudget::new(k, theorem2_spread_threshold(k));
            let scheme = Solver::on(&instance)
                .with_budget(budget)
                .run()
                .unwrap()
                .scheme;
            assert_paths_identical(
                &instance,
                &scheme,
                Some(budget),
                &format!("{} k={k}", generator.label()),
            );
        }
    }
}

#[test]
fn oracle_holds_for_batch_and_session_entry_points() {
    // The engine's batch/session paths must agree with the one-shot paths.
    let generator = PointSetGenerator::UniformSquare { n: 150, side: 12.0 };
    let instance = Instance::new(generator.generate(5)).unwrap();
    let budget = AntennaBudget::new(2, PI);
    let portfolio = Solver::on(&instance)
        .with_budget(budget)
        .policy(SelectionPolicy::Portfolio)
        .run()
        .unwrap();
    let schemes: Vec<&OrientationScheme> = portfolio
        .candidates
        .iter()
        .map(|c| c.scheme.as_ref().unwrap())
        .collect();

    let session = fast().session(&instance);
    let session_reports = session.verify_schemes(&schemes, Some(budget));
    let pairs: Vec<(&Instance, &OrientationScheme)> =
        schemes.iter().map(|s| (&instance, *s)).collect();
    let batch_reports = fast().verify_batch(&pairs, Some(budget));
    for ((scheme, session_report), batch_report) in
        schemes.iter().zip(&session_reports).zip(&batch_reports)
    {
        let oracle = dense().verify_with_budget(&instance, scheme, Some(budget));
        assert_eq!(*session_report, oracle);
        assert_eq!(*batch_report, oracle);
    }
}

#[test]
fn oracle_parallel_rebuild_matches_sequential_and_dense() {
    // The kd path switches to a parallel_map row assembly at n >= 1024 when
    // the engine has more than one thread; that branch must be oracle-equal
    // too (row order, edge order, report).  n = 1200 with an explicit
    // multi-thread engine forces the parallel branch regardless of the
    // machine's core count; threads = 1 forces the buffer-reusing
    // sequential branch on the identical input.
    let generator = PointSetGenerator::UniformSquare {
        n: 1200,
        side: 35.0,
    };
    let instance = Instance::new(generator.generate(41)).unwrap();
    let budget = AntennaBudget::new(2, PI);
    let scheme = Solver::on(&instance)
        .with_budget(budget)
        .run()
        .unwrap()
        .scheme;

    let parallel = fast().with_threads(4);
    let sequential = fast().with_threads(1);
    let par_graph = parallel.induced_digraph(instance.points(), &scheme);
    let seq_graph = sequential.induced_digraph(instance.points(), &scheme);
    assert_eq!(par_graph, seq_graph, "parallel vs sequential kd rebuild");
    let dense_graph = dense().induced_digraph(instance.points(), &scheme);
    assert_eq!(par_graph, dense_graph, "parallel kd vs dense oracle");

    assert_eq!(
        parallel.verify_with_budget(&instance, &scheme, Some(budget)),
        dense().verify_with_budget(&instance, &scheme, Some(budget)),
    );
}

/// A random, frequently-degenerate sensor location: coordinates snap to a
/// coarse 0.5 lattice, so duplicates, collinear runs and exact distance
/// ties all occur with high probability.
fn snapped(x: f64, y: f64) -> Point {
    Point::new((x * 2.0).round() / 2.0, (y * 2.0).round() / 2.0)
}

proptest! {
    #[test]
    fn prop_random_schemes_verify_identically(
        raw_points in proptest::collection::vec((-6.0..6.0f64, -6.0..6.0f64), 1..80),
        raw_antennas in proptest::collection::vec(
            (0.0..std::f64::consts::TAU, 0.0..std::f64::consts::TAU, 0.0..8.0f64, 0usize..4),
            0..80,
        ),
    ) {
        let points: Vec<Point> = raw_points.iter().map(|&(x, y)| snapped(x, y)).collect();
        let instance = Instance::new(points).unwrap();
        // The scheme length is independent of the instance length, so the
        // MissingAssignments path is fuzzed too; `count` antennae per sensor
        // exercises multi-antenna coverage unions.
        let assignments: Vec<SensorAssignment> = raw_antennas
            .iter()
            .map(|&(start, spread, radius, count)| {
                SensorAssignment::new(
                    (0..count)
                        .map(|i| {
                            Antenna::new(
                                Angle::from_radians(start + i as f64),
                                spread / (i + 1) as f64,
                                radius / (i + 1) as f64,
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        let scheme = OrientationScheme::new(assignments);
        let budget = AntennaBudget::new(2, PI);

        let dense_graph = dense().induced_digraph(instance.points(), &scheme);
        let fast_graph = fast().induced_digraph(instance.points(), &scheme);
        prop_assert_eq!(&dense_graph, &fast_graph);

        let dense_report = dense().verify_with_budget(&instance, &scheme, Some(budget));
        let fast_report = fast().verify_with_budget(&instance, &scheme, Some(budget));
        prop_assert_eq!(dense_report, fast_report);
    }

    #[test]
    fn prop_solver_schemes_verify_identically_on_degenerate_geometry(
        raw_points in proptest::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 2..60),
        k in 1usize..=5,
        phi_step in 0usize..4,
    ) {
        let points: Vec<Point> = raw_points.iter().map(|&(x, y)| snapped(x, y)).collect();
        let instance = Instance::new(points).unwrap();
        let phi = theorem2_spread_threshold(k) * phi_step as f64 / 3.0;
        let budget = AntennaBudget::new(k, phi);
        let scheme = Solver::on(&instance).with_budget(budget).run().unwrap().scheme;
        let dense_report = dense().verify_with_budget(&instance, &scheme, Some(budget));
        let fast_report = fast().verify_with_budget(&instance, &scheme, Some(budget));
        prop_assert_eq!(&dense_report, &fast_report);
        // Solver-produced schemes are valid, so the oracle also doubles as
        // an end-to-end correctness check of the constructions themselves.
        prop_assert!(dense_report.is_valid(), "violations: {:?}", dense_report.violations);
    }
}
