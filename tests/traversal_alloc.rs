//! Zero-allocation contract of the traversal kernels.
//!
//! `TraversalScratch` promises that steady-state traversals — after one
//! warm-up query has sized the buffers — perform **zero heap allocations**,
//! no matter how many queries, masks or graphs (of no larger size) follow.
//! This file pins that contract with a counting global allocator: warm the
//! scratch, snapshot the allocation counter, run a full masked
//! c-connectivity-style sweep plus every other kernel, and assert the
//! counter did not move.
//!
//! The test lives alone in its own integration-test binary so the global
//! allocator hook and the single-threaded counting discipline cannot
//! interfere with unrelated tests.

use antennae::graph::{DiGraph, TraversalScratch, VertexMask};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator wrapper that counts every allocation request made by
/// the *current thread* (the libtest harness keeps service threads alive
/// that may allocate concurrently; a global counter would pick those up).
struct CountingAllocator;

thread_local! {
    static THREAD_ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

fn thread_allocations() -> usize {
    THREAD_ALLOCATIONS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A deterministic digraph with enough structure to exercise every kernel:
/// a long cycle with chords and a few dead-end branches.
fn test_digraph(n: usize) -> DiGraph {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for v in 0..n {
        edges.push((v, (v + 1) % n));
        if v % 3 == 0 {
            edges.push((v, (v + 7) % n));
        }
        if v % 5 == 0 {
            edges.push(((v + 2) % n, v));
        }
    }
    DiGraph::from_edges(n, &edges)
}

#[test]
fn steady_state_traversals_do_not_allocate() {
    let n = 300;
    let g = test_digraph(n);
    let mut scratch = TraversalScratch::new();
    let mut mask = VertexMask::new(n);

    // Warm-up: one query of every kernel sizes the scratch buffers for this
    // graph (and the capacity snapshot below proves they never grow again).
    assert!(scratch.is_strongly_connected(&g, None));
    mask.remove(0);
    let _ = scratch.is_strongly_connected(&g, Some(&mask));
    mask.restore(0);
    let _ = scratch.bfs(&g, 0, None).len();
    let _ = scratch.hop_distances(&g, 0, None)[n - 1];
    let _ = scratch.scc_summary(&g, None);

    let before = thread_allocations();

    // A full vertex-fault sweep (the c-connectivity inner loop) plus every
    // other kernel, many times over.
    let mut critical = 0usize;
    for round in 0..3 {
        for v in 0..n {
            mask.remove(v);
            if !scratch.is_strongly_connected(&g, Some(&mask)) {
                critical += 1;
            }
            let summary = scratch.scc_summary(&g, Some(&mask));
            assert!(summary.count >= 1);
            mask.restore(v);
        }
        let order_len = scratch.bfs(&g, round, None).len();
        assert_eq!(order_len, n);
        assert_eq!(scratch.reachable_count(&g, round, Some(&mask)), n);
        let hops = scratch.hop_distances(&g, round, None);
        assert!(hops.iter().all(|&d| d != u32::MAX));
    }

    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state traversal kernels must not allocate ({} allocations observed, {critical} critical vertices found)",
        after - before
    );

    // `with_capacity(n)` pre-sizes every buffer, so even the *first* query
    // of a fresh scratch must be allocation-free on a graph of ≤ n vertices.
    let mut presized = TraversalScratch::with_capacity(n);
    let mut fresh_mask = VertexMask::new(n);
    fresh_mask.remove(1);
    let presized_before = thread_allocations();
    assert!(presized.is_strongly_connected(&g, None));
    let _ = presized.is_strongly_connected(&g, Some(&fresh_mask));
    let _ = presized.bfs(&g, 0, None).len();
    let _ = presized.hop_distances(&g, 0, None)[n - 1];
    let _ = presized.scc_summary(&g, Some(&fresh_mask));
    assert_eq!(
        thread_allocations() - presized_before,
        0,
        "a pre-sized scratch must not allocate on its first queries"
    );
}
