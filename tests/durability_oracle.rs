//! The durability oracle: a recovered `orientd` service must be **bit-equal**
//! to the state it acknowledged before going down.
//!
//! Every scenario drives a sim-generated churn script through a durable
//! [`Service`], takes the process down in a specific way (clean `SHUTDOWN`,
//! simulated crash with unflushed edits, crash after compactions, torn log
//! tail), reopens the data directory, and compares the recovered session
//! against a bare [`DynamicSolverSession`] that serially applied the same
//! acknowledged history — `f64::to_bits` on `lmax` and the MST weight, exact
//! equality on the scheme, the digraph and the verification report.
//!
//! The bridge that makes this a *deterministic* oracle is the
//! history-independence family in `tests/dynamic_oracle.rs`: coalesced
//! replay equals serial application bit for bit, so "recovered via one
//! coalesced boot replay" and "never went down" are comparable.

use antennae::core::antenna::AntennaBudget;
use antennae::core::bounds::theorem2_spread_threshold;
use antennae::core::dynamic::{DynamicInstance, DynamicSolverSession, Edit};
use antennae::prelude::*;
use antennae::serve::Service;
use antennae::sim::events::{churn_trace, ChurnMix};
use antennae::sim::serve_script::{churn_protocol_script, ProtocolScript};
use antennae::store::{Store, StoreConfig, SyncPolicy};
use std::path::PathBuf;

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "antennae-durability-oracle-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn script(
    name: &str,
    k: usize,
    seed: u64,
    events: usize,
    flush_every: usize,
) -> (ProtocolScript, Vec<Point>, AntennaBudget) {
    let phi = theorem2_spread_threshold(k);
    let seeds = PointSetGenerator::UniformSquare { n: 16, side: 8.0 }.generate(seed);
    let trace = churn_trace(ChurnMix::balanced(3.0), events, 8.0, 0.6, seed ^ 0x5eed);
    (
        churn_protocol_script(name, k, phi, &seeds, &trace, flush_every),
        seeds,
        AntennaBudget::new(k, phi),
    )
}

/// Serially applies the first `upto` recorded edits onto a bare session.
fn oracle_session(
    seeds: &[Point],
    budget: AntennaBudget,
    edits: &[(usize, Option<Point>)],
    upto: usize,
) -> DynamicSolverSession {
    let mut oracle =
        DynamicSolverSession::new(DynamicInstance::new(seeds).expect("seed instance"), budget)
            .expect("seed session");
    for &(id, op) in &edits[..upto] {
        let edit = match op {
            Some(p) if id == oracle.instance().next_id() => Edit::Insert(p),
            Some(p) => Edit::Move(id, p),
            None => Edit::Remove(id),
        };
        oracle.apply(edit).expect("oracle edit");
    }
    oracle
}

fn assert_bit_equal(service: &Service, name: &str, oracle: &mut DynamicSolverSession) {
    let tenant = service.registry().get(name).expect("recovered tenant");
    tenant.with_session_mut(|served| {
        assert_eq!(served.instance().ids(), oracle.instance().ids(), "live ids");
        assert_eq!(
            served.instance().next_id(),
            oracle.instance().next_id(),
            "id horizon"
        );
        for id in oracle.instance().ids() {
            let a = served.instance().point(id).expect("served point");
            let b = oracle.instance().point(id).expect("oracle point");
            assert_eq!(a.x.to_bits(), b.x.to_bits(), "x of {id}");
            assert_eq!(a.y.to_bits(), b.y.to_bits(), "y of {id}");
        }
        assert_eq!(
            served.instance().lmax().to_bits(),
            oracle.instance().lmax().to_bits(),
            "lmax bits"
        );
        assert_eq!(
            served.instance().mst_total_weight().to_bits(),
            oracle.instance().mst_total_weight().to_bits(),
            "MST weight bits"
        );
        assert_eq!(served.algorithm(), oracle.algorithm(), "algorithm");
        assert_eq!(served.scheme(), oracle.scheme(), "scheme");
        assert_eq!(served.digraph(), oracle.digraph(), "digraph");
        assert_eq!(served.report(), oracle.report(), "report");
    });
}

fn open(root: &PathBuf, config: StoreConfig) -> (Service, antennae::serve::RecoveryReport) {
    Service::open_durable(Store::open(root, config).unwrap()).unwrap()
}

#[test]
fn clean_shutdown_recovers_bit_equal() {
    let root = tmp_root("clean");
    let (script, seeds, budget) = script("clean", 2, 31, 90, 6);
    let config = StoreConfig {
        // The weakest policy: clean shutdown must still be fully durable,
        // because SHUTDOWN syncs every log.
        sync: SyncPolicy::Never,
        ..StoreConfig::default()
    };
    {
        let (svc, _) = open(&root, config);
        for line in &script.lines {
            let response = svc.handle_line(line);
            assert!(response.starts_with("OK "), "{line:?} -> {response}");
        }
        assert_eq!(svc.handle_line("SHUTDOWN"), "OK shutting-down");
    }
    let (svc, report) = open(&root, config);
    assert_eq!(report.recovered, ["clean"]);
    assert_eq!(report.truncated_tails, 0, "clean shutdown tears nothing");
    let mut oracle = oracle_session(&seeds, budget, &script.edits, script.edits.len());
    assert_bit_equal(&svc, "clean", &mut oracle);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crash_with_unflushed_edits_recovers_the_acknowledged_history() {
    let root = tmp_root("crash");
    // flush_every=0: the whole churn history stays buffered (one pending
    // burst) until the final ORIENT — drop the service *before* sending it,
    // so the in-memory sessions never applied the edits at all.
    let (script, seeds, budget) = script("crash", 2, 47, 70, 0);
    let config = StoreConfig {
        sync: SyncPolicy::Always, // acknowledged => on disk
        ..StoreConfig::default()
    };
    {
        let (svc, _) = open(&root, config);
        for line in &script.lines {
            if line.starts_with("ORIENT ") || line.starts_with("VERIFY ") {
                break; // crash before any flush
            }
            let response = svc.handle_line(line);
            assert!(response.starts_with("OK "), "{line:?} -> {response}");
        }
        // No SHUTDOWN: dropping the service is the crash (sync=always means
        // every acknowledged append already hit the disk).
    }
    let (svc, report) = open(&root, config);
    assert_eq!(report.recovered, ["crash"]);
    // The recovered state contains the *full* acknowledged history — every
    // buffered edit was logged before its OK went out.
    let mut oracle = oracle_session(&seeds, budget, &script.edits, script.edits.len());
    assert_bit_equal(&svc, "crash", &mut oracle);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn compaction_is_transparent_to_recovery() {
    let root = tmp_root("compact");
    let (script, seeds, budget) = script("compact", 1, 59, 110, 4);
    let config = StoreConfig {
        sync: SyncPolicy::EveryN(4),
        compact_records: 12, // force several compactions mid-script
        compact_bytes: 1 << 20,
    };
    {
        let (svc, _) = open(&root, config);
        for line in &script.lines {
            let response = svc.handle_line(line);
            assert!(response.starts_with("OK "), "{line:?} -> {response}");
        }
        let stats = svc.handle_line("STATS compact");
        let payload = stats.strip_prefix("OK ").unwrap().to_string();
        let snapshots: u64 = antennae::serve::protocol::payload_field(&payload, "snapshots")
            .unwrap()
            .parse()
            .unwrap();
        assert!(snapshots >= 2, "expected several compactions: {stats}");
        assert_eq!(svc.handle_line("SHUTDOWN"), "OK shutting-down");
    }
    let (svc, report) = open(&root, config);
    assert_eq!(report.recovered, ["compact"]);
    let mut oracle = oracle_session(&seeds, budget, &script.edits, script.edits.len());
    assert_bit_equal(&svc, "compact", &mut oracle);
    // Recovery itself is idempotent: reopen once more, same bits.
    drop(svc);
    let (svc, _) = open(&root, config);
    assert_bit_equal(&svc, "compact", &mut oracle);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_tail_recovers_the_longest_valid_prefix() {
    let root = tmp_root("torn");
    let (script, seeds, budget) = script("torn", 2, 71, 40, 0);
    let config = StoreConfig {
        sync: SyncPolicy::Always,
        ..StoreConfig::default()
    };
    let acked = {
        let (svc, _) = open(&root, config);
        let mut acked = 0usize;
        for line in &script.lines {
            if line.starts_with("ORIENT ") || line.starts_with("VERIFY ") {
                break;
            }
            assert!(svc.handle_line(line).starts_with("OK "), "{line:?}");
            if line.starts_with("EDIT ") {
                acked += 1;
            }
        }
        acked
    };
    // Tear the log mid-record: the crash cut the last append short.
    let wal = root.join("torn").join("wal.0.log");
    let len = std::fs::metadata(&wal).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    file.set_len(len - 3).unwrap();
    drop(file);

    let (svc, report) = open(&root, config);
    assert_eq!(report.recovered, ["torn"]);
    assert_eq!(report.truncated_tails, 1);
    assert!(report.lost_bytes > 0);
    // Exactly the final acknowledged edit is lost; everything before it is
    // intact (length-prefix + CRC framing cuts at the record boundary).
    let mut oracle = oracle_session(&seeds, budget, &script.edits, acked - 1);
    assert_bit_equal(&svc, "torn", &mut oracle);
    // And the salvaged tenant accepts new work.
    assert!(svc
        .handle_line("EDIT torn INSERT 0.5 0.25")
        .starts_with("OK edit torn"));
    assert!(svc.handle_line("ORIENT torn").starts_with("OK orient torn"));
    let _ = std::fs::remove_dir_all(&root);
}
