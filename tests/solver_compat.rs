//! Backward-compatibility pinning for the solver redesign.
//!
//! The `(k, φ_k)` → algorithm decision table used to be a hard-coded `match`
//! in `dispatch::orient_with_report`.  It now lives in the
//! [`Registry`]-driven solver, and these tests pin that
//! `SelectionPolicy::BestGuarantee` (and therefore the deprecated shims)
//! returns **bit-identical** `(algorithm, guaranteed_radius)` pairs to the
//! pre-redesign dispatcher across the full `(k ∈ 1..=5) × (φ ∈ 0..2π)`
//! grid.  `legacy_dispatch` below is a line-for-line reimplementation of the
//! retired `match`.

use antennae::core::algorithms::{chains, theorem3, AlgorithmKind};
use antennae::core::bounds::{theorem2_spread_threshold, SPREAD_EPS};
use antennae::core::solver::implemented_radius_guarantee;
use antennae::core::verify::verify_with_budget;
use antennae::prelude::*;
use proptest::prelude::*;
use std::f64::consts::{PI, TAU};

/// The pre-redesign dispatch decision table, verbatim: which algorithm ran
/// for a `(k, φ)` budget and which radius it reported as guaranteed.
///
/// One deliberate, documented divergence exists: inside the `SPREAD_EPS`
/// (1e-9) sliver just below the 2π/3 Theorem 3 threshold the legacy code
/// reported `(Theorem3, None)` while the registry snaps the budget to the
/// threshold and reports the proven `(Theorem3, Some(√3))` — see
/// `Theorem3Orienter::applicability`.  No grid point or realistic float
/// lands in that sliver, so the comparisons below pin everything else
/// bit-for-bit.
fn legacy_dispatch(k: usize, phi: f64) -> Option<(AlgorithmKind, Option<f64>)> {
    if !(1..=5).contains(&k) {
        return None;
    }
    if phi + SPREAD_EPS >= theorem2_spread_threshold(k) {
        return Some((AlgorithmKind::Theorem2, Some(1.0)));
    }
    match k {
        1 => Some((AlgorithmKind::Hamiltonian, None)),
        2 => {
            if phi + SPREAD_EPS >= 2.0 * PI / 3.0 {
                Some((AlgorithmKind::Theorem3, theorem3::guaranteed_radius(phi)))
            } else {
                Some((AlgorithmKind::Chains { k: 2 }, chains::guaranteed_radius(2)))
            }
        }
        _ => Some((AlgorithmKind::Chains { k }, chains::guaranteed_radius(k))),
    }
}

/// The φ sample points of the pinning grid: a dense uniform sweep of
/// `[0, 2π]` plus every threshold the decision table branches on.
fn phi_grid() -> Vec<f64> {
    let mut grid: Vec<f64> = (0..=64).map(|i| TAU * i as f64 / 64.0).collect();
    grid.extend([
        2.0 * PI / 5.0,
        2.0 * PI / 3.0,
        4.0 * PI / 5.0,
        PI,
        6.0 * PI / 5.0,
        8.0 * PI / 5.0,
    ]);
    grid
}

#[test]
fn best_guarantee_selection_is_bit_identical_to_legacy_dispatch() {
    let registry = Registry::paper();
    for k in 0..=7usize {
        for &phi in &phi_grid() {
            let budget = AntennaBudget::new(k, phi);
            let selected = registry
                .best_guarantee(&budget)
                .map(|(o, g)| (o.kind(), g.radius_over_lmax));
            assert_eq!(
                selected,
                legacy_dispatch(k, phi),
                "selection diverged at k={k} phi={phi}"
            );
        }
    }
}

#[test]
#[allow(deprecated)]
fn shims_run_bit_identically_to_legacy_dispatch_on_seeded_instances() {
    use antennae::core::algorithms::dispatch::{orient, orient_with_report};

    let generator = PointSetGenerator::UniformSquare { n: 35, side: 10.0 };
    let instance = Instance::new(generator.generate(99)).unwrap();
    for k in 1..=5usize {
        for &phi in &phi_grid() {
            let budget = AntennaBudget::new(k, phi);
            let (expected_algorithm, expected_guarantee) = legacy_dispatch(k, phi).unwrap();
            let outcome = orient_with_report(&instance, budget).unwrap();
            assert_eq!(outcome.algorithm, expected_algorithm, "k={k} phi={phi}");
            assert_eq!(
                outcome.guaranteed_radius_over_lmax, expected_guarantee,
                "k={k} phi={phi}"
            );
            // The scheme-only shim and the solver agree too.
            let scheme = orient(&instance, budget).unwrap();
            assert_eq!(scheme, outcome.scheme, "k={k} phi={phi}");
            let solver = Solver::on(&instance).with_budget(budget).run().unwrap();
            assert_eq!(solver.algorithm, expected_algorithm);
            assert_eq!(solver.scheme, outcome.scheme);
        }
    }
}

#[test]
fn implemented_guarantee_matches_the_legacy_table() {
    // The legacy `implemented_radius_guarantee` reported the guarantee
    // column of the decision table; the registry-derived version must agree
    // everywhere on the grid.
    for k in 0..=7usize {
        for &phi in &phi_grid() {
            let expected = legacy_dispatch(k, phi).and_then(|(_, g)| g);
            assert_eq!(
                implemented_radius_guarantee(k, phi),
                expected,
                "k={k} phi={phi}"
            );
        }
    }
}

proptest! {
    /// Seeded property test: selection agrees with the legacy table on
    /// random budgets (the decision is instance-independent, so this pins
    /// the whole continuous (k, φ) space, not just the grid).
    #[test]
    fn prop_selection_matches_legacy_dispatch(k in 0usize..8, phi in 0.0..TAU) {
        let registry = Registry::paper();
        let selected = registry
            .best_guarantee(&AntennaBudget::new(k, phi))
            .map(|(o, g)| (o.kind(), g.radius_over_lmax));
        prop_assert_eq!(selected, legacy_dispatch(k, phi), "k={} phi={}", k, phi);
    }

    /// Seeded property test over real instances: the shim and the solver
    /// produce identical outcomes.
    #[test]
    #[allow(deprecated)]
    fn prop_shim_and_solver_agree_on_instances(seed in 0u64..50, k in 1usize..=5, phi in 0.0..TAU) {
        use antennae::core::algorithms::dispatch::orient_with_report;
        let generator = PointSetGenerator::UniformSquare { n: 25, side: 8.0 };
        let instance = Instance::new(generator.generate(seed)).unwrap();
        let budget = AntennaBudget::new(k, phi);
        let shim = orient_with_report(&instance, budget).unwrap();
        let solver = Solver::on(&instance).with_budget(budget).run().unwrap();
        prop_assert_eq!(shim.algorithm, solver.algorithm);
        prop_assert_eq!(shim.guaranteed_radius_over_lmax, solver.guaranteed_radius_over_lmax);
        prop_assert_eq!(shim.scheme, solver.scheme);
    }
}

#[test]
fn portfolio_dominates_best_guarantee_and_every_candidate_verifies() {
    // The acceptance grid: on seeded workloads, Portfolio never reports a
    // worse measured radius than BestGuarantee and every candidate passes
    // the independent budget verifier.
    let workloads = [
        PointSetGenerator::UniformSquare { n: 40, side: 10.0 },
        PointSetGenerator::Clustered {
            n: 40,
            clusters: 4,
            side: 20.0,
            spread: 1.0,
        },
        PointSetGenerator::Path { n: 20 },
    ];
    for generator in workloads {
        for seed in 0..2u64 {
            let instance = Instance::new(generator.generate(seed)).unwrap();
            for k in 1..=5usize {
                for step in 0..=4 {
                    let budget = AntennaBudget::new(k, TAU * step as f64 / 4.0);
                    let best = Solver::on(&instance).with_budget(budget).run().unwrap();
                    let portfolio = Solver::on(&instance)
                        .with_budget(budget)
                        .policy(SelectionPolicy::Portfolio)
                        .run()
                        .unwrap();
                    assert!(
                        portfolio.measured_radius_over_lmax
                            <= best.measured_radius_over_lmax + 1e-12,
                        "{} seed {seed} budget {budget:?}: portfolio {} > best {}",
                        generator.label(),
                        portfolio.measured_radius_over_lmax,
                        best.measured_radius_over_lmax
                    );
                    assert_eq!(
                        portfolio.candidates.iter().filter(|c| c.selected).count(),
                        1
                    );
                    for candidate in &portfolio.candidates {
                        let scheme = candidate
                            .scheme
                            .as_ref()
                            .expect("portfolio candidates carry schemes");
                        let report = verify_with_budget(&instance, scheme, Some(budget));
                        assert!(
                            report.is_valid(),
                            "{} seed {seed} budget {budget:?} candidate {}: {:?}",
                            generator.label(),
                            candidate.algorithm,
                            report.violations
                        );
                    }
                }
            }
        }
    }
}

/// Compile-time pin: the new outcome types keep their serde derives (the
/// vendored serde is an API stub, so "round trip" means the bounds hold and
/// the value survives the clone-compare cycle; swapping in the real serde
/// upgrades this to a byte-level round trip with no source change).
fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}

#[test]
fn orientation_outcome_round_trips() {
    assert_serde::<OrientationOutcome>();
    assert_serde::<antennae::core::solver::CandidateOutcome>();
    assert_serde::<SelectionPolicy>();
    assert_serde::<Guarantee>();
    assert_serde::<AlgorithmKind>();

    let generator = PointSetGenerator::UniformSquare { n: 20, side: 6.0 };
    let instance = Instance::new(generator.generate(7)).unwrap();
    let outcome = Solver::on(&instance)
        .budget(2, PI)
        .policy(SelectionPolicy::Portfolio)
        .run()
        .unwrap();
    // Value-level round trip through the serializable representation (the
    // derived Clone mirrors the derived Serialize/Deserialize field set).
    let round_tripped = outcome.clone();
    assert_eq!(round_tripped, outcome);
    assert_eq!(round_tripped.candidates.len(), outcome.candidates.len());
    assert_eq!(
        round_tripped.measured_radius_over_lmax,
        outcome.measured_radius_over_lmax
    );
}
