//! End-to-end integration tests: every Table 1 regime, exercised through the
//! public facade (`antennae::prelude`), on several workload families.

use antennae::core::solver::implemented_radius_guarantee;
use antennae::core::verify::verify_with_budget;
use antennae::prelude::*;
use std::f64::consts::PI;

fn table1_budgets() -> Vec<(usize, f64)> {
    vec![
        (1, 0.0),
        (1, 8.0 * PI / 5.0),
        (2, 0.0),
        (2, 2.0 * PI / 3.0),
        (2, PI),
        (2, 6.0 * PI / 5.0),
        (3, 0.0),
        (3, 4.0 * PI / 5.0),
        (4, 0.0),
        (4, 2.0 * PI / 5.0),
        (5, 0.0),
    ]
}

fn workloads() -> Vec<PointSetGenerator> {
    vec![
        PointSetGenerator::UniformSquare { n: 60, side: 12.0 },
        PointSetGenerator::Clustered {
            n: 60,
            clusters: 4,
            side: 25.0,
            spread: 1.0,
        },
        PointSetGenerator::StarArms {
            arms: 5,
            arm_length: 4,
        },
        PointSetGenerator::Path { n: 25 },
    ]
}

#[test]
fn every_table1_regime_is_strongly_connected_within_its_guarantee() {
    for generator in workloads() {
        for seed in 0..2u64 {
            let instance = Instance::new(generator.generate(seed)).unwrap();
            for (k, phi) in table1_budgets() {
                let budget = AntennaBudget::new(k, phi);
                let outcome = Solver::on(&instance).with_budget(budget).run().unwrap();
                let report = verify_with_budget(&instance, &outcome.scheme, Some(budget));
                assert!(
                    report.is_valid(),
                    "{} seed {seed} k={k} phi={phi}: {:?}",
                    generator.label(),
                    report.violations
                );
                if let Some(bound) = outcome.guaranteed_radius_over_lmax {
                    assert!(
                        report.max_radius_over_lmax <= bound + 1e-6,
                        "{} seed {seed} k={k} phi={phi}: radius {} > guarantee {bound}",
                        generator.label(),
                        report.max_radius_over_lmax,
                    );
                }
            }
        }
    }
}

#[test]
fn implemented_guarantees_match_paper_bounds_where_reimplemented() {
    // For every regime except the k = 1 intermediate one, the implemented
    // guarantee equals the paper's Table 1 bound.
    for (k, phi) in table1_budgets() {
        let paper = bounds::table1_radius(k, phi).unwrap();
        match implemented_radius_guarantee(k, phi) {
            Some(ours) => assert!(
                (ours - paper).abs() < 1e-9 || ours >= paper,
                "k={k} phi={phi}: implemented {ours} vs paper {paper}"
            ),
            None => assert_eq!(k, 1, "only the k=1 heuristic rows lack a guarantee"),
        }
    }
}

#[test]
fn normalized_instances_give_identical_radius_ratios() {
    // The algorithms are scale-invariant: normalizing lmax to 1 must not
    // change the measured radius-to-lmax ratio.
    let generator = PointSetGenerator::UniformSquare { n: 50, side: 200.0 };
    let instance = Instance::new(generator.generate(3)).unwrap();
    let normalized = instance.normalized().unwrap();
    assert!((normalized.lmax() - 1.0).abs() < 1e-9);
    for (k, phi) in [(2usize, PI), (3, 0.0)] {
        let budget = AntennaBudget::new(k, phi);
        let raw = Solver::on(&instance)
            .with_budget(budget)
            .run()
            .unwrap()
            .measured_radius_over_lmax;
        let norm = Solver::on(&normalized)
            .with_budget(budget)
            .run()
            .unwrap()
            .measured_radius_over_lmax;
        assert!(
            (raw - norm).abs() < 1e-6,
            "k={k}: {raw} (raw) vs {norm} (normalized)"
        );
    }
}

#[test]
fn doc_example_pipeline_works_via_prelude() {
    let points = vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.2),
        Point::new(0.4, 0.9),
        Point::new(1.3, 1.1),
        Point::new(0.1, 1.4),
    ];
    let instance = Instance::new(points).unwrap();
    let outcome = Solver::on(&instance).budget(2, PI).run().unwrap();
    let report = verify(&instance, &outcome.scheme);
    assert!(report.is_strongly_connected);
    assert!(outcome.measured_radius_over_lmax <= 2.0 * (2.0 * PI / 9.0).sin() + 1e-9);
}
