//! The shard oracle: the sharded engines must be **bit-exact** to the global
//! ones — not statistically close, the same `f64`s.
//!
//! Static side: [`ShardedInstance::build_with_threads`] (per-tile kd/Borůvka
//! forests + cross-tile stitch) against [`Instance::new`], over stochastic
//! and extremal workloads × tile counts × thread counts.  The equality bar is
//! the full structure: MST edge set (endpoints and `f64::to_bits` weights),
//! `lmax`, total weight — and, downstream, the solver's scheme and the
//! verification report, which inherit bit-equality from the substrate.
//!
//! Dynamic side: a [`DynamicInstance::new_sharded`] deployment under an edit
//! script against the unsharded engine applying the same script, compared
//! after **every** edit (including moves that cross tile boundaries and
//! drain/regrow sequences).  The property test fuzzes random scripts whose
//! moves are drawn across the whole bounding box, so boundary crossings are
//! the common case, not the exception.
//!
//! Why equality is exact and not approximate: all engines reduce to the same
//! perturbed total order on candidate edges (weight, then endpoint slots), so
//! the MST is *unique* under that order and every correct algorithm —
//! whatever its tile decomposition, stitch schedule or thread count — must
//! return it.  See `docs/ARCHITECTURE.md` ("Spatial sharding").

use antennae::core::antenna::AntennaBudget;
use antennae::core::bounds::theorem2_spread_threshold;
use antennae::core::dynamic::{DynamicInstance, DynamicSolverSession, Edit};
use antennae::core::shard::{ShardSpec, ShardedInstance};
use antennae::prelude::*;
use antennae::sim::generators::{extremal_workloads, standard_workloads};
use proptest::prelude::*;

fn theorem2_budget() -> AntennaBudget {
    AntennaBudget::new(2, theorem2_spread_threshold(2))
}

/// MST edges as comparable triples: (min endpoint, max endpoint, weight bits).
fn edge_set(instance: &Instance) -> Vec<(usize, usize, u64)> {
    let mut edges: Vec<(usize, usize, u64)> = instance
        .mst()
        .edges()
        .into_iter()
        .map(|e| (e.u.min(e.v), e.u.max(e.v), e.weight.to_bits()))
        .collect();
    edges.sort_unstable();
    edges
}

/// The static bar: substrate bit-equality, then scheme/report equality of the
/// full solve + verify pipeline run on both instances.
fn assert_static_bit_equal(points: &[Point], spec: ShardSpec, threads: usize) {
    let sharded = ShardedInstance::build_with_threads(points, spec, threads).expect("sharded");
    let global = Instance::new(points.to_vec()).expect("global");
    let label = format!("spec={spec} threads={threads} n={}", points.len());

    assert_eq!(
        sharded.instance().lmax().to_bits(),
        global.lmax().to_bits(),
        "lmax bits ({label})"
    );
    assert_eq!(
        sharded.instance().mst().total_weight().to_bits(),
        global.mst().total_weight().to_bits(),
        "total weight bits ({label})"
    );
    assert_eq!(
        edge_set(sharded.instance()),
        edge_set(&global),
        "MST edge set ({label})"
    );

    let budget = theorem2_budget();
    let a = Solver::on(sharded.instance())
        .with_budget(budget)
        .run()
        .expect("solve sharded");
    let b = Solver::on(&global)
        .with_budget(budget)
        .run()
        .expect("solve global");
    assert_eq!(a.scheme, b.scheme, "scheme ({label})");
    let ra = verify(sharded.instance(), &a.scheme);
    let rb = verify(&global, &b.scheme);
    assert_eq!(ra, rb, "report ({label})");
}

#[test]
fn static_build_matches_global_across_workloads_tiles_and_threads() {
    let mut workloads: Vec<(String, Vec<Point>)> = Vec::new();
    for generator in standard_workloads().into_iter().chain(extremal_workloads()) {
        workloads.push((generator.label(), generator.generate(0xC0FFEE)));
    }
    for (name, points) in &workloads {
        for spec in [ShardSpec::Grid(2), ShardSpec::Grid(3), ShardSpec::Grid(5)] {
            for threads in [1, 4] {
                assert_static_bit_equal(points, spec, threads);
                let _ = name;
            }
        }
    }
}

#[test]
fn static_build_auto_shards_and_matches_at_scale() {
    // Auto only engages at AUTO_SHARD_MIN_POINTS; build one workload above it.
    let points = PointSetGenerator::UniformSquare {
        n: 5000,
        side: 50.0,
    }
    .generate(7);
    let sharded = ShardedInstance::build(&points, ShardSpec::Auto).expect("sharded");
    assert!(
        sharded.report().is_some(),
        "auto must shard 5000 uniform points"
    );
    for threads in [1, 4] {
        assert_static_bit_equal(&points, ShardSpec::Auto, threads);
    }
}

#[test]
fn static_build_survives_degenerate_workloads() {
    // Duplicates on an integer grid (tie-heavy), a collinear path, a cluster
    // leaving most tiles empty, and an all-coincident set (degenerate bbox).
    let mut duplicated: Vec<Point> = (0..300)
        .map(|i| Point::new((i % 10) as f64, (i / 10) as f64 % 10.0))
        .collect();
    duplicated.extend((0..100).map(|i| Point::new((i % 10) as f64, (i % 7) as f64)));
    let collinear: Vec<Point> = (0..200).map(|i| Point::new(i as f64, 0.0)).collect();
    let clustered: Vec<Point> = (0..256)
        .map(|i| Point::new(100.0 + (i % 16) as f64 * 0.1, 200.0 + (i / 16) as f64 * 0.1))
        .chain([Point::new(0.0, 0.0)])
        .collect();
    for points in [&duplicated, &collinear, &clustered] {
        for spec in [ShardSpec::Grid(2), ShardSpec::Grid(4)] {
            assert_static_bit_equal(points, spec, 2);
        }
    }
    // Coincident points cannot resolve a grid; the build must fall back.
    let coincident = vec![Point::new(3.0, 3.0); 12];
    let built = ShardedInstance::build(&coincident, ShardSpec::Grid(4)).expect("fallback");
    assert!(built.report().is_none(), "degenerate bbox must stay global");
    assert_eq!(built.instance().len(), 12);
}

/// Session-level bit-equality after an edit (the dynamic bar).
fn assert_sessions_agree(sharded: &mut DynamicSolverSession, global: &mut DynamicSolverSession) {
    assert_eq!(
        sharded.instance().ids(),
        global.instance().ids(),
        "live ids"
    );
    assert_eq!(
        sharded.instance().lmax().to_bits(),
        global.instance().lmax().to_bits(),
        "lmax bits"
    );
    assert_eq!(
        sharded.instance().mst_total_weight().to_bits(),
        global.instance().mst_total_weight().to_bits(),
        "MST weight bits"
    );
    assert_eq!(
        sharded.instance().changed_ids(),
        global.instance().changed_ids(),
        "changed sets"
    );
    assert_eq!(sharded.scheme(), global.scheme(), "scheme");
    assert_eq!(sharded.digraph(), global.digraph(), "digraph");
    assert_eq!(sharded.report(), global.report(), "report");
}

#[test]
fn dynamic_edits_match_global_including_boundary_crossings() {
    // A 40×40 perturbed-ish lattice sharded 4×4: tile side 10, so the
    // scripted moves below hop across one or more tile boundaries.
    let n_side = 40usize;
    let points: Vec<Point> = (0..n_side * n_side)
        .map(|i| {
            let (x, y) = ((i % n_side) as f64, (i / n_side) as f64);
            Point::new(
                x + 0.01 * ((i * 7) % 13) as f64,
                y + 0.01 * ((i * 5) % 11) as f64,
            )
        })
        .collect();
    let spec = ShardSpec::Grid(4);
    assert!(
        spec.resolve(&points).is_some(),
        "the lattice must actually shard"
    );
    let budget = theorem2_budget();
    let mut sharded = DynamicSolverSession::new(
        DynamicInstance::new_sharded(&points, spec).expect("sharded"),
        budget,
    )
    .expect("session");
    let mut global = DynamicSolverSession::new(
        DynamicInstance::new_sharded(&points, ShardSpec::Off).expect("global"),
        budget,
    )
    .expect("session");
    assert_sessions_agree(&mut sharded, &mut global);

    let far = points.len() - 1;
    let script = [
        // In-tile wiggle.
        Edit::Move(0, Point::new(0.4, 0.4)),
        // Corner-to-corner: crosses every tile boundary on both axes.
        Edit::Move(0, Point::new(39.2, 39.1)),
        // Sit exactly on a tile boundary (x = 10 is the 4×4 cut line).
        Edit::Move(far, Point::new(10.0, 10.0)),
        // Insert into an interior tile, then into a boundary strip.
        Edit::Insert(Point::new(20.5, 20.5)),
        Edit::Insert(Point::new(29.999, 0.002)),
        // Remove a boundary sensor and a hub's neighbor.
        Edit::Remove(far),
        Edit::Remove(1),
        // Move the fresh insert across the whole deployment.
        Edit::Move(1600, Point::new(0.8, 38.7)),
    ];
    for edit in script {
        let a = sharded.apply(edit).expect("sharded edit");
        let b = global.apply(edit).expect("global edit");
        assert_eq!(a.mst_changed, b.mst_changed, "changed count of {edit:?}");
        assert_sessions_agree(&mut sharded, &mut global);
    }
}

#[derive(Debug, Clone)]
enum Step {
    Insert(f64, f64),
    Remove(u64),
    Move(u64, f64, f64),
}

fn to_edit(session: &DynamicSolverSession, step: &Step) -> Option<Edit> {
    match *step {
        Step::Insert(x, y) => Some(Edit::Insert(Point::new(x, y))),
        Step::Remove(pick) => {
            let ids = session.instance().ids();
            (ids.len() > 1).then(|| Edit::Remove(ids[(pick % ids.len() as u64) as usize]))
        }
        Step::Move(pick, x, y) => {
            let ids = session.instance().ids();
            Some(Edit::Move(
                ids[(pick % ids.len() as u64) as usize],
                Point::new(x, y),
            ))
        }
    }
}

proptest! {
    /// Random scripts over a sharded-vs-global session pair.  Coordinates
    /// span the whole 30×30 box while the 3×3 grid cuts it at 10 and 20, so
    /// most moves cross tiles; inserts land in arbitrary tiles; removals hit
    /// arbitrary ids.  Equality is checked after every step.
    #[test]
    fn prop_sharded_scripts_match_global(
        script in proptest::collection::vec(
            (0u8..3, 0u64..1_000_000u64, 0.0..30.0f64, 0.0..30.0f64),
            1..14
        ),
        seed in 0u64..4,
    ) {
        let points = PointSetGenerator::UniformSquare { n: 60, side: 30.0 }.generate(seed);
        let spec = ShardSpec::Grid(3);
        prop_assume!(spec.resolve(&points).is_some());
        let budget = theorem2_budget();
        let mut sharded = DynamicSolverSession::new(
            DynamicInstance::new_sharded(&points, spec).expect("sharded"),
            budget,
        ).expect("session");
        let mut global = DynamicSolverSession::new(
            DynamicInstance::new_sharded(&points, ShardSpec::Off).expect("global"),
            budget,
        ).expect("session");
        for &(op, pick, x, y) in &script {
            let step = match op {
                0 => Step::Insert(x, y),
                1 => Step::Remove(pick),
                _ => Step::Move(pick, x, y),
            };
            let Some(edit) = to_edit(&global, &step) else { continue };
            let a = sharded.apply(edit).expect("sharded edit");
            let b = global.apply(edit).expect("global edit");
            prop_assert_eq!(a.mst_changed, b.mst_changed);
            assert_sessions_agree(&mut sharded, &mut global);
        }
    }
}
