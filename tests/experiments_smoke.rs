//! Smoke tests of every experiment driver (the logic behind each report
//! binary), run in their quick configurations.

use antennae::sim::experiments::{
    chain_constructions, energy_compare, lemma1_polygon, mst_facts, table1, theorem3_cases,
    tradeoff,
};

#[test]
fn table1_quick_report_reproduces_every_row_within_bounds() {
    let report = table1::run(&table1::Table1Config::quick());
    assert_eq!(report.rows.len(), 12);
    assert!(report.all_valid());
    for row in &report.rows {
        assert!(
            row.within_paper_bound || row.implemented_bound.is_none(),
            "row '{}' exceeded the paper bound: measured {:.4} vs {:?}",
            row.row.regime,
            row.worst_radius,
            row.row.paper_bound
        );
    }
    let text = report.to_string();
    assert!(text.contains("Table 1"));
    assert!(text.contains("Theorem"));
}

#[test]
fn lemma1_report_confirms_necessity_and_sufficiency() {
    let report = lemma1_polygon::run(5);
    assert!(report.all_hold());
    assert_eq!(report.cells.len(), 15);
}

#[test]
fn mst_facts_hold_on_quick_workloads() {
    let report = mst_facts::run(&mst_facts::MstFactsConfig::quick());
    assert!(report.all_facts_hold());
}

#[test]
fn theorem3_case_histogram_covers_all_degrees_seen() {
    let report = theorem3_cases::run(&theorem3_cases::Theorem3CasesConfig::quick());
    for histogram in &report.histograms {
        assert!(histogram.all_connected);
        assert!(histogram.worst_radius <= histogram.bound.unwrap() + 1e-6);
        assert!(!histogram.counts.is_empty());
    }
}

#[test]
fn chain_constructions_respect_their_bounds() {
    let report = chain_constructions::run(&chain_constructions::ChainConfig::quick());
    assert!(report.all_within_bounds());
}

#[test]
fn tradeoff_curves_stay_below_paper_bounds() {
    let report = tradeoff::run(&tradeoff::TradeoffConfig::quick());
    assert!(report.all_connected);
    for point in &report.phi_sweep {
        assert!(point.y <= point.y_reference.unwrap() + 1e-6);
    }
}

#[test]
fn energy_experiment_shows_directional_gain() {
    let report = energy_compare::run(&energy_compare::EnergyConfig::quick());
    assert!(report.rows.iter().all(|r| r.energy_gain() > 1.0));
}
