//! Edit-script oracle tests for the dynamic-instance subsystem.
//!
//! After **every step** of an insert/remove/move script, the incrementally
//! maintained state must agree with the from-scratch pipeline on the same
//! live point set:
//!
//! * MST: same total weight and same `lmax` as a fresh `EuclideanMst::build`
//!   (every MST of a point set shares one multiset of edge weights, so these
//!   agree up to float summation noise even when tie-broken trees differ);
//! * scheme: in the Theorem 2 regime, **exactly** the scheme a full
//!   re-orientation produces on the materialized instance;
//! * induced digraph: **exactly** the verification engine's from-scratch
//!   construction (both the dense reference and the kd-tree fast path);
//! * verdict: **exactly** the report of a fresh `verify_with_budget`.
//!
//! The deterministic sweep covers stochastic and extremal generators,
//! drain-to-one-sensor scripts and duplicate-point edits; the property tests
//! fuzz random scripts over snapped (tie-heavy) and continuous geometry.
//! `scripts/verify.sh` runs this suite under the pinned `PROPTEST_CASES`
//! budget.

use antennae::core::antenna::AntennaBudget;
use antennae::core::bounds::theorem2_spread_threshold;
use antennae::core::dynamic::{DynamicInstance, DynamicSolverSession, Edit};
use antennae::core::verify::verify_with_budget;
use antennae::graph::euclidean::MAX_MST_DEGREE;
use antennae::prelude::*;
use antennae::sim::generators::{extremal_workloads, standard_workloads};
use proptest::prelude::*;

/// One fuzzable script step; `pick` indexes the live population mod its size.
#[derive(Debug, Clone)]
enum Step {
    Insert(f64, f64),
    Remove(u64),
    Move(u64, f64, f64),
}

fn to_edit(session: &DynamicSolverSession, step: &Step) -> Option<Edit> {
    match *step {
        Step::Insert(x, y) => Some(Edit::Insert(Point::new(x, y))),
        Step::Remove(pick) => {
            let ids = session.instance().ids();
            (ids.len() > 1).then(|| Edit::Remove(ids[(pick % ids.len() as u64) as usize]))
        }
        Step::Move(pick, x, y) => {
            let ids = session.instance().ids();
            Some(Edit::Move(
                ids[(pick % ids.len() as u64) as usize],
                Point::new(x, y),
            ))
        }
    }
}

/// The full oracle: MST weight/`lmax` vs rebuild, scheme vs full re-orient,
/// digraph vs both static constructions, report vs fresh verification.
fn assert_oracle(session: &mut DynamicSolverSession) {
    let budget = session.budget();
    let scheme = session.scheme().clone();
    let digraph = session.digraph().clone();
    let report = session.report().clone();
    let dynamic_weight = session.instance().mst_total_weight();
    let dynamic_lmax = session.instance().lmax();
    let instance = session.materialized().unwrap().clone();

    // MST weight / lmax vs a from-scratch engine build.
    let rebuilt = EuclideanMst::build(instance.points()).unwrap();
    let scale = rebuilt.total_weight().max(1.0);
    assert!(
        (dynamic_weight - rebuilt.total_weight()).abs() < 1e-9 * scale,
        "weight {} vs rebuild {}",
        dynamic_weight,
        rebuilt.total_weight()
    );
    assert!(
        (dynamic_lmax - rebuilt.lmax()).abs() < 1e-9 * scale,
        "lmax {} vs rebuild {}",
        dynamic_lmax,
        rebuilt.lmax()
    );
    assert!(instance.mst().max_degree() <= MAX_MST_DEGREE);
    assert_eq!(instance.lmax(), dynamic_lmax);

    // Scheme vs a full re-orientation (exact, including antenna parameters).
    if session.is_incremental() {
        let full = Solver::on(&instance)
            .with_budget(budget)
            .run()
            .unwrap()
            .scheme;
        assert_eq!(scheme, full, "incremental scheme diverged from full solve");
    }

    // Digraph vs both static constructions (ordered-structural equality).
    let dense = VerificationEngine::new()
        .with_strategy(DigraphStrategy::Dense)
        .induced_digraph(instance.points(), &scheme);
    assert_eq!(digraph, dense, "digraph diverged from dense reference");
    let kd = VerificationEngine::new()
        .with_strategy(DigraphStrategy::KdTree)
        .induced_digraph(instance.points(), &scheme);
    assert_eq!(digraph, kd, "digraph diverged from kd-tree engine");

    // Verdict vs a fresh from-scratch verification.
    let fresh = verify_with_budget(&instance, &scheme, Some(budget));
    assert_eq!(report, fresh, "report diverged from fresh verification");
}

fn replay(points: &[Point], budget: AntennaBudget, steps: &[Step]) {
    let inst = DynamicInstance::new(points).unwrap();
    let mut session = DynamicSolverSession::new(inst, budget).unwrap();
    assert_oracle(&mut session);
    for step in steps {
        let Some(edit) = to_edit(&session, step) else {
            continue;
        };
        session.apply(edit).unwrap();
        assert_oracle(&mut session);
    }
}

/// A deterministic mixed script exercising all three edit kinds.
fn mixed_script(seed: u64) -> Vec<Step> {
    (0..12)
        .map(|i| {
            let x = ((seed.wrapping_mul(31).wrapping_add(i * 7)) % 100) as f64 / 7.0;
            let y = ((seed.wrapping_mul(17).wrapping_add(i * 13)) % 100) as f64 / 9.0;
            match i % 3 {
                0 => Step::Insert(x, y),
                1 => Step::Remove(seed.wrapping_add(i)),
                _ => Step::Move(seed.wrapping_add(i), x, y),
            }
        })
        .collect()
}

#[test]
fn mixed_scripts_over_stochastic_and_extremal_workloads() {
    let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
    for workload in standard_workloads().into_iter().chain(extremal_workloads()) {
        // Cap the deployment size to keep the O(n²) dense oracle affordable
        // across the per-step sweep.
        if workload.size() > 120 {
            continue;
        }
        let points = workload.generate(5);
        replay(&points, budget, &mixed_script(workload.size() as u64));
    }
}

#[test]
fn fallback_budget_scripts_stay_exact() {
    // (2, π) re-solves in full per edit (Theorem 3); the digraph/report
    // oracles still must hold.
    let points = PointSetGenerator::UniformSquare { n: 30, side: 8.0 }.generate(2);
    replay(
        &points,
        AntennaBudget::new(2, std::f64::consts::PI),
        &mixed_script(3),
    );
}

#[test]
fn drain_to_one_sensor_script() {
    let points = PointSetGenerator::UniformSquare { n: 12, side: 5.0 }.generate(9);
    let steps: Vec<Step> = (0..11).map(|i| Step::Remove(i * 3 + 1)).collect();
    let budget = AntennaBudget::new(1, theorem2_spread_threshold(1));
    let inst = DynamicInstance::new(&points).unwrap();
    let mut session = DynamicSolverSession::new(inst, budget).unwrap();
    for step in &steps {
        if let Some(edit) = to_edit(&session, step) {
            session.apply(edit).unwrap();
            assert_oracle(&mut session);
        }
    }
    assert_eq!(session.instance().len(), 1);
    assert!(session.report().is_strongly_connected);
    assert_eq!(session.instance().lmax(), 0.0);
}

#[test]
fn duplicate_point_scripts_stay_exact() {
    // Exact duplicates at every step: zero-length MST edges, coincident
    // sensors covering each other through the apex rule.
    let points = vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(1.0, 0.0),
    ];
    let steps = vec![
        Step::Insert(0.0, 0.0),
        Step::Insert(1.0, 0.0),
        Step::Move(0, 1.0, 0.0),
        Step::Remove(2),
        Step::Move(1, 0.0, 0.0),
        Step::Insert(0.5, 0.5),
        Step::Remove(0),
    ];
    replay(
        &points,
        AntennaBudget::new(3, theorem2_spread_threshold(3)),
        &steps,
    );
}

/// Coalescing equivalence: resolve a script against a one-at-a-time serial
/// session (recording the concrete edits it applied), then replay the same
/// edit list on a second session in coalesced batches of `batch` edits.
/// The batched final state must be **exactly** the serial final state —
/// same scheme, digraph, report, and MST summary bits.
fn assert_coalescing_equivalent(
    points: &[Point],
    budget: AntennaBudget,
    steps: &[Step],
    batch: usize,
) {
    let mut serial =
        DynamicSolverSession::new(DynamicInstance::new(points).unwrap(), budget).unwrap();
    let mut resolved = Vec::new();
    for step in steps {
        let Some(edit) = to_edit(&serial, step) else {
            continue;
        };
        serial.apply(edit).unwrap();
        resolved.push(edit);
    }

    let mut batched =
        DynamicSolverSession::new(DynamicInstance::new(points).unwrap(), budget).unwrap();
    for chunk in resolved.chunks(batch.max(1)) {
        batched.apply_coalesced(chunk).unwrap();
    }

    assert_eq!(
        batched.instance().ids(),
        serial.instance().ids(),
        "live ids diverged at batch={batch}"
    );
    assert_eq!(
        batched.instance().lmax().to_bits(),
        serial.instance().lmax().to_bits(),
        "lmax diverged at batch={batch}"
    );
    assert_eq!(
        batched.instance().mst_total_weight().to_bits(),
        serial.instance().mst_total_weight().to_bits(),
        "MST weight diverged at batch={batch}"
    );
    assert_eq!(
        batched.scheme(),
        serial.scheme(),
        "scheme diverged at batch={batch}"
    );
    assert_eq!(
        batched.digraph(),
        serial.digraph(),
        "digraph diverged at batch={batch}"
    );
    assert_eq!(
        batched.report(),
        serial.report(),
        "report diverged at batch={batch}"
    );
    // And the batched state satisfies the full rebuild oracle on its own.
    assert_oracle(&mut batched);
}

#[test]
fn coalesced_batches_equal_serial_application() {
    let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
    for seed in 0..4u64 {
        let points = PointSetGenerator::UniformSquare { n: 20, side: 9.0 }.generate(seed);
        let steps = mixed_script(seed.wrapping_mul(11) + 5);
        for batch in [1, 2, 3, 5, usize::MAX] {
            assert_coalescing_equivalent(&points, budget, &steps, batch);
        }
    }
}

#[test]
fn coalesced_batches_equal_serial_under_fallback_budget() {
    // Theorem 3 regime: every repair is a full re-solve, but batching must
    // still land on the identical final state.
    let points = PointSetGenerator::UniformSquare { n: 16, side: 6.0 }.generate(3);
    let budget = AntennaBudget::new(2, std::f64::consts::PI);
    for batch in [2, 4, usize::MAX] {
        assert_coalescing_equivalent(&points, budget, &mixed_script(8), batch);
    }
}

proptest! {
    #[test]
    fn prop_coalesced_batches_match_serial(
        initial in proptest::collection::vec((0.0..20.0f64, 0.0..20.0f64), 2..20),
        script in proptest::collection::vec(
            (0u8..3, 0u64..1_000_000u64, 0.0..20.0f64, 0.0..20.0f64),
            1..12
        ),
        batch in 1usize..6,
        k in 1usize..=3,
    ) {
        let points: Vec<Point> = initial.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let steps: Vec<Step> = script
            .iter()
            .map(|&(op, pick, x, y)| match op {
                0 => Step::Insert(x, y),
                1 => Step::Remove(pick),
                _ => Step::Move(pick, x, y),
            })
            .collect();
        let budget = AntennaBudget::new(k, theorem2_spread_threshold(k));
        assert_coalescing_equivalent(&points, budget, &steps, batch);
    }

    #[test]
    fn prop_random_scripts_match_rebuild_oracle(
        initial in proptest::collection::vec((0.0..20.0f64, 0.0..20.0f64), 2..25),
        script in proptest::collection::vec(
            (0u8..3, 0u64..1_000_000u64, 0.0..20.0f64, 0.0..20.0f64),
            1..15
        ),
        k in 1usize..=5,
    ) {
        let points: Vec<Point> = initial.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let steps: Vec<Step> = script
            .iter()
            .map(|&(op, pick, x, y)| match op {
                0 => Step::Insert(x, y),
                1 => Step::Remove(pick),
                _ => Step::Move(pick, x, y),
            })
            .collect();
        let budget = AntennaBudget::new(k, theorem2_spread_threshold(k));
        replay(&points, budget, &steps);
    }

    #[test]
    fn prop_snapped_grid_scripts_match_rebuild_oracle(
        initial in proptest::collection::vec((0usize..8, 0usize..8), 2..20),
        script in proptest::collection::vec(
            (0u8..3, 0u64..1_000_000u64, 0usize..8, 0usize..8),
            1..12
        ),
    ) {
        // Integer-snapped geometry: exact duplicates, shared rows/columns and
        // tied candidate edges in every repair — the worst case for the
        // incremental tie-breaking.
        let points: Vec<Point> = initial
            .iter()
            .map(|&(x, y)| Point::new(x as f64, y as f64))
            .collect();
        let steps: Vec<Step> = script
            .iter()
            .map(|&(op, pick, x, y)| match op {
                0 => Step::Insert(x as f64, y as f64),
                1 => Step::Remove(pick),
                _ => Step::Move(pick, x as f64, y as f64),
            })
            .collect();
        let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
        replay(&points, budget, &steps);
    }
}
