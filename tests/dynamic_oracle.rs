//! Edit-script oracle tests for the dynamic-instance subsystem.
//!
//! After **every step** of an insert/remove/move script, the incrementally
//! maintained state must agree with the from-scratch pipeline on the same
//! live point set:
//!
//! * MST: same total weight and same `lmax` as a fresh `EuclideanMst::build`
//!   (every MST of a point set shares one multiset of edge weights, so these
//!   agree up to float summation noise even when tie-broken trees differ);
//! * scheme: in the Theorem 2 regime, **exactly** the scheme a full
//!   re-orientation produces on the materialized instance;
//! * induced digraph: **exactly** the verification engine's from-scratch
//!   construction (both the dense reference and the kd-tree fast path);
//! * verdict: **exactly** the report of a fresh `verify_with_budget`.
//!
//! The deterministic sweep covers stochastic and extremal generators,
//! drain-to-one-sensor scripts and duplicate-point edits; the property tests
//! fuzz random scripts over snapped (tie-heavy) and continuous geometry.
//! `scripts/verify.sh` runs this suite under the pinned `PROPTEST_CASES`
//! budget.

use antennae::core::antenna::AntennaBudget;
use antennae::core::bounds::theorem2_spread_threshold;
use antennae::core::dynamic::{DynamicInstance, DynamicSolverSession, Edit};
use antennae::core::verify::verify_with_budget;
use antennae::graph::euclidean::MAX_MST_DEGREE;
use antennae::prelude::*;
use antennae::sim::generators::{extremal_workloads, standard_workloads};
use proptest::prelude::*;

/// One fuzzable script step; `pick` indexes the live population mod its size.
#[derive(Debug, Clone)]
enum Step {
    Insert(f64, f64),
    Remove(u64),
    Move(u64, f64, f64),
}

fn to_edit(session: &DynamicSolverSession, step: &Step) -> Option<Edit> {
    match *step {
        Step::Insert(x, y) => Some(Edit::Insert(Point::new(x, y))),
        Step::Remove(pick) => {
            let ids = session.instance().ids();
            (ids.len() > 1).then(|| Edit::Remove(ids[(pick % ids.len() as u64) as usize]))
        }
        Step::Move(pick, x, y) => {
            let ids = session.instance().ids();
            Some(Edit::Move(
                ids[(pick % ids.len() as u64) as usize],
                Point::new(x, y),
            ))
        }
    }
}

/// The full oracle: MST weight/`lmax` vs rebuild, scheme vs full re-orient,
/// digraph vs both static constructions, report vs fresh verification.
fn assert_oracle(session: &mut DynamicSolverSession) {
    let budget = session.budget();
    let scheme = session.scheme().clone();
    let digraph = session.digraph().clone();
    let report = session.report().clone();
    let dynamic_weight = session.instance().mst_total_weight();
    let dynamic_lmax = session.instance().lmax();
    let instance = session.materialized().unwrap().clone();

    // MST weight / lmax vs a from-scratch engine build.
    let rebuilt = EuclideanMst::build(instance.points()).unwrap();
    let scale = rebuilt.total_weight().max(1.0);
    assert!(
        (dynamic_weight - rebuilt.total_weight()).abs() < 1e-9 * scale,
        "weight {} vs rebuild {}",
        dynamic_weight,
        rebuilt.total_weight()
    );
    assert!(
        (dynamic_lmax - rebuilt.lmax()).abs() < 1e-9 * scale,
        "lmax {} vs rebuild {}",
        dynamic_lmax,
        rebuilt.lmax()
    );
    assert!(instance.mst().max_degree() <= MAX_MST_DEGREE);
    assert_eq!(instance.lmax(), dynamic_lmax);

    // Scheme vs a full re-orientation (exact, including antenna parameters).
    if session.is_incremental() {
        let full = Solver::on(&instance)
            .with_budget(budget)
            .run()
            .unwrap()
            .scheme;
        assert_eq!(scheme, full, "incremental scheme diverged from full solve");
    }

    // Digraph vs both static constructions (ordered-structural equality).
    let dense = VerificationEngine::new()
        .with_strategy(DigraphStrategy::Dense)
        .induced_digraph(instance.points(), &scheme);
    assert_eq!(digraph, dense, "digraph diverged from dense reference");
    let kd = VerificationEngine::new()
        .with_strategy(DigraphStrategy::KdTree)
        .induced_digraph(instance.points(), &scheme);
    assert_eq!(digraph, kd, "digraph diverged from kd-tree engine");

    // Verdict vs a fresh from-scratch verification.
    let fresh = verify_with_budget(&instance, &scheme, Some(budget));
    assert_eq!(report, fresh, "report diverged from fresh verification");
}

fn replay(points: &[Point], budget: AntennaBudget, steps: &[Step]) {
    let inst = DynamicInstance::new(points).unwrap();
    let mut session = DynamicSolverSession::new(inst, budget).unwrap();
    assert_oracle(&mut session);
    for step in steps {
        let Some(edit) = to_edit(&session, step) else {
            continue;
        };
        session.apply(edit).unwrap();
        assert_oracle(&mut session);
    }
}

/// A deterministic mixed script exercising all three edit kinds.
fn mixed_script(seed: u64) -> Vec<Step> {
    (0..12)
        .map(|i| {
            let x = ((seed.wrapping_mul(31).wrapping_add(i * 7)) % 100) as f64 / 7.0;
            let y = ((seed.wrapping_mul(17).wrapping_add(i * 13)) % 100) as f64 / 9.0;
            match i % 3 {
                0 => Step::Insert(x, y),
                1 => Step::Remove(seed.wrapping_add(i)),
                _ => Step::Move(seed.wrapping_add(i), x, y),
            }
        })
        .collect()
}

#[test]
fn mixed_scripts_over_stochastic_and_extremal_workloads() {
    let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
    for workload in standard_workloads().into_iter().chain(extremal_workloads()) {
        // Cap the deployment size to keep the O(n²) dense oracle affordable
        // across the per-step sweep.
        if workload.size() > 120 {
            continue;
        }
        let points = workload.generate(5);
        replay(&points, budget, &mixed_script(workload.size() as u64));
    }
}

#[test]
fn fallback_budget_scripts_stay_exact() {
    // (2, π) re-solves in full per edit (Theorem 3); the digraph/report
    // oracles still must hold.
    let points = PointSetGenerator::UniformSquare { n: 30, side: 8.0 }.generate(2);
    replay(
        &points,
        AntennaBudget::new(2, std::f64::consts::PI),
        &mixed_script(3),
    );
}

#[test]
fn drain_to_one_sensor_script() {
    let points = PointSetGenerator::UniformSquare { n: 12, side: 5.0 }.generate(9);
    let steps: Vec<Step> = (0..11).map(|i| Step::Remove(i * 3 + 1)).collect();
    let budget = AntennaBudget::new(1, theorem2_spread_threshold(1));
    let inst = DynamicInstance::new(&points).unwrap();
    let mut session = DynamicSolverSession::new(inst, budget).unwrap();
    for step in &steps {
        if let Some(edit) = to_edit(&session, step) {
            session.apply(edit).unwrap();
            assert_oracle(&mut session);
        }
    }
    assert_eq!(session.instance().len(), 1);
    assert!(session.report().is_strongly_connected);
    assert_eq!(session.instance().lmax(), 0.0);
}

#[test]
fn duplicate_point_scripts_stay_exact() {
    // Exact duplicates at every step: zero-length MST edges, coincident
    // sensors covering each other through the apex rule.
    let points = vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(1.0, 0.0),
    ];
    let steps = vec![
        Step::Insert(0.0, 0.0),
        Step::Insert(1.0, 0.0),
        Step::Move(0, 1.0, 0.0),
        Step::Remove(2),
        Step::Move(1, 0.0, 0.0),
        Step::Insert(0.5, 0.5),
        Step::Remove(0),
    ];
    replay(
        &points,
        AntennaBudget::new(3, theorem2_spread_threshold(3)),
        &steps,
    );
}

/// Coalescing equivalence: resolve a script against a one-at-a-time serial
/// session (recording the concrete edits it applied), then replay the same
/// edit list on a second session in coalesced batches of `batch` edits.
/// The batched final state must be **exactly** the serial final state —
/// same scheme, digraph, report, and MST summary bits.
fn assert_coalescing_equivalent(
    points: &[Point],
    budget: AntennaBudget,
    steps: &[Step],
    batch: usize,
) {
    let mut serial =
        DynamicSolverSession::new(DynamicInstance::new(points).unwrap(), budget).unwrap();
    let mut resolved = Vec::new();
    for step in steps {
        let Some(edit) = to_edit(&serial, step) else {
            continue;
        };
        serial.apply(edit).unwrap();
        resolved.push(edit);
    }

    let mut batched =
        DynamicSolverSession::new(DynamicInstance::new(points).unwrap(), budget).unwrap();
    for chunk in resolved.chunks(batch.max(1)) {
        batched.apply_coalesced(chunk).unwrap();
    }

    assert_eq!(
        batched.instance().ids(),
        serial.instance().ids(),
        "live ids diverged at batch={batch}"
    );
    assert_eq!(
        batched.instance().lmax().to_bits(),
        serial.instance().lmax().to_bits(),
        "lmax diverged at batch={batch}"
    );
    assert_eq!(
        batched.instance().mst_total_weight().to_bits(),
        serial.instance().mst_total_weight().to_bits(),
        "MST weight diverged at batch={batch}"
    );
    assert_eq!(
        batched.scheme(),
        serial.scheme(),
        "scheme diverged at batch={batch}"
    );
    assert_eq!(
        batched.digraph(),
        serial.digraph(),
        "digraph diverged at batch={batch}"
    );
    assert_eq!(
        batched.report(),
        serial.report(),
        "report diverged at batch={batch}"
    );
    // And the batched state satisfies the full rebuild oracle on its own.
    assert_oracle(&mut batched);
}

#[test]
fn coalesced_batches_equal_serial_application() {
    let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
    for seed in 0..4u64 {
        let points = PointSetGenerator::UniformSquare { n: 20, side: 9.0 }.generate(seed);
        let steps = mixed_script(seed.wrapping_mul(11) + 5);
        for batch in [1, 2, 3, 5, usize::MAX] {
            assert_coalescing_equivalent(&points, budget, &steps, batch);
        }
    }
}

#[test]
fn coalesced_batches_equal_serial_under_fallback_budget() {
    // Theorem 3 regime: every repair is a full re-solve, but batching must
    // still land on the identical final state.
    let points = PointSetGenerator::UniformSquare { n: 16, side: 6.0 }.generate(3);
    let budget = AntennaBudget::new(2, std::f64::consts::PI);
    for batch in [2, 4, usize::MAX] {
        assert_coalescing_equivalent(&points, budget, &mixed_script(8), batch);
    }
}

proptest! {
    #[test]
    fn prop_coalesced_batches_match_serial(
        initial in proptest::collection::vec((0.0..20.0f64, 0.0..20.0f64), 2..20),
        script in proptest::collection::vec(
            (0u8..3, 0u64..1_000_000u64, 0.0..20.0f64, 0.0..20.0f64),
            1..12
        ),
        batch in 1usize..6,
        k in 1usize..=3,
    ) {
        let points: Vec<Point> = initial.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let steps: Vec<Step> = script
            .iter()
            .map(|&(op, pick, x, y)| match op {
                0 => Step::Insert(x, y),
                1 => Step::Remove(pick),
                _ => Step::Move(pick, x, y),
            })
            .collect();
        let budget = AntennaBudget::new(k, theorem2_spread_threshold(k));
        assert_coalescing_equivalent(&points, budget, &steps, batch);
    }

    #[test]
    fn prop_random_scripts_match_rebuild_oracle(
        initial in proptest::collection::vec((0.0..20.0f64, 0.0..20.0f64), 2..25),
        script in proptest::collection::vec(
            (0u8..3, 0u64..1_000_000u64, 0.0..20.0f64, 0.0..20.0f64),
            1..15
        ),
        k in 1usize..=5,
    ) {
        let points: Vec<Point> = initial.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let steps: Vec<Step> = script
            .iter()
            .map(|&(op, pick, x, y)| match op {
                0 => Step::Insert(x, y),
                1 => Step::Remove(pick),
                _ => Step::Move(pick, x, y),
            })
            .collect();
        let budget = AntennaBudget::new(k, theorem2_spread_threshold(k));
        replay(&points, budget, &steps);
    }

    #[test]
    fn prop_snapped_grid_scripts_match_rebuild_oracle(
        initial in proptest::collection::vec((0usize..8, 0usize..8), 2..20),
        script in proptest::collection::vec(
            (0u8..3, 0u64..1_000_000u64, 0usize..8, 0usize..8),
            1..12
        ),
    ) {
        // Integer-snapped geometry: exact duplicates, shared rows/columns and
        // tied candidate edges in every repair — the worst case for the
        // incremental tie-breaking.
        let points: Vec<Point> = initial
            .iter()
            .map(|&(x, y)| Point::new(x as f64, y as f64))
            .collect();
        let steps: Vec<Step> = script
            .iter()
            .map(|&(op, pick, x, y)| match op {
                0 => Step::Insert(x as f64, y as f64),
                1 => Step::Remove(pick),
                _ => Step::Move(pick, x as f64, y as f64),
            })
            .collect();
        let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
        replay(&points, budget, &steps);
    }
}

/// The durability hook's contract: `DynamicSolverSession::replay(budget,
/// base, next_id, tail)` — base = a sparse live set at some cut point,
/// tail = the edits logged after it — must land bit-equal to the session
/// that lived through the whole history one edit at a time, for every cut
/// point.  This is what lets crash recovery rebuild a tenant from
/// (snapshot, WAL tail) without replaying its batch boundaries.
fn assert_replay_equivalent(points: &[Point], budget: AntennaBudget, steps: &[Step]) {
    let mut lived =
        DynamicSolverSession::new(DynamicInstance::new(points).unwrap(), budget).unwrap();
    let mut resolved = Vec::new();
    // Snapshot the (base, next_id) image at every prefix of the resolved
    // edit history, cut 0 being the seed deployment itself.
    let image = |s: &DynamicSolverSession| -> (Vec<(usize, Point)>, usize) {
        let base = s
            .instance()
            .ids()
            .into_iter()
            .map(|id| (id, s.instance().point(id).unwrap()))
            .collect();
        (base, s.instance().next_id())
    };
    let mut cuts = vec![image(&lived)];
    for step in steps {
        let Some(edit) = to_edit(&lived, step) else {
            continue;
        };
        lived.apply(edit).unwrap();
        resolved.push(edit);
        cuts.push(image(&lived));
    }

    for (cut, (base, next_id)) in cuts.iter().enumerate() {
        let mut recovered =
            DynamicSolverSession::replay(budget, base, *next_id, &resolved[cut..]).unwrap();
        assert_eq!(
            recovered.instance().ids(),
            lived.instance().ids(),
            "live ids diverged at cut={cut}"
        );
        assert_eq!(
            recovered.instance().next_id(),
            lived.instance().next_id(),
            "id horizon diverged at cut={cut}"
        );
        for id in lived.instance().ids() {
            let a = recovered.instance().point(id).unwrap();
            let b = lived.instance().point(id).unwrap();
            assert_eq!(a.x.to_bits(), b.x.to_bits(), "x bits at cut={cut} id={id}");
            assert_eq!(a.y.to_bits(), b.y.to_bits(), "y bits at cut={cut} id={id}");
        }
        assert_eq!(
            recovered.instance().lmax().to_bits(),
            lived.instance().lmax().to_bits(),
            "lmax diverged at cut={cut}"
        );
        assert_eq!(
            recovered.instance().mst_total_weight().to_bits(),
            lived.instance().mst_total_weight().to_bits(),
            "MST weight diverged at cut={cut}"
        );
        assert_eq!(recovered.algorithm(), lived.algorithm(), "cut={cut}");
        assert_eq!(recovered.scheme(), lived.scheme(), "scheme at cut={cut}");
        assert_eq!(recovered.digraph(), lived.digraph(), "digraph at cut={cut}");
        assert_eq!(recovered.report(), lived.report(), "report at cut={cut}");
    }
}

#[test]
fn replay_from_every_cut_matches_the_lived_session() {
    let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
    for seed in 0..3u64 {
        let points = PointSetGenerator::UniformSquare { n: 18, side: 8.0 }.generate(seed);
        assert_replay_equivalent(&points, budget, &mixed_script(seed.wrapping_mul(13) + 2));
    }
}

#[test]
fn replay_matches_under_fallback_budget() {
    // Theorem 3 regime: replay's single coalesced batch triggers a full
    // re-solve, which must still agree with the lived per-edit re-solves.
    let points = PointSetGenerator::UniformSquare { n: 14, side: 6.0 }.generate(7);
    let budget = AntennaBudget::new(2, std::f64::consts::PI);
    assert_replay_equivalent(&points, budget, &mixed_script(4));
}

#[test]
fn replay_handles_sparse_ids_and_empty_tails() {
    // Drain to a sparse live set ({1, 3} with next_id 6), then recover
    // from the base image alone.
    let points: Vec<Point> = (0..4).map(|i| Point::new(i as f64 * 2.0, 0.0)).collect();
    let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
    let mut lived =
        DynamicSolverSession::new(DynamicInstance::new(&points).unwrap(), budget).unwrap();
    lived.apply(Edit::Insert(Point::new(1.0, 3.0))).unwrap(); // id 4
    lived.apply(Edit::Insert(Point::new(5.0, 3.0))).unwrap(); // id 5
    for dead in [0usize, 2, 4, 5] {
        lived.apply(Edit::Remove(dead)).unwrap();
    }
    let base: Vec<(usize, Point)> = lived
        .instance()
        .ids()
        .into_iter()
        .map(|id| (id, lived.instance().point(id).unwrap()))
        .collect();
    assert_eq!(base.iter().map(|&(id, _)| id).collect::<Vec<_>>(), [1, 3]);
    let mut recovered =
        DynamicSolverSession::replay(budget, &base, lived.instance().next_id(), &[]).unwrap();
    assert_eq!(recovered.instance().ids(), lived.instance().ids());
    assert_eq!(recovered.instance().next_id(), 6);
    assert_eq!(recovered.scheme(), lived.scheme());
    assert_eq!(recovered.digraph(), lived.digraph());
    assert_eq!(recovered.report(), lived.report());

    // Ids keep flowing from the horizon after recovery.
    let mut recovered = recovered;
    let outcome = recovered
        .apply_coalesced(&[Edit::Insert(Point::new(9.0, 9.0))])
        .unwrap();
    assert_eq!(outcome.inserted_ids, [6]);
}

#[test]
fn replay_rejects_malformed_bases_and_inconsistent_tails() {
    let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
    let p = Point::new(0.0, 0.0);
    // Id at/above the horizon.
    assert!(DynamicSolverSession::replay(budget, &[(3, p)], 3, &[]).is_err());
    // Non-ascending ids.
    assert!(DynamicSolverSession::replay(budget, &[(2, p), (1, p)], 4, &[]).is_err());
    // A tail referencing a dead id fails like any rejected batch.
    assert!(DynamicSolverSession::replay(budget, &[(0, p)], 2, &[Edit::Remove(1)]).is_err());
    // The empty tenant (no sensors yet) replays fine.
    let empty = DynamicSolverSession::replay(budget, &[], 0, &[]).unwrap();
    assert_eq!(empty.instance().len(), 0);
}
