//! Process-level crash recovery: a real `orientd` process (the shipped
//! binary, spawned with `--data-dir`) is killed with SIGKILL mid-history and
//! restarted, repeatedly; the surviving wire answers must match a process
//! that never crashed.
//!
//! `--sync always` makes the drill deterministic: an edit is fsynced before
//! its `OK` goes out, so the acknowledged history is exactly the recoverable
//! history and wire-level equality against an uncrashed replay is an honest
//! oracle.  A second drill kills the server under an *unacknowledged*
//! pipelined burst, where the log legitimately holds some prefix of the
//! burst — there the pin is salvage-without-panic plus a live, verifiable
//! deployment.

use antennae::core::bounds::theorem2_spread_threshold;
use antennae::prelude::*;
use antennae::serve::protocol::payload_field;
use antennae::serve::Service;
use antennae::sim::events::{churn_trace, ChurnMix};
use antennae::sim::serve_script::{churn_protocol_script, restart_segments};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "antennae-durable-recovery-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns the real `orientd` binary durable on `root`, waits for its
/// `PORT <n>` banner, and returns the child plus the bound address.
fn spawn_orientd(root: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_orientd"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--print-port",
            "--data-dir",
            root.to_str().expect("utf-8 temp path"),
            "--sync",
            "always",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn orientd");
    let mut banner = String::new();
    BufReader::new(child.stdout.take().expect("piped stdout"))
        .read_line(&mut banner)
        .expect("read port banner");
    let port: u16 = banner
        .trim()
        .strip_prefix("PORT ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .parse()
        .expect("port number");
    (child, SocketAddr::from(([127, 0, 0, 1], port)))
}

/// One request, one response line, over a dedicated throwaway connection.
fn request(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("send");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("receive");
    response.trim_end().to_string()
}

/// Blanks the `revision=` field: restarts reset the per-process repair
/// counter, which is presentation state, not deployment state.
fn mask_revision(line: &str) -> String {
    line.split(' ')
        .map(|tok| {
            if tok.starts_with("revision=") {
                "revision=_"
            } else {
                tok
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn sigkill_between_bursts_matches_an_uncrashed_replay() {
    let root = tmp_root("kill9");
    let k = 2;
    let phi = theorem2_spread_threshold(k);
    let seeds = PointSetGenerator::UniformSquare { n: 14, side: 8.0 }.generate(101);
    let trace = churn_trace(ChurnMix::balanced(3.0), 80, 8.0, 0.6, 909);
    let script = churn_protocol_script("kill9", k, phi, &seeds, &trace, 5);
    let segments = restart_segments(&script, 3);

    // The crashy run: serve each segment with a fresh process, SIGKILL it
    // (no SHUTDOWN, no drain) after the segment's responses are in hand.
    let mut crashy_query = String::new();
    let mut crashy_verify = String::new();
    for (i, segment) in segments.iter().enumerate() {
        let (mut child, addr) = spawn_orientd(&root);
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
        for line in segment {
            stream
                .write_all(format!("{line}\n").as_bytes())
                .expect("send");
            let mut response = String::new();
            reader.read_line(&mut response).expect("receive");
            assert!(
                response.starts_with("OK "),
                "segment {i}: {line:?} -> {response:?}"
            );
        }
        // Close the segment connection first: the pool may be a single
        // worker (one-core container), and `request` opens a fresh one.
        drop(reader);
        drop(stream);
        if i + 1 == segments.len() {
            crashy_query = request(addr, "QUERY kill9");
            crashy_verify = request(addr, "VERIFY kill9");
        }
        child.kill().expect("SIGKILL");
        let _ = child.wait();
    }

    // The uncrashed oracle: one in-process service replays the same lines
    // (the segments partition the script, so the histories are identical).
    let oracle = Service::new();
    for line in &script.lines {
        assert!(oracle.handle_line(line).starts_with("OK "), "{line:?}");
    }
    let oracle_query = oracle.handle_line("QUERY kill9");
    let oracle_verify = oracle.handle_line("VERIFY kill9");

    assert_eq!(
        mask_revision(&crashy_query),
        mask_revision(&oracle_query),
        "QUERY answers diverged after two SIGKILLs"
    );
    assert_eq!(
        mask_revision(&crashy_verify),
        mask_revision(&oracle_verify),
        "VERIFY answers diverged after two SIGKILLs"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sigkill_mid_unacknowledged_burst_salvages_and_stays_live() {
    let root = tmp_root("midburst");
    let phi = theorem2_spread_threshold(2);
    let n_seeds = 6;
    let burst_len = 40;
    {
        let (mut child, addr) = spawn_orientd(&root);
        let mut create = format!("CREATE m 2 {phi}");
        for i in 0..n_seeds {
            create.push_str(&format!(" {} {}", i, (i * i) % 5));
        }
        assert!(request(addr, &create).starts_with("OK created"));
        // Fire a pipelined burst and kill the process without ever reading
        // a response: the log may hold any prefix of the burst.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut burst = String::new();
        for i in 0..burst_len {
            burst.push_str(&format!("EDIT m INSERT {}.25 {}.5\n", i, i % 7));
        }
        stream.write_all(burst.as_bytes()).expect("send burst");
        stream.flush().expect("flush burst");
        std::thread::sleep(std::time::Duration::from_millis(120));
        child.kill().expect("SIGKILL");
        let _ = child.wait();
    }

    let (mut child, addr) = spawn_orientd(&root);
    let query = request(addr, "QUERY m");
    assert!(query.starts_with("OK query m"), "{query}");
    let payload = query.strip_prefix("OK ").unwrap();
    let n: usize = payload_field(payload, "n").unwrap().parse().unwrap();
    assert!(
        (n_seeds..=n_seeds + burst_len).contains(&n),
        "salvaged n={n} outside [{n_seeds}, {}]",
        n_seeds + burst_len
    );
    // Whatever prefix survived, the deployment is consistent and live.
    let verify = request(addr, "VERIFY m");
    assert!(verify.contains("valid=true"), "{verify}");
    assert!(request(addr, "EDIT m INSERT 99.5 3.25").starts_with("OK edit m"));
    let orient = request(addr, "ORIENT m");
    assert!(orient.contains("valid=true"), "{orient}");
    let shutdown = request(addr, "SHUTDOWN");
    assert!(shutdown.starts_with("OK"), "SHUTDOWN answered {shutdown:?}");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&root);
}
