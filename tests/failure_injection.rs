//! Failure-injection tests: deliberately corrupted orientation schemes must
//! be rejected by the independent verifier, and the verifier's measurements
//! must expose exactly what was broken.

use antennae::core::antenna::{Antenna, SensorAssignment};
use antennae::core::verify::{verify_with_budget, Violation};
use antennae::geometry::Angle;
use antennae::prelude::*;
use std::f64::consts::PI;

fn instance_and_scheme() -> (Instance, OrientationScheme) {
    let generator = PointSetGenerator::UniformSquare { n: 40, side: 10.0 };
    let instance = Instance::new(generator.generate(17)).unwrap();
    let scheme = Solver::on(&instance)
        .budget(2, PI)
        .run()
        .unwrap()
        .scheme;
    (instance, scheme)
}

#[test]
fn valid_scheme_passes_then_each_corruption_is_caught() {
    let (instance, scheme) = instance_and_scheme();
    let budget = AntennaBudget::new(2, PI);
    assert!(verify_with_budget(&instance, &scheme, Some(budget)).is_valid());

    // Corruption 1: silence one sensor entirely.
    let mut silenced = scheme.clone();
    silenced.assignments[3] = SensorAssignment::empty();
    let report = verify_with_budget(&instance, &silenced, Some(budget));
    assert!(!report.is_strongly_connected);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::NotStronglyConnected { .. })));

    // Corruption 2: rotate one sensor's antennae away from their targets.
    let mut rotated = scheme.clone();
    for antenna in &mut rotated.assignments[5].antennas {
        antenna.start = antenna.start.rotate(PI * 0.9);
    }
    let report = verify_with_budget(&instance, &rotated, Some(budget));
    // Rotating by ~162° may or may not disconnect the graph depending on the
    // local geometry, but the verifier must at least keep the measurement
    // consistent; when it is disconnected the violation must be reported.
    assert_eq!(
        report.is_strongly_connected,
        !report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NotStronglyConnected { .. }))
    );

    // Corruption 3: shrink every radius below lmax — connectivity must break
    // (lmax is a lower bound on the necessary range).
    let mut shrunk = scheme.clone();
    let too_small = instance.lmax() * 0.49;
    for assignment in &mut shrunk.assignments {
        for antenna in &mut assignment.antennas {
            antenna.radius = antenna.radius.min(too_small);
        }
    }
    let report = verify_with_budget(&instance, &shrunk, Some(budget));
    assert!(!report.is_strongly_connected);

    // Corruption 4: exceed the antenna-count budget.
    let mut extra = scheme.clone();
    extra.assignments[0]
        .antennas
        .push(Antenna::new(Angle::ZERO, 0.0, 1.0));
    extra.assignments[0]
        .antennas
        .push(Antenna::new(Angle::HALF, 0.0, 1.0));
    let report = verify_with_budget(&instance, &extra, Some(budget));
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::TooManyAntennas { sensor: 0, .. })));

    // Corruption 5: exceed the spread budget.
    let mut wide = scheme;
    wide.assignments[1].antennas = vec![Antenna::new(Angle::ZERO, 1.5 * PI, 2.0)];
    let report = verify_with_budget(&instance, &wide, Some(budget));
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::SpreadExceeded { sensor: 1, .. })));
}

#[test]
fn truncated_scheme_is_reported_as_missing_assignments() {
    let (instance, scheme) = instance_and_scheme();
    let mut truncated = scheme;
    truncated.assignments.truncate(instance.len() - 5);
    let report = verify_with_budget(&instance, &truncated, None);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::MissingAssignments { .. })));
}

#[test]
fn radius_measurement_reflects_injected_inflation() {
    let (instance, mut scheme) = instance_and_scheme();
    let before = verify(&instance, &scheme).max_radius_over_lmax;
    // Inflate one antenna's radius: connectivity is unaffected but the
    // measured maximum radius must grow accordingly.
    scheme.assignments[2].antennas[0].radius = instance.lmax() * 10.0;
    let after = verify(&instance, &scheme);
    assert!(after.is_strongly_connected);
    assert!(after.max_radius_over_lmax >= 10.0 - 1e-9);
    assert!(after.max_radius_over_lmax > before);
}
