//! Failure-injection tests: deliberately corrupted orientation schemes must
//! be rejected by the independent verifier, and the verifier's measurements
//! must expose exactly what was broken.

use antennae::core::antenna::{Antenna, SensorAssignment};
use antennae::core::verify::{verify_with_budget, Violation};
use antennae::geometry::Angle;
use antennae::prelude::*;
use std::f64::consts::PI;

/// Verifies `scheme` through the dense oracle AND the kd-tree fast path,
/// asserts the two reports are bit-identical (same measurements, same
/// `Violation` variants in the same order), and returns the shared report.
fn verify_both_paths(
    instance: &Instance,
    scheme: &OrientationScheme,
    budget: Option<AntennaBudget>,
) -> VerificationReport {
    let dense = VerificationEngine::new()
        .with_strategy(DigraphStrategy::Dense)
        .verify_with_budget(instance, scheme, budget);
    let fast = VerificationEngine::new()
        .with_strategy(DigraphStrategy::KdTree)
        .verify_with_budget(instance, scheme, budget);
    assert_eq!(
        dense, fast,
        "fast and dense verifiers disagree on an injected failure"
    );
    dense
}

fn instance_and_scheme() -> (Instance, OrientationScheme) {
    let generator = PointSetGenerator::UniformSquare { n: 40, side: 10.0 };
    let instance = Instance::new(generator.generate(17)).unwrap();
    let scheme = Solver::on(&instance).budget(2, PI).run().unwrap().scheme;
    (instance, scheme)
}

#[test]
fn valid_scheme_passes_then_each_corruption_is_caught() {
    let (instance, scheme) = instance_and_scheme();
    let budget = AntennaBudget::new(2, PI);
    assert!(verify_with_budget(&instance, &scheme, Some(budget)).is_valid());

    // Corruption 1: silence one sensor entirely.
    let mut silenced = scheme.clone();
    silenced.assignments[3] = SensorAssignment::empty();
    let report = verify_with_budget(&instance, &silenced, Some(budget));
    assert!(!report.is_strongly_connected);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::NotStronglyConnected { .. })));

    // Corruption 2: rotate one sensor's antennae away from their targets.
    let mut rotated = scheme.clone();
    for antenna in &mut rotated.assignments[5].antennas {
        antenna.start = antenna.start.rotate(PI * 0.9);
    }
    let report = verify_with_budget(&instance, &rotated, Some(budget));
    // Rotating by ~162° may or may not disconnect the graph depending on the
    // local geometry, but the verifier must at least keep the measurement
    // consistent; when it is disconnected the violation must be reported.
    assert_eq!(
        report.is_strongly_connected,
        !report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NotStronglyConnected { .. }))
    );

    // Corruption 3: shrink every radius below lmax — connectivity must break
    // (lmax is a lower bound on the necessary range).
    let mut shrunk = scheme.clone();
    let too_small = instance.lmax() * 0.49;
    for assignment in &mut shrunk.assignments {
        for antenna in &mut assignment.antennas {
            antenna.radius = antenna.radius.min(too_small);
        }
    }
    let report = verify_with_budget(&instance, &shrunk, Some(budget));
    assert!(!report.is_strongly_connected);

    // Corruption 4: exceed the antenna-count budget.
    let mut extra = scheme.clone();
    extra.assignments[0]
        .antennas
        .push(Antenna::new(Angle::ZERO, 0.0, 1.0));
    extra.assignments[0]
        .antennas
        .push(Antenna::new(Angle::HALF, 0.0, 1.0));
    let report = verify_with_budget(&instance, &extra, Some(budget));
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::TooManyAntennas { sensor: 0, .. })));

    // Corruption 5: exceed the spread budget.
    let mut wide = scheme;
    wide.assignments[1].antennas = vec![Antenna::new(Angle::ZERO, 1.5 * PI, 2.0)];
    let report = verify_with_budget(&instance, &wide, Some(budget));
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::SpreadExceeded { sensor: 1, .. })));
}

#[test]
fn truncated_scheme_is_reported_as_missing_assignments() {
    let (instance, scheme) = instance_and_scheme();
    let mut truncated = scheme;
    truncated.assignments.truncate(instance.len() - 5);
    let report = verify_with_budget(&instance, &truncated, None);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::MissingAssignments { .. })));
}

#[test]
fn shrinking_one_radius_below_lmax_is_caught_identically_by_both_paths() {
    // The MST edge that realises lmax has a unique endpoint pair; shrinking
    // every antenna of ONE sensor below lmax is only fatal when that sensor
    // carried a critical long link, so scan all sensors and require (a) the
    // two verifier paths always agree exactly and (b) at least one mutation
    // actually disconnects the graph.
    let (instance, scheme) = instance_and_scheme();
    let budget = AntennaBudget::new(2, PI);
    let too_small = instance.lmax() * 0.9;
    let mut any_disconnected = false;
    for sensor in 0..instance.len() {
        let mut mutated = scheme.clone();
        let had_long_antenna = mutated.assignments[sensor]
            .antennas
            .iter()
            .any(|a| a.radius > too_small);
        for antenna in &mut mutated.assignments[sensor].antennas {
            antenna.radius = antenna.radius.min(too_small);
        }
        if !had_long_antenna {
            continue; // mutation is a no-op for this sensor
        }
        let report = verify_both_paths(&instance, &mutated, Some(budget));
        if !report.is_strongly_connected {
            any_disconnected = true;
            assert!(report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::NotStronglyConnected { .. })));
        }
    }
    assert!(
        any_disconnected,
        "shrinking some sensor's antennae below lmax must break connectivity"
    );
}

#[test]
fn rotating_one_sector_off_its_neighbour_is_caught_identically_by_both_paths() {
    // Rotate each sensor's antennae by half a turn in sequence; both
    // verifier paths must agree on every mutant, and at least one rotation
    // must disconnect the network.
    let (instance, scheme) = instance_and_scheme();
    let budget = AntennaBudget::new(2, PI);
    let mut any_disconnected = false;
    for sensor in 0..instance.len() {
        let mut mutated = scheme.clone();
        for antenna in &mut mutated.assignments[sensor].antennas {
            antenna.start = antenna.start.rotate(PI);
        }
        let report = verify_both_paths(&instance, &mutated, Some(budget));
        any_disconnected |= !report.is_strongly_connected;
    }
    assert!(
        any_disconnected,
        "rotating some sensor's sectors off their targets must break connectivity"
    );
}

#[test]
fn dropping_one_assignment_is_caught_identically_by_both_paths() {
    // Removing one sensor's assignment entirely (truncation) must be
    // reported as MissingAssignments by both paths, with identical reports.
    let (instance, scheme) = instance_and_scheme();
    let mut truncated = scheme.clone();
    truncated.assignments.pop();
    let report = verify_both_paths(&instance, &truncated, Some(AntennaBudget::new(2, PI)));
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::MissingAssignments { expected, actual }
            if *expected == instance.len() && *actual == instance.len() - 1
    )));

    // Silencing (rather than removing) a sensor keeps the lengths equal but
    // must still break connectivity — again identically on both paths.
    let mut silenced = scheme;
    silenced.assignments[0] = SensorAssignment::empty();
    let report = verify_both_paths(&instance, &silenced, Some(AntennaBudget::new(2, PI)));
    assert!(!report.is_strongly_connected);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::NotStronglyConnected { .. })));
}

#[test]
fn budget_and_spread_injections_are_caught_identically_by_both_paths() {
    let (instance, scheme) = instance_and_scheme();
    let budget = AntennaBudget::new(2, PI);

    // Extra antennae on one sensor.
    let mut extra = scheme.clone();
    extra.assignments[4]
        .antennas
        .extend([Antenna::new(Angle::ZERO, 0.0, 1.0); 2]);
    let report = verify_both_paths(&instance, &extra, Some(budget));
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::TooManyAntennas { sensor: 4, .. })));

    // An over-wide sector on another.
    let mut wide = scheme;
    wide.assignments[6].antennas = vec![Antenna::new(Angle::ZERO, 1.5 * PI, 2.0)];
    let report = verify_both_paths(&instance, &wide, Some(budget));
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::SpreadExceeded { sensor: 6, .. })));
}

#[test]
fn radius_measurement_reflects_injected_inflation() {
    let (instance, mut scheme) = instance_and_scheme();
    let before = verify(&instance, &scheme).max_radius_over_lmax;
    // Inflate one antenna's radius: connectivity is unaffected but the
    // measured maximum radius must grow accordingly.
    scheme.assignments[2].antennas[0].radius = instance.lmax() * 10.0;
    let after = verify(&instance, &scheme);
    assert!(after.is_strongly_connected);
    assert!(after.max_radius_over_lmax >= 10.0 - 1e-9);
    assert!(after.max_radius_over_lmax > before);
}
