//! The chaos oracle: `orientd` under injected I/O faults, overload and
//! hostile clients must **degrade gracefully and lose nothing it
//! acknowledged**.
//!
//! Storage chaos drives a durable [`Service`] whose store writes through a
//! [`FaultVfs`] running a deterministic [`FaultScript`] (disk-full, fsync
//! failure, short writes, slow I/O at scheduled operation indices).  The
//! invariants, checked against a bare [`DynamicSolverSession`] oracle that
//! serially applies exactly the acknowledged edits:
//!
//! * an edit is acknowledged only if the log durably holds it — a fault on
//!   the append/sync path un-acknowledges the edit and flips the tenant to
//!   degraded-read-only (`ERR degraded` on mutations);
//! * degraded tenants keep serving `QUERY`/`VERIFY` from the last published
//!   snapshot (stale but self-consistent);
//! * after `RECOVER` (or a restart), the served state is bit-equal
//!   (`f64::to_bits` on geometry, exact equality on scheme/digraph/report)
//!   to a never-faulted session that applied the same acknowledged history.
//!
//! Network chaos drives the real TCP server: a bounded worker queue sheds
//! with `ERR overloaded` + a retry hint, and read deadlines evict
//! slow-loris connections.
//!
//! The seeded sweep runs the pinned `CHAOS_SEEDS` below; set the
//! `CHAOS_SEEDS` env var (comma-separated u64s) to explore other schedules.

use antennae::core::antenna::AntennaBudget;
use antennae::core::bounds::theorem2_spread_threshold;
use antennae::core::dynamic::{DynamicInstance, DynamicSolverSession, Edit};
use antennae::prelude::*;
use antennae::serve::protocol::payload_field;
use antennae::serve::{Server, ServerConfig, Service};
use antennae::store::{
    FaultKind, FaultScript, FaultSpec, FaultVfs, OpClass, Store, StoreConfig, SyncPolicy,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// The pinned fault schedules `scripts/verify.sh` replays.
const CHAOS_SEEDS: &[u64] = &[0x00C0_FFEE, 0x0BAD_5EED, 0x5CA1_AB1E];

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("antennae-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn budget(k: usize) -> AntennaBudget {
    AntennaBudget::new(k, theorem2_spread_threshold(k))
}

/// Opens a durable service whose write path runs the given fault script.
fn open_with_faults(
    root: &PathBuf,
    config: StoreConfig,
    script: FaultScript,
) -> (Service, FaultVfs) {
    let vfs = FaultVfs::new(script);
    let store = Store::open_with_vfs(root, config, Arc::new(vfs.clone())).expect("open store");
    let (svc, _) = Service::open_durable(store).expect("recover store");
    (svc, vfs)
}

/// Reopens the data directory on the real filesystem (restart after chaos).
fn reopen_real(root: &PathBuf, config: StoreConfig) -> (Service, antennae::serve::RecoveryReport) {
    Service::open_durable(Store::open(root, config).expect("reopen store")).expect("recover")
}

/// Issues `RECOVER` until the tenant reports healthy.  Each attempt may hit
/// further scheduled faults; the script is finite, so this terminates.
fn recover_until_ok(svc: &Service, name: &str) {
    for _ in 0..64 {
        let response = svc.handle_line(&format!("RECOVER {name}"));
        if response.starts_with("OK ") {
            return;
        }
        assert!(
            response.starts_with("ERR degraded"),
            "RECOVER answered {response:?}"
        );
    }
    panic!("tenant {name} did not recover within 64 attempts");
}

/// Sends a mutation, riding out degraded phases: on `ERR degraded` the
/// tenant is recovered and the line retried.  Returns the OK response.
/// Any other error is a test failure — the chaos layer must map every
/// injected fault onto `degraded`.
fn mutate_until_acked(svc: &Service, name: &str, line: &str) -> String {
    for _ in 0..64 {
        let response = svc.handle_line(line);
        if response.starts_with("OK ") {
            return response;
        }
        assert!(
            response.starts_with("ERR degraded"),
            "{line:?} answered {response:?}"
        );
        recover_until_ok(svc, name);
    }
    panic!("{line:?} kept failing after 64 recoveries");
}

/// The bit-equality bar shared with the durability oracle.
fn assert_bit_equal(service: &Service, name: &str, oracle: &mut DynamicSolverSession) {
    let tenant = service.registry().get(name).expect("tenant");
    tenant.with_session_mut(|served| {
        assert_eq!(served.instance().ids(), oracle.instance().ids(), "live ids");
        assert_eq!(
            served.instance().next_id(),
            oracle.instance().next_id(),
            "id horizon"
        );
        for id in oracle.instance().ids() {
            let a = served.instance().point(id).expect("served point");
            let b = oracle.instance().point(id).expect("oracle point");
            assert_eq!(a.x.to_bits(), b.x.to_bits(), "x of {id}");
            assert_eq!(a.y.to_bits(), b.y.to_bits(), "y of {id}");
        }
        assert_eq!(
            served.instance().lmax().to_bits(),
            oracle.instance().lmax().to_bits(),
            "lmax bits"
        );
        assert_eq!(
            served.instance().mst_total_weight().to_bits(),
            oracle.instance().mst_total_weight().to_bits(),
            "MST weight bits"
        );
        assert_eq!(served.algorithm(), oracle.algorithm(), "algorithm");
        assert_eq!(served.scheme(), oracle.scheme(), "scheme");
        assert_eq!(served.digraph(), oracle.digraph(), "digraph");
        assert_eq!(served.report(), oracle.report(), "report");
    });
}

/// Serially applies the acknowledged history onto a bare, never-faulted
/// session.
fn oracle_of(seeds: &[Point], k: usize, acked: &[Edit]) -> DynamicSolverSession {
    let mut oracle =
        DynamicSolverSession::new(DynamicInstance::new(seeds).expect("instance"), budget(k))
            .expect("session");
    for edit in acked {
        oracle.apply(*edit).expect("oracle edit");
    }
    oracle
}

fn create_line(name: &str, k: usize, seeds: &[Point]) -> String {
    let phi = theorem2_spread_threshold(k);
    let mut line = format!("CREATE {name} {k} {phi}");
    for p in seeds {
        line.push_str(&format!(" {} {}", p.x, p.y));
    }
    line
}

fn seed_points(seed: u64) -> Vec<Point> {
    PointSetGenerator::UniformSquare { n: 16, side: 8.0 }.generate(seed)
}

// ---------------------------------------------------------------------------
// Directed storage-fault scenarios
// ---------------------------------------------------------------------------

/// Drives inserts until one trips the scheduled fault.  Returns the edits
/// that were acknowledged.
fn insert_until_degraded(svc: &Service, name: &str, n: usize) -> (Vec<Edit>, usize) {
    let mut acked = Vec::new();
    let mut failed = usize::MAX;
    for i in 0..n {
        let (x, y) = (9.0 + i as f64, 0.5 * i as f64);
        let response = svc.handle_line(&format!("EDIT {name} INSERT {x} {y}"));
        if response.starts_with("OK ") {
            acked.push(Edit::Insert(Point::new(x, y)));
        } else {
            assert!(
                response.starts_with("ERR degraded"),
                "expected degraded, got {response:?}"
            );
            failed = i;
            break;
        }
    }
    assert_ne!(failed, usize::MAX, "the scheduled fault never fired");
    (acked, failed)
}

#[test]
fn disk_full_degrades_reads_survive_recover_restores() {
    let root = tmp_root("diskfull");
    let seeds = seed_points(11);
    let config = StoreConfig {
        sync: SyncPolicy::Always,
        ..StoreConfig::default()
    };
    // Write index 0 is the CREATE record; index 3 is the third edit append.
    let script = FaultScript::new(vec![FaultSpec {
        class: OpClass::Write,
        at: 3,
        kind: FaultKind::DiskFull,
    }]);
    let (svc, vfs) = open_with_faults(&root, config, script);
    assert!(svc
        .handle_line(&create_line("d", 2, &seeds))
        .starts_with("OK created"));

    let (mut acked, _) = insert_until_degraded(&svc, "d", 6);
    assert_eq!(acked.len(), 2, "edits 1-2 acked, edit 3 hit the fault");
    assert_eq!(vfs.faults_fired(), 1);

    // Degraded-read-only: mutations fail fast with the structured code…
    let denied = svc.handle_line("EDIT d MOVE 0 1.0 1.0");
    assert!(denied.starts_with("ERR degraded"), "{denied}");
    let denied = svc.handle_line("ORIENT d");
    assert!(denied.starts_with("ERR degraded"), "{denied}");
    // …while reads keep serving the last published snapshot.
    let q = svc.handle_line("QUERY d");
    assert!(q.starts_with("OK query d n=16"), "{q}");
    let v = svc.handle_line("VERIFY d");
    assert!(v.contains("degraded=true stale=true"), "{v}");
    // And the operator can see it.
    let stats = svc.handle_line("STATS");
    let payload = stats.strip_prefix("OK ").unwrap().to_string();
    assert_eq!(payload_field(&payload, "degraded_tenants"), Some("1"));
    let stats = svc.handle_line("STATS d");
    let payload = stats.strip_prefix("OK ").unwrap().to_string();
    assert_eq!(payload_field(&payload, "degraded"), Some("true"));

    // RECOVER re-attempts the I/O (the one-shot fault is spent) and
    // restores full service.
    assert!(svc.handle_line("RECOVER d").starts_with("OK recover d"));
    let stats = svc.handle_line("STATS d");
    let payload = stats.strip_prefix("OK ").unwrap().to_string();
    assert_eq!(payload_field(&payload, "degraded"), Some("false"));
    assert!(svc
        .handle_line("EDIT d INSERT 3.25 3.75")
        .starts_with("OK edit d"));
    acked.push(Edit::Insert(Point::new(3.25, 3.75)));
    assert!(svc.handle_line("ORIENT d").starts_with("OK orient d"));

    // Bit-equal to the never-faulted application of the acked history —
    // live, and again after a restart on the real filesystem.
    let mut oracle = oracle_of(&seeds, 2, &acked);
    assert_bit_equal(&svc, "d", &mut oracle);
    drop(svc);
    let (svc, report) = reopen_real(&root, config);
    assert_eq!(report.recovered, ["d"]);
    assert_bit_equal(&svc, "d", &mut oracle);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fsync_failure_unacknowledges_exactly_the_failing_edit() {
    let root = tmp_root("fsync");
    let seeds = seed_points(13);
    let config = StoreConfig {
        sync: SyncPolicy::Always,
        ..StoreConfig::default()
    };
    // Calibrate the sync-op index of the second edit with a fault-free
    // probe run, so the test does not hard-code how many fsyncs CREATE
    // issues.
    let probe_root = tmp_root("fsync-probe");
    let (probe, probe_vfs) = open_with_faults(&probe_root, config, FaultScript::new(vec![]));
    assert!(probe
        .handle_line(&create_line("f", 2, &seeds))
        .starts_with("OK created"));
    let (_, syncs_after_create, _) = probe_vfs.op_counts();
    assert!(probe.handle_line("EDIT f INSERT 9.0 0.0").starts_with("OK"));
    let (_, syncs_after_edit, _) = probe_vfs.op_counts();
    let syncs_per_edit = syncs_after_edit - syncs_after_create;
    assert!(
        syncs_per_edit >= 1,
        "SyncPolicy::Always must fsync each edit"
    );
    drop(probe);
    let _ = std::fs::remove_dir_all(&probe_root);

    // The write lands but the second edit's fsync reports failure: the
    // edit must be un-acknowledged all the same.
    let script = FaultScript::new(vec![FaultSpec {
        class: OpClass::Sync,
        at: syncs_after_create + syncs_per_edit,
        kind: FaultKind::SyncFailure,
    }]);
    let (svc, vfs) = open_with_faults(&root, config, script);
    assert!(svc
        .handle_line(&create_line("f", 2, &seeds))
        .starts_with("OK created"));

    let (acked, _) = insert_until_degraded(&svc, "f", 6);
    assert_eq!(acked.len(), 1, "edit 1 acked, edit 2's fsync failed");
    assert_eq!(vfs.faults_fired(), 1);

    recover_until_ok(&svc, "f");
    assert!(svc.handle_line("ORIENT f").starts_with("OK orient f"));
    let mut oracle = oracle_of(&seeds, 2, &acked);
    assert_bit_equal(&svc, "f", &mut oracle);
    // The un-acknowledged record must not resurface after a restart.
    drop(svc);
    let (svc, report) = reopen_real(&root, config);
    assert_eq!(report.recovered, ["f"]);
    assert_bit_equal(&svc, "f", &mut oracle);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn short_write_then_crash_salvages_the_acknowledged_prefix() {
    let root = tmp_root("shortcrash");
    let seeds = seed_points(17);
    let config = StoreConfig {
        sync: SyncPolicy::Always,
        ..StoreConfig::default()
    };
    let script = FaultScript::new(vec![FaultSpec {
        class: OpClass::Write,
        at: 2,
        kind: FaultKind::ShortWrite,
    }]);
    let (svc, _vfs) = open_with_faults(&root, config, script);
    assert!(svc
        .handle_line(&create_line("s", 2, &seeds))
        .starts_with("OK created"));
    let (acked, _) = insert_until_degraded(&svc, "s", 6);
    assert_eq!(acked.len(), 1);

    // Crash without RECOVER: the torn half-record is still on disk.  Boot
    // salvage must truncate it and recover exactly the acknowledged prefix.
    drop(svc);
    let (svc, report) = reopen_real(&root, config);
    assert_eq!(report.recovered, ["s"]);
    assert_eq!(report.truncated_tails, 1, "the torn tail was salvaged");
    assert!(report.lost_bytes > 0);
    let mut oracle = oracle_of(&seeds, 2, &acked);
    assert_bit_equal(&svc, "s", &mut oracle);
    // The salvaged tenant accepts new work.
    assert!(svc.handle_line("EDIT s INSERT 1.5 1.5").starts_with("OK"));
    assert!(svc.handle_line("ORIENT s").starts_with("OK orient s"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn short_write_recover_truncates_the_torn_bytes_in_place() {
    let root = tmp_root("shortrecover");
    let seeds = seed_points(19);
    let config = StoreConfig {
        sync: SyncPolicy::Always,
        ..StoreConfig::default()
    };
    let script = FaultScript::new(vec![FaultSpec {
        class: OpClass::Write,
        at: 2,
        kind: FaultKind::ShortWrite,
    }]);
    let (svc, _vfs) = open_with_faults(&root, config, script);
    assert!(svc
        .handle_line(&create_line("r", 2, &seeds))
        .starts_with("OK created"));
    let (mut acked, _) = insert_until_degraded(&svc, "r", 6);

    // RECOVER truncates the torn bytes and the tenant keeps going.
    recover_until_ok(&svc, "r");
    for i in 0..3 {
        let (x, y) = (2.0 + i as f64, 6.5);
        assert!(svc
            .handle_line(&format!("EDIT r INSERT {x} {y}"))
            .starts_with("OK"));
        acked.push(Edit::Insert(Point::new(x, y)));
    }
    assert!(svc.handle_line("ORIENT r").starts_with("OK orient r"));
    let mut oracle = oracle_of(&seeds, 2, &acked);
    assert_bit_equal(&svc, "r", &mut oracle);

    // After in-place recovery the log is clean: a restart salvages nothing.
    drop(svc);
    let (svc, report) = reopen_real(&root, config);
    assert_eq!(report.recovered, ["r"]);
    assert_eq!(report.truncated_tails, 0, "recovery already truncated");
    assert_bit_equal(&svc, "r", &mut oracle);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn slow_io_is_latency_not_damage() {
    let root = tmp_root("slowio");
    let seeds = seed_points(23);
    let config = StoreConfig {
        sync: SyncPolicy::Always,
        ..StoreConfig::default()
    };
    let script = FaultScript::new(
        (0..6)
            .map(|i| FaultSpec {
                class: if i % 2 == 0 {
                    OpClass::Write
                } else {
                    OpClass::Sync
                },
                at: i,
                kind: FaultKind::SlowIo(1),
            })
            .collect(),
    );
    let (svc, vfs) = open_with_faults(&root, config, script);
    assert!(svc
        .handle_line(&create_line("slow", 2, &seeds))
        .starts_with("OK created"));
    let mut acked = Vec::new();
    for i in 0..5 {
        let (x, y) = (10.0 + i as f64, 1.0);
        assert!(svc
            .handle_line(&format!("EDIT slow INSERT {x} {y}"))
            .starts_with("OK"));
        acked.push(Edit::Insert(Point::new(x, y)));
    }
    assert!(svc.handle_line("ORIENT slow").starts_with("OK orient"));
    assert!(vfs.faults_fired() >= 4, "slow-io faults did fire");
    let stats = svc.handle_line("STATS slow");
    let payload = stats.strip_prefix("OK ").unwrap().to_string();
    assert_eq!(payload_field(&payload, "degraded"), Some("false"));
    assert_bit_equal(&svc, "slow", &mut oracle_of(&seeds, 2, &acked));
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// Seeded chaos sweep
// ---------------------------------------------------------------------------

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("CHAOS_SEEDS: comma-separated u64s"))
            .collect(),
        Err(_) => CHAOS_SEEDS.to_vec(),
    }
}

/// For each pinned seed: run a generated churn under a generated fault
/// schedule, riding out every degraded phase with RECOVER, and require the
/// final state to be bit-equal to a serial, never-faulted application of
/// exactly the acknowledged edits — then once more after a restart.
#[test]
fn seeded_fault_scripts_preserve_every_acknowledged_edit() {
    let mut total_fired = 0u64;
    for seed in chaos_seeds() {
        let root = tmp_root(&format!("sweep-{seed}"));
        let seeds = seed_points(seed);
        let config = StoreConfig {
            sync: SyncPolicy::Always,
            compact_records: 24, // force compactions under fire
            compact_bytes: 1 << 20,
        };
        let (svc, vfs) = open_with_faults(&root, config, FaultScript::seeded(seed, 10, 200));
        let name = "sweep";
        // CREATE may itself hit scheduled faults; each retry consumes them.
        for attempt in 0.. {
            assert!(attempt < 16, "CREATE kept failing");
            let response = svc.handle_line(&create_line(name, 2, &seeds));
            if response.starts_with("OK created") {
                break;
            }
            assert!(
                response.starts_with("ERR storage") || response.starts_with("ERR degraded"),
                "CREATE answered {response:?}"
            );
        }

        // Scripted churn over a local liveness model.
        let mut rng = seed | 1;
        let mut live: Vec<usize> = (0..seeds.len()).collect();
        let mut next_id = seeds.len();
        let mut acked: Vec<Edit> = Vec::new();
        for step in 0..80 {
            let r = xorshift(&mut rng);
            let x = (r >> 16) % 1600;
            let y = (r >> 32) % 1600;
            let (x, y) = (x as f64 / 100.0, y as f64 / 100.0);
            match r % 3 {
                0 => {
                    mutate_until_acked(&svc, name, &format!("EDIT {name} INSERT {x} {y}"));
                    acked.push(Edit::Insert(Point::new(x, y)));
                    live.push(next_id);
                    next_id += 1;
                }
                1 => {
                    let id = live[(r >> 8) as usize % live.len()];
                    mutate_until_acked(&svc, name, &format!("EDIT {name} MOVE {id} {x} {y}"));
                    acked.push(Edit::Move(id, Point::new(x, y)));
                }
                _ if live.len() > 3 => {
                    let at = (r >> 8) as usize % live.len();
                    let id = live.swap_remove(at);
                    mutate_until_acked(&svc, name, &format!("EDIT {name} REMOVE {id}"));
                    acked.push(Edit::Remove(id));
                }
                _ => {}
            }
            if step % 7 == 6 {
                mutate_until_acked(&svc, name, &format!("ORIENT {name}"));
            }
        }
        // Settle: healthy, fully flushed.
        recover_until_ok(&svc, name);
        mutate_until_acked(&svc, name, &format!("ORIENT {name}"));
        total_fired += vfs.faults_fired();

        let mut oracle = oracle_of(&seeds, 2, &acked);
        assert_bit_equal(&svc, name, &mut oracle);
        // Restart on the real filesystem: nothing acknowledged is lost.
        drop(svc);
        let (svc, report) = reopen_real(&root, config);
        assert_eq!(report.recovered, [name], "seed {seed}");
        assert_bit_equal(&svc, name, &mut oracle);
        let _ = std::fs::remove_dir_all(&root);
    }
    assert!(total_fired > 0, "the sweep never exercised a fault");
}

// ---------------------------------------------------------------------------
// Network chaos: overload shedding, slow-loris eviction, TCP auth
// ---------------------------------------------------------------------------

fn read_all(stream: &mut TcpStream) -> String {
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

#[test]
fn bounded_queue_sheds_with_overloaded_and_a_retry_hint() {
    let service = Arc::new(Service::new());
    let server = Server::bind_with_config(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            threads: 1,
            read_timeout: None,
            max_queue: Some(1),
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    // Pin the single worker: connection A is being served (a PING round
    // trip proves its job left the queue).
    let mut a = TcpStream::connect(addr).unwrap();
    a.write_all(b"PING\n").unwrap();
    let mut pong = [0u8; 8];
    a.read_exact(&mut pong).unwrap();
    assert_eq!(&pong, b"OK pong\n");
    // Connection B fills the one queue slot.
    let b = TcpStream::connect(addr).unwrap();
    // Give the accept loop a moment to enqueue B before C arrives.
    std::thread::sleep(Duration::from_millis(100));
    // Connection C is shed at the front door.
    let mut c = TcpStream::connect(addr).unwrap();
    let refused = read_all(&mut c);
    assert!(refused.starts_with("ERR overloaded"), "{refused:?}");
    assert!(refused.contains("retry-after-ms="), "{refused:?}");

    // Releasing A lets the worker drain B normally.
    drop(a);
    let mut b = b;
    b.write_all(b"PING\n").unwrap();
    let mut pong = [0u8; 8];
    b.read_exact(&mut pong).unwrap();
    assert_eq!(&pong, b"OK pong\n");
    drop(b);

    assert!(
        service
            .stats()
            .shed_requests
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    let stats = service.handle_line("STATS");
    let payload = stats.strip_prefix("OK ").unwrap().to_string();
    let shed: u64 = payload_field(&payload, "shed_requests")
        .unwrap()
        .parse()
        .unwrap();
    assert!(shed >= 1, "{stats}");
    handle.stop().unwrap();
}

#[test]
fn slow_loris_connections_are_evicted_by_the_read_deadline() {
    let service = Arc::new(Service::new());
    let server = Server::bind_with_config(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            threads: 2,
            read_timeout: Some(Duration::from_millis(100)),
            max_queue: Some(64),
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    // A well-behaved client inside the deadline works.
    let mut good = TcpStream::connect(addr).unwrap();
    good.write_all(b"PING\n").unwrap();
    let mut pong = [0u8; 8];
    good.read_exact(&mut pong).unwrap();
    assert_eq!(&pong, b"OK pong\n");

    // The loris dribbles a prefix and never finishes the line: the server
    // must evict it (EOF on our side) instead of pinning a worker forever.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"PIN").unwrap();
    let leftovers = read_all(&mut loris);
    assert_eq!(leftovers, "", "evicted without a response: {leftovers:?}");

    // Eviction is visible to the operator.  (The idle `good` connection is
    // evicted by the same deadline while we wait — also counted.)
    for _ in 0..50 {
        let timed_out = service
            .stats()
            .timed_out_connections
            .load(std::sync::atomic::Ordering::Relaxed);
        if timed_out >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        service
            .stats()
            .timed_out_connections
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    drop(good);
    // And the server still serves fresh connections.
    let mut fresh = TcpStream::connect(addr).unwrap();
    fresh.write_all(b"PING\n").unwrap();
    fresh.read_exact(&mut pong).unwrap();
    assert_eq!(&pong, b"OK pong\n");
    drop(fresh);
    handle.stop().unwrap();
}

#[test]
fn tcp_connections_authenticate_per_connection() {
    let mut svc = Service::new();
    svc.set_auth_token(Some("hunter2".to_string()));
    let service = Arc::new(svc);
    let server = Server::bind_with_config(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut client = antennae::serve::TcpClient::connect(addr).unwrap();
    assert_eq!(client.request("PING").unwrap().to_line(), "OK pong");
    let denied = client.request("STATS").unwrap().to_line();
    assert!(denied.starts_with("ERR unauthorized"), "{denied}");
    let denied = client.request("AUTH wrong").unwrap().to_line();
    assert!(denied.starts_with("ERR unauthorized"), "{denied}");
    assert_eq!(
        client.request("AUTH hunter2").unwrap().to_line(),
        "OK auth ok"
    );
    assert!(client
        .request("STATS")
        .unwrap()
        .to_line()
        .starts_with("OK stats"));

    // A second connection starts unauthenticated.
    let mut stranger = antennae::serve::TcpClient::connect(addr).unwrap();
    let denied = stranger.request("STATS").unwrap().to_line();
    assert!(denied.starts_with("ERR unauthorized"), "{denied}");
    handle.stop().unwrap();
}
