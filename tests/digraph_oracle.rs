//! CSR-vs-legacy oracle suite for the digraph core.
//!
//! PR 4 moved `DiGraph` from nested `Vec<Vec<usize>>` adjacency lists to a
//! flat CSR layout with allocation-free, mask-aware traversal kernels.  The
//! pre-refactor implementation is preserved verbatim in
//! `antennae::graph::reference::AdjListDiGraph`; this suite pins that every
//! builder and every kernel — BFS order, reachability, hop distances,
//! strong connectivity, SCC count/largest, and all their masked variants —
//! is output-identical to the legacy behaviour:
//!
//! * masked kernels are compared against the legacy clone-a-subgraph path
//!   (`remove_vertices` + re-indexing),
//! * deterministic deployments cover random, lattice, duplicate-point and
//!   single-vertex point sets with solver-produced schemes (the CSR digraph
//!   must equal the legacy dense pairwise construction bit-for-bit),
//! * property tests fuzz random digraphs and random fault masks.
//!
//! The dense-vs-kd-tree digraph equality assertions of PR 3 live unchanged
//! in `tests/verification_oracle.rs`; this file is about the *storage and
//! traversal* layer underneath them.

use antennae::core::antenna::AntennaBudget;
use antennae::graph::reference::AdjListDiGraph;
use antennae::graph::scc::tarjan_scc;
use antennae::graph::{DiGraph, TraversalScratch, VertexMask};
use antennae::prelude::*;
use proptest::prelude::*;
use std::f64::consts::PI;

/// Builds the CSR digraph and the legacy reference from one edge list, the
/// CSR side through every bulk builder plus incremental insertion, and
/// asserts they all agree structurally before handing back the pair.
fn build_pair(n: usize, edges: &[(usize, usize)]) -> (DiGraph, AdjListDiGraph) {
    let mut legacy = AdjListDiGraph::new(n);
    for &(u, v) in edges {
        legacy.add_edge(u, v);
    }
    let bulk = DiGraph::from_edges(n, edges);
    let mut incremental = DiGraph::new(n);
    for &(u, v) in edges {
        incremental.add_edge(u, v);
    }
    let from_rows = DiGraph::from_adjacency(n, (0..n).map(|u| legacy.out_neighbors(u).to_vec()));
    assert_eq!(bulk, incremental, "from_edges vs add_edge");
    assert_eq!(bulk, from_rows, "from_edges vs from_adjacency");
    assert_eq!(bulk, legacy.to_csr(), "CSR vs legacy structure");
    assert_eq!(bulk.edge_count(), legacy.edge_count());
    for u in 0..n {
        let row: Vec<usize> = bulk.out_neighbors(u).iter().map(|&v| v as usize).collect();
        assert_eq!(row, legacy.out_neighbors(u), "row order of vertex {u}");
    }
    (bulk, legacy)
}

/// Asserts every unmasked kernel agrees with the legacy implementation.
fn assert_unmasked_kernels_match(
    csr: &DiGraph,
    legacy: &AdjListDiGraph,
    scratch: &mut TraversalScratch,
) {
    let n = csr.len();
    assert_eq!(csr.is_strongly_connected(), legacy.is_strongly_connected());
    assert_eq!(
        scratch.is_strongly_connected(csr, None),
        legacy.is_strongly_connected() || n <= 1
    );
    let legacy_sccs = legacy.tarjan_scc();
    let summary = scratch.scc_summary(csr, None);
    assert_eq!(summary.count, legacy_sccs.len());
    assert_eq!(
        summary.largest,
        legacy_sccs.iter().map(|c| c.len()).max().unwrap_or(0)
    );
    // The full CSR decomposition is order-identical to the legacy one.
    assert_eq!(tarjan_scc(csr), legacy_sccs);
    for start in 0..n {
        let order: Vec<usize> = scratch
            .bfs(csr, start, None)
            .iter()
            .map(|&v| v as usize)
            .collect();
        assert_eq!(order, legacy.bfs_order(start), "BFS order from {start}");
        assert_eq!(
            scratch.reachable_count(csr, start, None),
            legacy.reachable_count(start)
        );
        let hops: Vec<Option<usize>> = scratch
            .hop_distances(csr, start, None)
            .iter()
            .map(|&d| (d != u32::MAX).then_some(d as usize))
            .collect();
        assert_eq!(hops, legacy.hop_distances(start), "hops from {start}");
        assert_eq!(csr.hop_distances(start), legacy.hop_distances(start));
    }
}

/// Asserts every masked kernel matches the legacy clone-and-reindex path for
/// the given fault set.
fn assert_masked_kernels_match(
    csr: &DiGraph,
    legacy: &AdjListDiGraph,
    faults: &[usize],
    scratch: &mut TraversalScratch,
) {
    let n = csr.len();
    let mut mask = VertexMask::new(n);
    for &v in faults {
        mask.remove(v);
    }
    let reduced = legacy.remove_vertices(faults);
    // Old-index → reduced-index map (alive vertices in ascending order).
    let mut new_index = vec![usize::MAX; n];
    let mut next = 0usize;
    for (v, slot) in new_index.iter_mut().enumerate() {
        if !mask.is_removed(v) {
            *slot = next;
            next += 1;
        }
    }
    assert_eq!(reduced.len(), next);
    // Verdicts: masked strong connectivity == connectivity of the subgraph.
    assert_eq!(
        scratch.is_strongly_connected(csr, Some(&mask)),
        reduced.is_strongly_connected(),
        "strong connectivity under faults {faults:?}"
    );
    let summary = scratch.scc_summary(csr, Some(&mask));
    let reduced_sccs = reduced.tarjan_scc();
    assert_eq!(
        summary.count,
        reduced_sccs.len(),
        "SCC count under {faults:?}"
    );
    assert_eq!(
        summary.largest,
        reduced_sccs.iter().map(|c| c.len()).max().unwrap_or(0),
        "largest SCC under {faults:?}"
    );
    // Traversals from every alive start: orders and hop counts map 1:1 onto
    // the reduced graph (remove_vertices preserves relative adjacency
    // order).
    for start in 0..n {
        if mask.is_removed(start) {
            assert!(scratch.bfs(csr, start, Some(&mask)).is_empty());
            continue;
        }
        let mapped: Vec<usize> = scratch
            .bfs(csr, start, Some(&mask))
            .iter()
            .map(|&v| new_index[v as usize])
            .collect();
        assert_eq!(
            mapped,
            reduced.bfs_order(new_index[start]),
            "masked BFS from {start}"
        );
        let masked_hops = scratch.hop_distances(csr, start, Some(&mask)).to_vec();
        let reduced_hops = reduced.hop_distances(new_index[start]);
        for v in 0..n {
            let expected = if mask.is_removed(v) {
                None
            } else {
                reduced_hops[new_index[v]]
            };
            let got = (masked_hops[v] != u32::MAX).then_some(masked_hops[v] as usize);
            assert_eq!(got, expected, "masked hop {start}→{v} under {faults:?}");
        }
    }
}

fn exercise(n: usize, edges: &[(usize, usize)]) {
    let (csr, legacy) = build_pair(n, edges);
    let mut scratch = TraversalScratch::new();
    assert_unmasked_kernels_match(&csr, &legacy, &mut scratch);
    // Single faults everywhere, plus a few representative pairs.
    for v in 0..n {
        assert_masked_kernels_match(&csr, &legacy, &[v], &mut scratch);
    }
    if n >= 2 {
        assert_masked_kernels_match(&csr, &legacy, &[0, n - 1], &mut scratch);
        assert_masked_kernels_match(&csr, &legacy, &[n / 2, n - 1], &mut scratch);
    }
    // The empty fault set must be a no-op relative to unmasked kernels.
    assert_masked_kernels_match(&csr, &legacy, &[], &mut scratch);
}

#[test]
fn hand_built_digraphs_match_reference() {
    // Directed cycle with chords, a DAG, two bridged cycles, isolated
    // vertices.
    exercise(
        6,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 0),
            (0, 3),
            (2, 5),
        ],
    );
    exercise(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
    exercise(
        7,
        &[
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 4),
            (4, 5),
            (5, 3),
            (2, 3),
            (6, 0),
        ],
    );
    exercise(1, &[]);
    exercise(0, &[]);
    exercise(4, &[]);
}

/// Solver-produced deployments: the CSR digraph built by the verification
/// engine must equal the legacy dense pairwise construction replayed through
/// the pre-refactor adjacency lists, and every kernel must agree on it.
fn exercise_deployment(points: Vec<antennae::geometry::Point>, label: &str) {
    let instance = Instance::new(points).expect("non-empty deployment");
    let scheme = Solver::on(&instance)
        .with_budget(AntennaBudget::new(2, PI))
        .run()
        .expect("valid budget")
        .scheme;
    let points = instance.points();
    // The pre-refactor dense construction, replayed verbatim on the legacy
    // representation.
    let n = points.len().min(scheme.len());
    let mut legacy = AdjListDiGraph::new(points.len());
    for u in 0..n {
        let apex = &points[u];
        for (v, target) in points.iter().enumerate() {
            if u != v && scheme.assignment(u).covers(apex, target) {
                legacy.add_edge(u, v);
            }
        }
    }
    for strategy in [DigraphStrategy::Dense, DigraphStrategy::KdTree] {
        let csr = VerificationEngine::new()
            .with_strategy(strategy)
            .induced_digraph(points, &scheme);
        assert_eq!(
            csr,
            legacy.to_csr(),
            "{label}: {strategy:?} vs legacy dense"
        );
    }
    let csr = VerificationEngine::new().induced_digraph(points, &scheme);
    let mut scratch = TraversalScratch::new();
    assert_unmasked_kernels_match(&csr, &legacy, &mut scratch);
    for v in 0..csr.len().min(12) {
        assert_masked_kernels_match(&csr, &legacy, &[v], &mut scratch);
    }
}

#[test]
fn random_deployment_matches_reference() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(42);
    let points: Vec<antennae::geometry::Point> = (0..40)
        .map(|_| {
            antennae::geometry::Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0))
        })
        .collect();
    exercise_deployment(points, "uniform random n=40");
}

#[test]
fn lattice_deployment_matches_reference() {
    let mut points = Vec::new();
    for i in 0..6 {
        for j in 0..5 {
            points.push(antennae::geometry::Point::new(i as f64, j as f64));
        }
    }
    exercise_deployment(points, "integer lattice 6×5");
}

#[test]
fn duplicate_point_deployment_matches_reference() {
    let mut points = Vec::new();
    for i in 0..8 {
        points.push(antennae::geometry::Point::new(i as f64 * 0.5, 0.25));
        points.push(antennae::geometry::Point::new(i as f64 * 0.5, 0.25)); // exact duplicate
    }
    exercise_deployment(points, "duplicate pairs n=16");
}

#[test]
fn single_vertex_deployment_matches_reference() {
    exercise_deployment(
        vec![antennae::geometry::Point::new(3.0, 4.0)],
        "single vertex",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random digraphs: every builder and kernel, masked and unmasked,
    /// agrees with the legacy reference.
    #[test]
    fn prop_random_digraphs_match_reference(
        n in 1usize..24,
        raw_edges in proptest::collection::vec((0usize..24, 0usize..24), 0..140),
        fault_seed in 0usize..24,
    ) {
        let edges: Vec<(usize, usize)> = raw_edges
            .into_iter()
            .filter(|&(u, v)| u < n && v < n)
            .collect();
        let (csr, legacy) = build_pair(n, &edges);
        let mut scratch = TraversalScratch::new();
        assert_unmasked_kernels_match(&csr, &legacy, &mut scratch);
        let single = fault_seed % n;
        assert_masked_kernels_match(&csr, &legacy, &[single], &mut scratch);
        // A pseudo-random pair of faults.
        if n >= 2 {
            let second = (fault_seed * 7 + 3) % n;
            if second != single {
                assert_masked_kernels_match(&csr, &legacy, &[single, second], &mut scratch);
            }
        }
    }

    /// The masked c-connectivity entry points agree with the legacy
    /// clone-per-subset semantics.
    #[test]
    fn prop_c_connectivity_matches_clone_path(
        n in 1usize..14,
        raw_edges in proptest::collection::vec((0usize..14, 0usize..14), 0..80),
    ) {
        use antennae::graph::connectivity::{critical_vertices, is_strongly_c_connected, remove_vertices};
        let edges: Vec<(usize, usize)> = raw_edges
            .into_iter()
            .filter(|&(u, v)| u < n && v < n)
            .collect();
        let (csr, legacy) = build_pair(n, &edges);
        // Critical vertices == vertices whose clone-removal disconnects.
        if n > 2 && legacy.is_strongly_connected() {
            let expected: Vec<usize> = (0..n)
                .filter(|&v| !legacy.remove_vertices(&[v]).is_strongly_connected())
                .collect();
            prop_assert_eq!(critical_vertices(&csr), expected);
        }
        for c in 0..=3usize {
            // Legacy semantics, replayed with the legacy digraph.
            let legacy_verdict = if c == 0 {
                true
            } else if !legacy.is_strongly_connected() {
                false
            } else if c - 1 == 0 || n <= c {
                true
            } else {
                subsets_all_survive(&legacy, 0, c - 1, &mut Vec::new())
            };
            prop_assert_eq!(is_strongly_c_connected(&csr, c), legacy_verdict, "c = {}", c);
        }
        // Masked-kernel remove_vertices replacement still materializes
        // correctly when asked to.
        let reduced = remove_vertices(&csr, &[0]);
        prop_assert_eq!(reduced, legacy.remove_vertices(&[0]).to_csr());
    }
}

/// The pre-refactor exhaustive subset recursion, over the legacy digraph.
fn subsets_all_survive(
    g: &AdjListDiGraph,
    start: usize,
    remaining: usize,
    subset: &mut Vec<usize>,
) -> bool {
    if remaining == 0 {
        return g.remove_vertices(subset).is_strongly_connected();
    }
    for v in start..g.len() {
        subset.push(v);
        let ok = subsets_all_survive(g, v + 1, remaining - 1, subset);
        subset.pop();
        if !ok {
            return false;
        }
    }
    true
}
