//! Quickstart: orient two antennae per sensor on a small random deployment
//! through the policy-driven solver, verify strong connectivity and inspect
//! the scheme.
//!
//! Run with: `cargo run --example quickstart`

use antennae::prelude::*;
use std::f64::consts::PI;

fn main() {
    // A reproducible deployment of 30 sensors in a 10×10 field.
    let generator = PointSetGenerator::UniformSquare { n: 30, side: 10.0 };
    let points = generator.generate(2024);
    let instance = Instance::new(points).expect("non-empty deployment");

    println!(
        "deployment: {} sensors, lmax (longest MST edge) = {:.3}",
        instance.len(),
        instance.lmax()
    );

    // Budget: two antennae per sensor, spreads summing to at most π.  The
    // default policy (SelectionPolicy::BestGuarantee) picks the Table 1
    // construction with the best proven radius bound.
    let outcome = Solver::on(&instance)
        .budget(2, PI)
        .run()
        .expect("orientation exists");
    println!(
        "algorithm: {}, guaranteed radius: {:?} · lmax, measured: {:.3} · lmax",
        outcome.algorithm, outcome.guaranteed_radius_over_lmax, outcome.measured_radius_over_lmax
    );

    // Independently verify the result.
    let report = verify(&instance, &outcome.scheme);
    println!(
        "strongly connected: {}, measured radius = {:.3} · lmax, max spread sum = {:.3} rad",
        report.is_strongly_connected, report.max_radius_over_lmax, report.max_spread_sum
    );
    assert!(report.is_strongly_connected);

    // Show the antennae of the first few sensors.
    println!("\nfirst three sensors:");
    for (i, assignment) in outcome.scheme.assignments.iter().take(3).enumerate() {
        println!("  sensor {i} at {}:", instance.points()[i]);
        for antenna in &assignment.antennas {
            println!(
                "    antenna: start {:.1}°, spread {:.1}°, range {:.3}",
                antenna.start.degrees(),
                antenna.spread.to_degrees(),
                antenna.radius
            );
        }
    }

    // The paper's Table 1 bound for this budget.
    let bound = bounds::table1_radius(2, PI).unwrap();
    println!(
        "\npaper bound for (k=2, φ₂=π): {:.4} · lmax — measured {:.4} · lmax",
        bound, outcome.measured_radius_over_lmax
    );
}
