//! A gallery of the extremal configurations used in the paper's proofs, and
//! what each algorithm does on them: the regular polygon of Lemma 1, the
//! five-armed star that forces degree-5 MST vertices, the collinear path,
//! and a dense annulus.
//!
//! Run with: `cargo run --example worst_case_gallery`

use antennae::prelude::*;
use antennae::sim::generators::extremal_workloads;
use std::f64::consts::PI;

fn main() {
    let budgets = [
        (1usize, 8.0 * PI / 5.0),
        (2, PI),
        (2, 2.0 * PI / 3.0),
        (3, 0.0),
        (4, 0.0),
        (5, 0.0),
    ];

    for generator in extremal_workloads() {
        let points = generator.generate(7);
        let instance = Instance::new(points).expect("non-empty");
        println!(
            "\n=== {} — {} sensors, lmax = {:.3} ===",
            generator.label(),
            instance.len(),
            instance.lmax()
        );
        println!(
            "{:>4} {:>8} {:>14} {:>16} {:>14} {:>10}",
            "k", "φ/π", "algorithm", "measured r/lmax", "paper bound", "connected"
        );
        for &(k, phi) in &budgets {
            let outcome = Solver::on(&instance)
                .budget(k, phi)
                .run()
                .expect("orientable");
            let report = verify(&instance, &outcome.scheme);
            println!(
                "{:>4} {:>8.3} {:>14} {:>16.4} {:>14} {:>10}",
                k,
                phi / PI,
                outcome.algorithm.to_string(),
                report.max_radius_over_lmax,
                bounds::table1_radius(k, phi)
                    .map(|b| format!("{b:.4}"))
                    .unwrap_or_else(|| "-".into()),
                report.is_strongly_connected
            );
        }
    }
}
