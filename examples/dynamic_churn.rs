//! Dynamic deployments under churn: a `DynamicSolverSession` absorbing
//! arrivals, failures and mobility while keeping the network verified.
//!
//! Run with `cargo run --release --example dynamic_churn`.

use antennae::core::bounds::theorem2_spread_threshold;
use antennae::prelude::*;
use antennae::sim::events::{churn_trace, ChurnMix, ChurnOp};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized uniform deployment and the paper's two-antenna budget in
    // the Theorem 2 regime (φ₂ ≥ 6π/5), where re-orientation is per-vertex
    // local and every edit is incremental.
    let workload = PointSetGenerator::UniformSquare { n: 500, side: 15.0 };
    let points = workload.generate(7);
    let budget = AntennaBudget::new(2, theorem2_spread_threshold(2));
    let mut session = DynamicSolverSession::new(DynamicInstance::new(&points)?, budget)?;
    println!(
        "initial deployment: n = {}, lmax = {:.4}, valid = {}, incremental = {}",
        session.instance().len(),
        session.instance().lmax(),
        session.report().is_valid(),
        session.is_incremental(),
    );

    // A deterministic churn trace: arrivals, failures and mobility steps.
    let trace = churn_trace(ChurnMix::balanced(3.0), 200, 15.0, 0.75, 42);
    let mut applied = 0usize;
    let mut total_us = 0.0;
    let mut max_rows = 0usize;
    for event in &trace {
        let ids = session.instance().ids();
        let edit = match event.op {
            ChurnOp::Arrive(p) => Edit::Insert(p),
            ChurnOp::Fail { pick } => {
                if ids.len() <= 2 {
                    continue;
                }
                Edit::Remove(ids[(pick % ids.len() as u64) as usize])
            }
            ChurnOp::Step { pick, dx, dy } => {
                let id = ids[(pick % ids.len() as u64) as usize];
                let p = session.instance().point(id)?;
                Edit::Move(id, Point::new(p.x + dx, p.y + dy))
            }
        };
        let start = Instant::now();
        let outcome = session.apply(edit)?;
        total_us += start.elapsed().as_secs_f64() * 1e6;
        applied += 1;
        max_rows = max_rows.max(outcome.rows_recomputed);
        assert!(outcome.report.is_valid(), "churn broke the network");
    }
    println!(
        "applied {} edits: mean {:.0} µs/edit, worst row repair {} rows, n = {}, valid = {}",
        applied,
        total_us / applied as f64,
        max_rows,
        session.instance().len(),
        session.report().is_valid(),
    );

    // The same state, re-solved from scratch, for scale.
    let live = session.materialized()?.points().to_vec();
    let start = Instant::now();
    let instance = Instance::new(live)?;
    let outcome = Solver::on(&instance).with_budget(budget).run()?;
    let report =
        antennae::core::verify::verify_with_budget(&instance, &outcome.scheme, Some(budget));
    let rebuild_us = start.elapsed().as_secs_f64() * 1e6;
    println!(
        "from-scratch re-solve+re-verify of the same deployment: {:.0} µs ({}x the mean edit)",
        rebuild_us,
        (rebuild_us / (total_us / applied as f64)).round() as i64,
    );
    assert!(report.is_valid());
    Ok(())
}
