//! Orientation-as-a-service demo: spin up the `orientd` server on an
//! ephemeral loopback port, drive two tenant deployments over the real TCP
//! protocol, and shut the server down cleanly.
//!
//! Run with `cargo run --release --example serve_demo`.

use antennae::core::bounds::theorem2_spread_threshold;
use antennae::prelude::*;
use antennae::serve::{Server, TcpClient};

fn send(client: &mut TcpClient, line: &str) -> Result<String, Box<dyn std::error::Error>> {
    let response = client.request(line)?.to_line();
    println!("> {line}\n< {response}");
    Ok(response)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Port 0 = ephemeral: the demo never collides with a running server.
    let server = Server::bind("127.0.0.1:0")?;
    let addr = server.local_addr();
    let handle = server.spawn();
    println!("orientd listening on {addr}\n");

    let mut client = TcpClient::connect(addr)?;

    // Tenant "west": a small two-antenna deployment seeded at CREATE time.
    let phi2 = theorem2_spread_threshold(2);
    let seeds = PointSetGenerator::UniformSquare { n: 12, side: 6.0 }.generate(11);
    let mut create = format!("CREATE west 2 {phi2}");
    for p in &seeds {
        create.push_str(&format!(" {} {}", p.x, p.y));
    }
    send(&mut client, &create)?;

    // Tenant "east": starts empty and grows entirely through edits.
    let phi1 = theorem2_spread_threshold(1);
    send(&mut client, &format!("CREATE east 1 {phi1}"))?;

    // A burst of edits per tenant; the server buffers them and pays ONE
    // coalesced incremental repair per ORIENT.
    send(&mut client, "EDIT west INSERT 1.5 2.5")?;
    send(&mut client, "EDIT west MOVE 3 4.0 4.0")?;
    send(&mut client, "EDIT west REMOVE 7")?;
    send(&mut client, "ORIENT west")?;

    send(&mut client, "EDIT east INSERT 0 0")?;
    send(&mut client, "EDIT east INSERT 1 0")?;
    send(&mut client, "EDIT east INSERT 1 1")?;
    send(&mut client, "VERIFY east")?;

    // Snapshot reads and counters.
    send(&mut client, "QUERY west")?;
    send(&mut client, "QUERY east 2")?;
    send(&mut client, "STATS west")?;
    send(&mut client, "STATS")?;

    // Drain-to-zero is a valid state: an empty deployment is vacuously
    // strongly connected and can regrow later.
    send(&mut client, "EDIT east REMOVE 0")?;
    send(&mut client, "EDIT east REMOVE 1")?;
    send(&mut client, "EDIT east REMOVE 2")?;
    send(&mut client, "VERIFY east")?;
    send(&mut client, "EDIT east INSERT 5 5")?;
    send(&mut client, "ORIENT east")?;

    send(&mut client, "DROP east")?;
    let response = send(&mut client, "SHUTDOWN")?;
    assert!(response.starts_with("OK"), "shutdown refused: {response}");
    drop(client);
    handle.stop()?;
    println!("\nserver stopped cleanly");
    Ok(())
}
