//! Compare the radiated-energy cost of the paper's orientations against an
//! omnidirectional deployment, across the number of antennae per sensor.
//!
//! Run with: `cargo run --release --example energy_analysis [n]`

use antennae::prelude::*;
use antennae::sim::energy::EnergyModel;
use antennae::sim::interference::{interference_stats, omnidirectional_interference};
use std::f64::consts::PI;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(150);

    let generator = PointSetGenerator::UniformSquare {
        n,
        side: (n as f64).sqrt() * 1.5,
    };
    let points = generator.generate(3);
    let instance = Instance::new(points.clone()).expect("non-empty");
    let model = EnergyModel::default();

    println!(
        "{n} sensors, path-loss exponent α = {}\n",
        model.path_loss_exponent
    );
    println!(
        "{:>14} {:>12} {:>14} {:>12} {:>10} {:>14}",
        "configuration", "radius/lmax", "total energy", "omni energy", "gain", "interference"
    );

    for (label, k, phi) in [
        ("k=1, φ=8π/5", 1usize, 8.0 * PI / 5.0),
        ("k=2, φ=π", 2, PI),
        ("k=2, φ=6π/5", 2, 6.0 * PI / 5.0),
        ("k=3, beams", 3, 0.0),
        ("k=4, beams", 4, 0.0),
        ("k=5, beams", 5, 0.0),
    ] {
        let scheme = Solver::on(&instance)
            .budget(k, phi)
            .run()
            .expect("orientable")
            .scheme;
        let report = verify(&instance, &scheme);
        assert!(report.is_strongly_connected);
        let total = model.total_power(&scheme);
        let omni = model.omnidirectional_total(points.len(), scheme.max_radius());
        let interference = interference_stats(&points, &scheme).mean_covered_per_antenna;
        println!(
            "{:>14} {:>12.3} {:>14.2} {:>12.2} {:>9.1}x {:>14.2}",
            label,
            report.max_radius_over_lmax,
            total,
            omni,
            omni / total,
            interference
        );
    }

    let omni_intf = omnidirectional_interference(&points, instance.lmax()).mean_covered_per_antenna;
    println!(
        "\n(omnidirectional interference at radius lmax: {omni_intf:.2} receivers per sensor)"
    );
    println!("narrow beams pay for their range with far less radiated energy and interference.");
}
