//! Flood a message through the directional network and compare delivery and
//! latency against an omnidirectional deployment using the same radius.
//!
//! Run with: `cargo run --release --example network_flooding [n]`

use antennae::prelude::*;
use antennae::sim::flooding::{flood, flood_over_digraph, omnidirectional_digraph, FloodingConfig};
use std::f64::consts::PI;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);

    let generator = PointSetGenerator::UniformSquare {
        n,
        side: (n as f64).sqrt() * 1.5,
    };
    let points = generator.generate(11);
    let instance = Instance::new(points.clone()).expect("non-empty");

    println!("{n} sensors; comparing directional orientations against omnidirectional\n");
    println!(
        "{:>16} {:>10} {:>12} {:>12} {:>10}",
        "configuration", "radius", "delivery", "latency", "max hops"
    );

    let config = FloodingConfig::default();
    for (label, k, phi) in [
        ("k=2, φ=π", 2usize, PI),
        ("k=3, beams", 3, 0.0),
        ("k=5, beams", 5, 0.0),
    ] {
        let scheme = Solver::on(&instance)
            .budget(k, phi)
            .run()
            .expect("orientable")
            .scheme;
        let radius = scheme.max_radius();
        let result = flood(&points, &scheme, 0, config);
        println!(
            "{:>16} {:>10.3} {:>11.0}% {:>12.2} {:>10}",
            label,
            radius,
            result.delivery_ratio() * 100.0,
            result.completion_time,
            result.max_hops
        );

        // Omnidirectional baseline at the same radius.
        let omni = omnidirectional_digraph(&points, radius);
        let omni_result = flood_over_digraph(&points, &omni, 0, config);
        println!(
            "{:>16} {:>10.3} {:>11.0}% {:>12.2} {:>10}",
            "  (omni same r)",
            radius,
            omni_result.delivery_ratio() * 100.0,
            omni_result.completion_time,
            omni_result.max_hops
        );
    }

    println!("\ndirectional orientations deliver to 100% of sensors (strong connectivity),");
    println!("at a modest latency/hop penalty relative to the omnidirectional baseline.");
}
