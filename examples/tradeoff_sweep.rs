//! Sweep the angular budget φ₂ for two antennae per sensor and print the
//! measured worst-case radius against the paper's Theorem 3 / Theorem 2
//! bounds — the trade-off at the heart of the paper.
//!
//! Run with: `cargo run --release --example tradeoff_sweep [n] [seeds]`

use antennae::prelude::*;
use std::f64::consts::PI;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(80);
    let seeds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    println!("two antennae per sensor, {n} sensors, {seeds} seeds per budget\n");
    println!(
        "{:>10} {:>10} {:>16} {:>14}",
        "φ₂/π", "φ₂ (rad)", "worst measured", "paper bound"
    );

    let lo = 2.0 * PI / 3.0;
    let hi = 6.0 * PI / 5.0;
    let steps = 10;
    for i in 0..=steps {
        let phi = lo + (hi - lo) * i as f64 / steps as f64;
        let mut worst: f64 = 0.0;
        for seed in 0..seeds {
            let points = PointSetGenerator::UniformSquare {
                n,
                side: (n as f64).sqrt(),
            }
            .generate(seed);
            let instance = Instance::new(points).expect("non-empty");
            let scheme = Solver::on(&instance)
                .budget(2, phi)
                .run()
                .expect("orientable")
                .scheme;
            let report = verify(&instance, &scheme);
            assert!(report.is_strongly_connected, "φ₂={phi} seed={seed}");
            worst = worst.max(report.max_radius_over_lmax);
        }
        let bound = bounds::table1_radius(2, phi).unwrap();
        println!(
            "{:>10.3} {:>10.4} {:>16.4} {:>14.4}",
            phi / PI,
            phi,
            worst,
            bound
        );
    }

    println!("\nthe measured radius always stays below the paper's bound, and both fall");
    println!("as the angular budget grows, reaching 1·lmax at φ₂ = 6π/5 (Theorem 2).");
}
