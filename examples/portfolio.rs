//! Portfolio vs. best-guarantee selection: run *every* applicable Table 1
//! construction on the same deployment and keep the smallest *measured*
//! radius.
//!
//! The best *guaranteed* bound and the best *measured* radius are not the
//! same thing.  The clearest case is two zero-spread beams per sensor
//! (`k = 2, φ₂ = 0`): the dispatcher must pick the chain construction — the
//! only row with a *proven* bound (2·lmax) — while the Hamiltonian-cycle
//! heuristic, which guarantees nothing, routinely measures a smaller radius
//! on structured deployments.  `SelectionPolicy::Portfolio` runs both (and
//! anything else applicable) in parallel, reports the full candidate table,
//! and never returns a measured radius worse than
//! `SelectionPolicy::BestGuarantee`.
//!
//! Run with: `cargo run --release --example portfolio [seeds]`

use antennae::prelude::*;
use std::f64::consts::PI;

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);

    let workloads: Vec<PointSetGenerator> = vec![
        PointSetGenerator::PerturbedGrid {
            cols: 8,
            rows: 8,
            jitter: 0.25,
        },
        PointSetGenerator::UniformSquare { n: 60, side: 8.0 },
    ];
    let budgets = [(2usize, 0.0), (2, PI), (3, 0.0)];

    for generator in &workloads {
        println!("=== workload: {} ===", generator.label());
        for &(k, phi) in &budgets {
            let mut improved = 0u64;
            let mut largest_gain = 0.0f64;
            for seed in 0..seeds {
                let instance = Instance::new(generator.generate(seed)).expect("non-empty");

                let best = Solver::on(&instance)
                    .budget(k, phi)
                    .policy(SelectionPolicy::BestGuarantee)
                    .run()
                    .expect("orientable");
                // `run_verified` re-verifies every candidate through ONE
                // shared VerificationEngine session (the kd-tree over the
                // deployment is built once, not once per candidate).
                let verified = Solver::on(&instance)
                    .budget(k, phi)
                    .policy(SelectionPolicy::Portfolio)
                    .run_verified()
                    .expect("orientable");
                let portfolio = &verified.outcome;

                // The portfolio is never worse than the dispatcher's pick…
                assert!(
                    portfolio.measured_radius_over_lmax <= best.measured_radius_over_lmax + 1e-12
                );
                // …and every candidate it evaluated passed independent
                // verification under the solve's own budget.
                assert!(verified.is_valid());
                for report in &verified.candidate_reports {
                    assert!(report.is_valid());
                }

                if seed == 0 {
                    println!("  budget k = {k}, φ = {phi:.3} rad — candidate table (seed 0):");
                    for c in &portfolio.candidates {
                        println!(
                            "    {:>16} guaranteed {:>8} measured {:.4}{}",
                            c.algorithm.to_string(),
                            c.guaranteed_radius_over_lmax
                                .map(|g| format!("{g:.4}"))
                                .unwrap_or_else(|| "—".into()),
                            c.measured_radius_over_lmax,
                            if c.selected { "  ← selected" } else { "" }
                        );
                    }
                }

                let gain = best.measured_radius_over_lmax - portfolio.measured_radius_over_lmax;
                if gain > 1e-9 {
                    improved += 1;
                    largest_gain = largest_gain.max(gain);
                }
            }
            println!(
                "    → portfolio strictly beat best-guarantee on {improved}/{seeds} seeds \
                 (largest gain {largest_gain:.4} · lmax)\n"
            );
        }
    }

    println!("the portfolio pays with extra compute (every candidate runs) and never");
    println!("with quality: its measured radius is at most the dispatcher's, and on");
    println!("beam-only grids it is strictly smaller almost every time.");
}
